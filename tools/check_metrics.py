#!/usr/bin/env python
"""Convenience gate for the observability rules (``A501``/``A502``).

Thin wrapper over ``python -m tools.analysis --select A501,A502`` with
the classic 0-ok / 1-findings exit contract: ``A501`` checks that every
campaign entry point participates in run recording, ``A502`` checks
that the instrumentation name-reference table in
``docs/observability.md`` matches the span/counter/gauge/histogram
names the source actually emits.  ``make lint`` runs the full analyzer
(these passes included); this wrapper exists for quick focused runs
while editing instrumentation or its docs.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)

from tools.analysis.cli import main  # noqa: E402


def run() -> int:
    """Delegate to the A501/A502 passes with the legacy exit codes."""
    return 1 if main(["--select", "A501,A502"]) else 0


if __name__ == "__main__":
    sys.exit(run())
