#!/usr/bin/env python
"""Docstring-coverage gate for the public API (no external deps).

Walks the configured packages with :mod:`ast` and counts docstrings on
every *public* module, class, method, and function (names not starting
with ``_``, except ``__init__``/``__call__`` which are exempt — their
class docstring covers them).  Fails (exit 1) when coverage in any
configured package drops below the configured threshold, and always
prints the per-package tally plus every missing definition, so the gate
doubles as a to-do list.

Configuration lives in ``pyproject.toml``::

    [tool.repro.docstrings]
    fail-under = 100.0
    packages = ["src/repro/core", "src/repro/signal"]
    modules = ["src/repro/core/regression.py"]

``packages`` entries are walked recursively; ``modules`` entries pin
individual files, so a module stays gated at the threshold even if its
package is later dropped from (or loosened in) ``packages``.

Run directly (``python tools/check_docstrings.py``) or via
``make docstrings`` / ``make check``.
"""

from __future__ import annotations

import ast
import os
import sys
import tomllib
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_CONFIG = {
    "fail-under": 100.0,
    "packages": ["src/repro/core", "src/repro/signal"],
    "modules": [],
}


def load_config() -> dict:
    """Read ``[tool.repro.docstrings]`` from pyproject.toml."""
    path = os.path.join(REPO_ROOT, "pyproject.toml")
    with open(path, "rb") as handle:
        document = tomllib.load(handle)
    config = dict(DEFAULT_CONFIG)
    config.update(document.get("tool", {})
                  .get("repro", {}).get("docstrings", {}))
    return config


@dataclass
class Report:
    """Docstring tally for one package directory."""

    package: str
    total: int = 0
    documented: int = 0
    missing: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return 100.0 * self.documented / self.total if self.total else 100.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _definitions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (dotted name, node) for every public definition to check."""
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)) and \
                        _is_public(child.name):
                    yield f"{node.name}.{child.name}", child


def _check_file(path: str, report: Report) -> None:
    """Tally one ``.py`` file's public definitions into ``report``."""
    relative = os.path.relpath(path, REPO_ROOT)
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=relative)
    for name, node in _definitions(tree):
        report.total += 1
        if ast.get_docstring(node):
            report.documented += 1
        else:
            report.missing.append(f"{relative}: {name}")


def check_package(package: str) -> Report:
    """Docstring coverage over ``package``: a directory tree or one file."""
    report = Report(package=package)
    root = os.path.join(REPO_ROOT, package)
    if os.path.isfile(root):
        _check_file(root, report)
        return report
    for directory, _, files in sorted(os.walk(root)):
        for filename in sorted(files):
            if filename.endswith(".py"):
                _check_file(os.path.join(directory, filename), report)
    return report


def main() -> int:
    config = load_config()
    threshold = float(config["fail-under"])
    failed = False
    for package in list(config["packages"]) + list(config.get("modules",
                                                              [])):
        report = check_package(package)
        status = "ok" if report.coverage >= threshold else "FAIL"
        print(f"{report.package}: {report.documented}/{report.total} "
              f"documented ({report.coverage:.1f}%, "
              f"threshold {threshold:.1f}%) {status}")
        for missing in report.missing:
            print(f"  missing: {missing}")
        if report.coverage < threshold:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
