#!/usr/bin/env python
"""DEPRECATED shim: the docstring gate moved into the analyzer.

The historical ``make docstrings`` entry point now delegates to the
``A401`` pass of ``python -m tools.analysis`` (same traversal, same
public-name policy, same ``[tool.repro.docstrings]`` package list) so
there is one analyzer, one suppression syntax, and one baseline.  This
wrapper keeps the old exit-code contract (0 ok / 1 findings) for one
release and will then be removed — call
``python -m tools.analysis --select A401`` directly instead.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)

from tools.analysis.cli import main  # noqa: E402


def run() -> int:
    """Delegate to the A401 analyzer pass with the legacy exit codes."""
    print("check_docstrings.py is deprecated; use "
          "`python -m tools.analysis --select A401` (docs/"
          "static-analysis.md)", file=sys.stderr)
    return 1 if main(["--select", "A401"]) else 0


if __name__ == "__main__":
    sys.exit(run())
