#!/usr/bin/env python
"""Documentation build/consistency gate (no external deps).

Two checks, run by ``make docs`` / ``make check``:

1. **Link resolution** — every relative markdown link in ``README.md``
   and ``docs/*.md`` must point at an existing file (anchors are
   stripped; absolute URLs are skipped).

2. **CLI reference completeness** — ``docs/cli.md`` must mention every
   subcommand and every long option the actual argparse parser in
   :mod:`repro.cli` defines, so the reference cannot silently rot when
   flags are added.

Exit code 1 with a per-problem listing on any failure.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _markdown_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    files += [os.path.join(docs, name) for name in sorted(os.listdir(docs))
              if name.endswith(".md")]
    return files


def check_links() -> list:
    """Every relative markdown link must resolve to a real file."""
    problems = []
    for path in _markdown_files():
        base = os.path.dirname(path)
        with open(path) as handle:
            text = handle.read()
        for target in LINK.findall(text):
            if "://" in target or target.startswith("#") or \
                    target.startswith("mailto:"):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(path, REPO_ROOT)}: broken link "
                    f"-> {target}")
    return problems


def check_cli_reference() -> list:
    """docs/cli.md must mention every subcommand and long option."""
    import argparse

    from repro.cli import _build_parser

    with open(os.path.join(REPO_ROOT, "docs", "cli.md")) as handle:
        reference = handle.read()
    problems = []
    parser = _build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                if f"`{name}`" not in reference:
                    problems.append(f"docs/cli.md: subcommand {name!r} "
                                    f"undocumented")
                for option in _long_options(sub):
                    if option not in reference:
                        problems.append(f"docs/cli.md: {name} option "
                                        f"{option} undocumented")
        else:
            for option in action.option_strings:
                if option.startswith("--") and option != "--help" and \
                        option not in reference:
                    problems.append(f"docs/cli.md: global option "
                                    f"{option} undocumented")
    return problems


def _long_options(parser) -> list:
    options = []
    for action in parser._actions:
        options += [option for option in action.option_strings
                    if option.startswith("--") and option != "--help"]
    return options


def main() -> int:
    problems = check_links() + check_cli_reference()
    for problem in problems:
        print(problem)
    checked = len(_markdown_files())
    if problems:
        print(f"docs check: {len(problems)} problem(s) across "
              f"{checked} file(s)")
        return 1
    print(f"docs check: {checked} markdown file(s), all links resolve, "
          f"CLI reference complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
