#!/usr/bin/env python
"""DEPRECATED shim: the docs gate moved into the analyzer.

The historical ``make docs`` entry point now delegates to the ``A402``
(markdown link resolution) and ``A403`` (CLI reference completeness)
passes of ``python -m tools.analysis``.  This wrapper keeps the old
exit-code contract (0 ok / 1 findings) for one release and will then be
removed — call ``python -m tools.analysis --select A402,A403``
directly instead.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)

from tools.analysis.cli import main  # noqa: E402


def run() -> int:
    """Delegate to the A402/A403 passes with the legacy exit codes."""
    print("check_docs.py is deprecated; use "
          "`python -m tools.analysis --select A402,A403` (docs/"
          "static-analysis.md)", file=sys.stderr)
    return 1 if main(["--select", "A402,A403"]) else 0


if __name__ == "__main__":
    sys.exit(run())
