"""Conservative call graph + interprocedural engines over the index.

Built in one pass from the per-module summaries: every function
(``module:Class.method``) is a node, and every summarized call site
contributes edges by one of three strategies, in decreasing precision:

* **resolved refs** — the summary pinned a dotted target and the
  :class:`~tools.analysis.project.ProjectIndex` resolves it to a
  project function (or a class, which edges into its ``__init__``);
* **self dispatch** — ``self.helper()`` resolves within the enclosing
  class, then through its statically-known base classes;
* **name-based over-approximation** — anything dynamic (a callable
  parameter, a method on an arbitrary object) falls back to *every*
  project function with the same bare name, capped by
  ``dynamic-call-fanout`` so one ``obj.get(...)`` cannot wire the
  whole repo together.  Unmatched or over-cap dynamic calls stay
  edge-less: the analyses document themselves as best-effort rather
  than drowning the report in noise.

Two engines run on the graph: plain BFS reachability (seed
provenance), and a worklist fixpoint for exception escape — for each
function, the set of exception types that can propagate out of it,
with ``except`` clauses subtracted via a class-hierarchy-aware match
(project classes from the index + the builtin exception tree).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .project import ProjectIndex

#: a node is ``(module, qualified function name)``.
Node = Tuple[str, str]

#: the builtin exception hierarchy the escape engine knows (child ->
#: parents); anything absent is assumed to be an ``Exception`` subclass.
BUILTIN_EXC_BASES: Dict[str, Tuple[str, ...]] = {
    "BaseException": (),
    "Exception": ("BaseException",),
    "GeneratorExit": ("BaseException",),
    "KeyboardInterrupt": ("BaseException",),
    "SystemExit": ("BaseException",),
    "ArithmeticError": ("Exception",),
    "AssertionError": ("Exception",),
    "AttributeError": ("Exception",),
    "BufferError": ("Exception",),
    "EOFError": ("Exception",),
    "ImportError": ("Exception",),
    "LookupError": ("Exception",),
    "MemoryError": ("Exception",),
    "NameError": ("Exception",),
    "OSError": ("Exception",),
    "ReferenceError": ("Exception",),
    "RuntimeError": ("Exception",),
    "StopAsyncIteration": ("Exception",),
    "StopIteration": ("Exception",),
    "SyntaxError": ("Exception",),
    "TypeError": ("Exception",),
    "ValueError": ("Exception",),
    "Warning": ("Exception",),
    "FloatingPointError": ("ArithmeticError",),
    "OverflowError": ("ArithmeticError",),
    "ZeroDivisionError": ("ArithmeticError",),
    "ModuleNotFoundError": ("ImportError",),
    "IndexError": ("LookupError",),
    "KeyError": ("LookupError",),
    "UnboundLocalError": ("NameError",),
    "IOError": ("OSError",),
    "ConnectionError": ("OSError",),
    "FileExistsError": ("OSError",),
    "FileNotFoundError": ("OSError",),
    "IsADirectoryError": ("OSError",),
    "NotADirectoryError": ("OSError",),
    "PermissionError": ("OSError",),
    "TimeoutError": ("OSError",),
    "NotImplementedError": ("RuntimeError",),
    "RecursionError": ("RuntimeError",),
    "UnicodeError": ("ValueError",),
    "UnicodeDecodeError": ("UnicodeError",),
    "UnicodeEncodeError": ("UnicodeError",),
}


class ExceptionHierarchy:
    """``except``-clause matching over project + builtin class trees."""

    def __init__(self, index: ProjectIndex):
        self._project = index.class_bases()
        self._cache: Dict[str, Set[str]] = {}

    def ancestors(self, name: str) -> Set[str]:
        """``name`` plus every statically-known base, transitively.

        Unknown names are assumed to descend from ``Exception`` — the
        common case for classes defined outside the lint surface — so
        a broad ``except Exception`` handler still counts as catching
        them (fewer false escapes, never more).
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            parents: Iterable[str]
            if current in self._project:
                parents = set(self._project[current]) | \
                    set(BUILTIN_EXC_BASES.get(current, ()))
            elif current in BUILTIN_EXC_BASES:
                parents = BUILTIN_EXC_BASES[current]
            else:
                parents = ("Exception",)
            frontier.extend(parents)
        self._cache[name] = seen
        return seen

    def catches(self, raised: str, handlers: Iterable[str]) -> bool:
        """Whether any handler type name catches ``raised``."""
        ancestry = None
        for handler in handlers:
            if handler == "BaseException":
                return True
            if ancestry is None:
                ancestry = self.ancestors(raised)
            if handler in ancestry:
                return True
        return False


class CallGraph:
    """Edges between project functions, resolved from summaries."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.config = index.config
        self.nodes: List[Node] = []
        self._by_bare: Dict[str, List[Node]] = {}
        for module in index.modules():
            for qual in index.summary(module)["functions"]:
                node = (module, qual)
                self.nodes.append(node)
                bare = qual.split(".")[-1]
                self._by_bare.setdefault(bare, []).append(node)
        for candidates in self._by_bare.values():
            candidates.sort()
        self.nodes.sort()
        self._edges: Dict[Node, List[Tuple[int, Tuple[str, ...],
                                           Tuple[Node, ...]]]] = {}
        for node in self.nodes:
            self._edges[node] = self._build_edges(node)

    # ------------------------------------------------------------------
    # target resolution
    # ------------------------------------------------------------------
    def resolve_callable(self, kind: str, value: str,
                         cls: Optional[str] = None,
                         module: Optional[str] = None
                         ) -> Tuple[Node, ...]:
        """Function nodes a summarized call target can reach.

        ``ref`` targets resolve exactly (a class ref edges into its
        ``__init__`` when one exists); ``self`` targets search the
        enclosing class then its bases; ``dyn`` targets match by bare
        name, dropped entirely above the ``dynamic-call-fanout`` cap.
        """
        if kind == "ref":
            resolved = self.index.resolve(value)
            if resolved is None:
                return ()
            rkind, rmodule, rqual = resolved
            if rkind == "function":
                return ((rmodule, rqual),)
            if rkind == "class":
                init = f"{rqual}.__init__"
                if self.index.function(rmodule, init) is not None:
                    return ((rmodule, init),)
            return ()
        if kind == "self" and cls is not None and module is not None:
            found = self._resolve_method(module, cls, value)
            if found is not None:
                return (found,)
            kind = "dyn"
        if kind == "dyn":
            candidates = self._by_bare.get(value, [])
            if 0 < len(candidates) <= self.config.dynamic_call_fanout:
                return tuple(candidates)
        return ()

    def _resolve_method(self, module: str, cls: str,
                        method: str) -> Optional[Node]:
        seen: Set[str] = set()
        frontier = [f"{module}.{cls}"]
        while frontier:
            ref = frontier.pop(0)
            if ref in seen:
                continue
            seen.add(ref)
            resolved = self.index.resolve(ref)
            if resolved is None or resolved[0] != "class":
                continue
            _, cmodule, cqual = resolved
            candidate = f"{cqual}.{method}"
            if self.index.function(cmodule, candidate) is not None:
                return (cmodule, candidate)
            summary = self.index.summary(cmodule)
            frontier.extend(summary["classes"][cqual]["bases"])
        return None

    def _build_edges(self, node: Node
                     ) -> List[Tuple[int, Tuple[str, ...],
                                     Tuple[Node, ...]]]:
        module, qual = node
        info = self.index.function(module, qual)
        edges = []
        for line, kind, value, caught in info["calls"]:
            targets = self.resolve_callable(kind, value,
                                            cls=info.get("cls"),
                                            module=module)
            if targets:
                edges.append((line, tuple(caught), targets))
        return edges

    def edges(self, node: Node) -> List[Tuple[int, Tuple[str, ...],
                                              Tuple[Node, ...]]]:
        """``(line, caught-at-site, targets)`` for each resolved call."""
        return self._edges.get(node, [])

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def reachable(self, entries: Iterable[Node]
                  ) -> Dict[Node, Tuple[Node, ...]]:
        """BFS closure: node -> the path of nodes that reached it."""
        paths: Dict[Node, Tuple[Node, ...]] = {}
        queue = deque()
        for entry in sorted(set(entries)):
            if entry in self._edges and entry not in paths:
                paths[entry] = (entry,)
                queue.append(entry)
        while queue:
            node = queue.popleft()
            for _, _, targets in self.edges(node):
                for target in targets:
                    if target not in paths:
                        paths[target] = paths[node] + (target,)
                        queue.append(target)
        return paths

    # ------------------------------------------------------------------
    # exception escape
    # ------------------------------------------------------------------
    def escapes(self) -> Dict[Node, Dict[str, tuple]]:
        """Fixpoint: node -> {exception name -> witness}.

        A witness is ``("raise", line)`` for a local raise or
        ``("call", line, callee)`` for propagation, so a report can
        reconstruct the chain down to the offending ``raise``.
        """
        hierarchy = ExceptionHierarchy(self.index)
        escapes: Dict[Node, Dict[str, tuple]] = {
            node: {} for node in self.nodes}
        callers: Dict[Node, Set[Node]] = {}
        for node in self.nodes:
            module, qual = node
            info = self.index.function(module, qual)
            for line, name, caught in info["raises"]:
                if hierarchy.catches(name, caught):
                    continue
                escapes[node].setdefault(name, ("raise", line))
            for _, _, targets in self.edges(node):
                for target in targets:
                    callers.setdefault(target, set()).add(node)
        queue = deque(self.nodes)
        queued = set(self.nodes)
        while queue:
            node = queue.popleft()
            queued.discard(node)
            changed = False
            for line, caught, targets in self.edges(node):
                for target in targets:
                    for name in sorted(escapes[target]):
                        if name in escapes[node]:
                            continue
                        if hierarchy.catches(name, caught):
                            continue
                        escapes[node][name] = ("call", line, target)
                        changed = True
            if changed:
                for caller in sorted(callers.get(node, ())):
                    if caller not in queued:
                        queued.add(caller)
                        queue.append(caller)
        return escapes

    def escape_chain(self, escapes: Dict[Node, Dict[str, tuple]],
                     node: Node, name: str,
                     limit: int = 8) -> Tuple[List[Node], Optional[int]]:
        """Follow witnesses to the raise: (call path, raise line)."""
        path = [node]
        current = node
        for _ in range(limit):
            witness = escapes.get(current, {}).get(name)
            if witness is None:
                return path, None
            if witness[0] == "raise":
                return path, witness[1]
            current = witness[2]
            path.append(current)
        return path, None
