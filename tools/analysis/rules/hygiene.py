"""API-hygiene rules (``A4xx``, AST half): docstring and annotation
coverage for the gated public API.

``A401`` is the migrated ``check_docstrings.py`` gate (same traversal,
same public-name policy, same package list from
``[tool.repro.docstrings]``) re-expressed as an analyzer pass so there
is one report, one suppression syntax, and one baseline.  ``A404`` adds
the annotation-coverage companion for the model-building core.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..config import path_matches
from ..core import FileContext, Rule


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def public_definitions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(dotted name, node)`` for the module, every public
    top-level function/class, and every public method — the exact
    surface the historical docstring gate checked."""
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)) and \
                        _is_public(child.name):
                    yield f"{node.name}.{child.name}", child


class DocstringCoverageRule(Rule):
    """A401: every public definition in a gated package has a docstring.

    ``__init__`` / ``__call__`` are exempt (their class docstring
    covers them) by the public-name policy: they don't start the name.
    """

    rule_id = "A401"
    family = "hygiene"
    title = "missing public docstring"

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.docstring_packages)

    def check_file(self, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        for name, node in public_definitions(ctx.tree):
            if not ast.get_docstring(node):
                yield getattr(node, "lineno", 1), \
                    f"public definition {name!r} has no docstring"


class AnnotationCoverageRule(Rule):
    """A404: the gated packages' public functions are fully annotated.

    Every parameter except ``self``/``cls`` needs an annotation, and so
    does the return (``__init__`` excepted — it always returns None).
    ``*args``/``**kwargs`` count as parameters.
    """

    rule_id = "A404"
    family = "hygiene"
    title = "untyped public function"

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.annotations_packages)

    @staticmethod
    def _missing(node: ast.AST) -> List[str]:
        args = node.args
        missing = [arg.arg for arg in
                   args.posonlyargs + args.args + args.kwonlyargs
                   if arg.annotation is None and
                   arg.arg not in ("self", "cls")]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        return missing

    def check_file(self, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        for name, node in public_definitions(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            missing = self._missing(node)
            if missing:
                yield node.lineno, \
                    (f"public function {name!r} missing annotations: "
                     f"{', '.join(missing)}")
