"""Numerical-safety rules (``N2xx``): the float pitfalls that corrupt
side-channel statistics silently.

EMSim's per-cycle model is least-squares over long float arrays; the
failure modes that matter here are exact float comparison (Eq. 5-9
coefficients are never exactly equal), division by data-dependent
aggregates (an empty coverage group or an all-zero window is a crash or
an ``inf`` that poisons a whole campaign), and dtype downcasts that
quietly shave mantissa bits off hot arrays.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import FileContext, Rule

#: aggregate builtins whose result is zero for degenerate input.
AGGREGATE_NAME_FNS = frozenset({"len", "sum"})

#: method spellings of the same aggregates (``x.sum()``, ``x.std()``).
AGGREGATE_METHODS = frozenset({"sum", "std", "var", "mean", "ptp"})

#: numpy spellings (resolved through import aliases).
AGGREGATE_NP_FNS = frozenset({
    "numpy.sum", "numpy.std", "numpy.var", "numpy.mean", "numpy.ptp",
    "numpy.count_nonzero", "numpy.linalg.norm",
})

#: dtype spellings that narrow float64/int64 arrays.
NARROW_DTYPES = frozenset({
    "numpy.float16", "numpy.float32", "numpy.int8", "numpy.int16",
    "numpy.int32", "numpy.uint8", "numpy.uint16", "numpy.uint32",
})

#: string forms of the same dtypes (including struct-style codes).
NARROW_DTYPE_STRINGS = frozenset({
    "float16", "float32", "int8", "int16", "int32", "uint8", "uint16",
    "uint32", "f2", "f4", "i1", "i2", "i4", "u1", "u2", "u4",
    "<f2", "<f4", "<i1", "<i2", "<i4", "<u1", "<u2", "<u4",
    ">f2", ">f4", ">i1", ">i2", ">i4", ">u1", ">u2", ">u4",
})


class FloatEqualityRule(Rule):
    """N201: no ``==`` / ``!=`` against float literals.

    Computed floats are almost never exactly equal to a literal; use a
    tolerance (``math.isclose`` / ``np.isclose``) or an ordered
    comparison.  Where exact equality *is* well defined (values that
    are exact integer counts stored as floats), suppress with a reason.
    """

    rule_id = "N201"
    family = "numerical"
    title = "exact float comparison"
    node_types = (ast.Compare,)

    def check_node(self, node: ast.Compare,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and \
                        isinstance(side.value, float):
                    yield node, (f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                                 f"against float literal {side.value!r}; "
                                 f"use a tolerance or an ordered "
                                 f"comparison")
                    break


class AggregateDivisionRule(Rule):
    """N202: don't divide by an aggregate call inline.

    ``x / len(y)``, ``x / np.sum(w)``, ``x /= k.sum()`` crash (or go
    ``inf``) the moment the aggregate is zero.  The sanctioned pattern
    is to bind the aggregate to a name and guard it (raise, clamp, or
    early-return) — or to wrap the division in ``with np.errstate`` when
    propagating non-finite values is the intended semantics.
    """

    rule_id = "N202"
    family = "numerical"
    title = "division by unguarded aggregate"
    node_types = (ast.BinOp, ast.AugAssign)

    def _aggregate_call(self, node: ast.AST,
                        ctx: FileContext) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        qual = ctx.qualname(node.func)
        if qual in AGGREGATE_NAME_FNS or qual in AGGREGATE_NP_FNS:
            return qual
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in AGGREGATE_METHODS and not node.args:
            return f"*.{node.func.attr}"
        return None

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, ast.BinOp):
            op, denominator = node.op, node.right
        else:
            op, denominator = node.op, node.value
        if not isinstance(op, (ast.Div, ast.FloorDiv)):
            return
        if ctx.in_errstate(node.lineno):
            return
        label = self._aggregate_call(denominator, ctx)
        if label is not None:
            yield node, (f"division by {label}(...) with no zero guard; "
                         f"bind it to a name and guard it, or wrap the "
                         f"division in np.errstate")


class DtypeDowncastRule(Rule):
    """N203: narrowing dtype conversions must be explicit about safety.

    ``astype(np.float32)`` and friends silently drop precision (or
    wrap integers).  Pass ``casting=`` to state the intent, widen
    instead, or suppress with a reason proving the values fit.
    """

    rule_id = "N203"
    family = "numerical"
    title = "silent dtype downcast"
    node_types = (ast.Call,)

    def _narrow_dtype(self, node: ast.AST,
                      ctx: FileContext) -> Optional[str]:
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, str) and \
                node.value in NARROW_DTYPE_STRINGS:
            return node.value
        qual = ctx.qualname(node)
        if qual in NARROW_DTYPES:
            return qual
        return None

    def check_node(self, node: ast.Call,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if any(kw.arg == "casting" for kw in node.keywords):
            return
        # x.astype(<narrow>)
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "astype" and node.args:
            narrow = self._narrow_dtype(node.args[0], ctx)
            if narrow:
                yield node, (f"astype({narrow}) narrows silently; pass "
                             f"casting= or suppress with a proof the "
                             f"values fit")
            return
        # np.asarray(..., dtype=<narrow>) / np.array / np.zeros ...
        qual = ctx.qualname(node.func)
        if qual in ("numpy.asarray", "numpy.array", "numpy.frombuffer",
                    "numpy.fromiter"):
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    narrow = self._narrow_dtype(keyword.value, ctx)
                    if narrow:
                        yield node, (f"{qual}(dtype={narrow}) narrows "
                                     f"silently; widen or suppress with "
                                     f"a proof the values fit")
        elif qual in NARROW_DTYPES and len(node.args) == 1:
            yield node, (f"{qual}(...) narrows silently; widen or "
                         f"suppress with a proof the value fits")
