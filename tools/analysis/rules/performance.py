"""Performance rules (``P6xx``): the simulation hot path must not churn
objects.

The columnar activity-trace engine removed per-cycle dict/dataclass
construction from recording (``docs/architecture.md``); a 3000-cycle
kernel used to build five ``StageOccupancy`` objects and several dicts
*every cycle*, and that allocation traffic — not arithmetic — dominated
cold simulate time.  This pass keeps the win: any allocation expression
that re-enters a configured hot-loop function is a finding, so a casual
"just build a small dict here" refactor fails ``make lint`` instead of
silently costing 2x.  The preserved ``Legacy*`` reference paths carry
explicit ``allow[P601]`` tags — the seed's cost profile there is the
point, and the tag makes that an audited decision.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import FileContext, Rule

#: allocation expression nodes flagged inside hot-loop functions.
_ALLOCATION_NODES = {
    ast.Dict: "dict display",
    ast.List: "list display",
    ast.Set: "set display",
    ast.DictComp: "dict comprehension",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.GeneratorExp: "generator expression",
}

#: builtin constructors flagged when called by name.
_ALLOCATION_CALLS = frozenset({"dict", "list", "set"})


class HotLoopAllocationRule(Rule):
    """P601: no per-call container/object construction in hot loops.

    A function listed under ``hot-loop-functions`` (as
    ``Class.method``) runs once per simulated cycle — or per latch
    write, several times per cycle.  Inside it, every dict/list/set
    display or comprehension, every ``dict()``/``list()``/``set()``
    call, and every construction of a type listed under
    ``hot-loop-types`` is a finding.  Findings anchor at the enclosing
    *statement*, so a standalone allow comment above the statement
    covers a multi-line construction.  Default-argument expressions are
    exempt (they evaluate once at ``def`` time).
    """

    rule_id = "P601"
    family = "performance"
    title = "per-call allocation in a hot-loop function"
    node_types = tuple(_ALLOCATION_NODES) + (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(ctx.config.hot_loop_functions)

    def _describe(self, node: ast.AST,
                  ctx: FileContext) -> Optional[str]:
        """What ``node`` allocates, or ``None`` if it is not flagged."""
        if type(node) in _ALLOCATION_NODES:
            return _ALLOCATION_NODES[type(node)]
        qual = ctx.qualname(node.func)
        if qual is None:
            return None
        name = qual.rpartition(".")[2]
        if qual in _ALLOCATION_CALLS:
            return f"{qual}() call"
        if name in ctx.config.hot_loop_types:
            return f"{name} construction"
        return None

    def _hot_function(self, node: ast.AST,
                      ctx: FileContext) -> Optional[Tuple[str, ast.stmt]]:
        """``(Class.method, enclosing statement)`` when ``node`` sits in
        a configured hot-loop function's body (``None`` otherwise)."""
        statement: Optional[ast.stmt] = None
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            parent = ctx.parent(cursor)
            if isinstance(cursor, ast.arguments):
                return None  # default values evaluate at def time
            if isinstance(cursor, ast.stmt) and statement is None and \
                    not isinstance(cursor, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)):
                statement = cursor
            if isinstance(cursor, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)) and \
                    isinstance(parent, ast.ClassDef):
                qualified = f"{parent.name}.{cursor.name}"
                if qualified in ctx.config.hot_loop_functions:
                    return qualified, statement or cursor
                return None  # methods resolve at their own class only
            cursor = parent
        return None

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        description = self._describe(node, ctx)
        if description is None:
            return
        located = self._hot_function(node, ctx)
        if located is None:
            return
        qualified, statement = located
        yield statement, (f"{description} in hot-loop function "
                          f"{qualified}; this runs every simulated "
                          f"cycle — hoist the construction out of the "
                          f"per-cycle path (precomputed table, "
                          f"preallocated buffer, or positional writer)")
