"""Performance rules (``P6xx``): the simulation hot path must not churn
objects.

The columnar activity-trace engine removed per-cycle dict/dataclass
construction from recording (``docs/architecture.md``); a 3000-cycle
kernel used to build five ``StageOccupancy`` objects and several dicts
*every cycle*, and that allocation traffic — not arithmetic — dominated
cold simulate time.  This pass keeps the win: any allocation expression
that re-enters a configured hot-loop function is a finding, so a casual
"just build a small dict here" refactor fails ``make lint`` instead of
silently costing 2x.  The preserved ``Legacy*`` reference paths carry
explicit ``allow[P601]`` tags — the seed's cost profile there is the
point, and the tag makes that an audited decision.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Optional, Tuple

from ..core import FileContext, Rule


def _enclosing_function(node: ast.AST, ctx: FileContext
                        ) -> Optional[Tuple[str, ast.stmt]]:
    """``(qualified name, enclosing statement)`` of the function whose
    body contains ``node`` (``None`` at module scope or in default
    arguments).

    Methods qualify as ``Class.method``; module-level functions as
    ``module.function`` (the module's file stem) — the two naming
    schemes the ``hot-loop-functions`` and ``convolve-oracle-functions``
    config lists use.
    """
    statement: Optional[ast.stmt] = None
    cursor: Optional[ast.AST] = node
    while cursor is not None:
        parent = ctx.parent(cursor)
        if isinstance(cursor, ast.arguments):
            return None  # default values evaluate at def time
        if isinstance(cursor, ast.stmt) and statement is None and \
                not isinstance(cursor, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
            statement = cursor
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(parent, ast.ClassDef):
                scope = parent.name
            elif isinstance(parent, ast.Module):
                scope = os.path.basename(ctx.path)[:-len(".py")]
            else:
                cursor = parent
                continue  # nested function: resolve at the outer scope
            return f"{scope}.{cursor.name}", statement or cursor
        cursor = parent
    return None

#: allocation expression nodes flagged inside hot-loop functions.
_ALLOCATION_NODES = {
    ast.Dict: "dict display",
    ast.List: "list display",
    ast.Set: "set display",
    ast.DictComp: "dict comprehension",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.GeneratorExp: "generator expression",
}

#: builtin constructors flagged when called by name.
_ALLOCATION_CALLS = frozenset({"dict", "list", "set"})


class HotLoopAllocationRule(Rule):
    """P601: no per-call container/object construction in hot loops.

    A function listed under ``hot-loop-functions`` (as
    ``Class.method``) runs once per simulated cycle — or per latch
    write, several times per cycle.  Inside it, every dict/list/set
    display or comprehension, every ``dict()``/``list()``/``set()``
    call, and every construction of a type listed under
    ``hot-loop-types`` is a finding.  Findings anchor at the enclosing
    *statement*, so a standalone allow comment above the statement
    covers a multi-line construction.  Default-argument expressions are
    exempt (they evaluate once at ``def`` time).
    """

    rule_id = "P601"
    family = "performance"
    title = "per-call allocation in a hot-loop function"
    node_types = tuple(_ALLOCATION_NODES) + (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(ctx.config.hot_loop_functions)

    def _describe(self, node: ast.AST,
                  ctx: FileContext) -> Optional[str]:
        """What ``node`` allocates, or ``None`` if it is not flagged."""
        if type(node) in _ALLOCATION_NODES:
            return _ALLOCATION_NODES[type(node)]
        qual = ctx.qualname(node.func)
        if qual is None:
            return None
        name = qual.rpartition(".")[2]
        if qual in _ALLOCATION_CALLS:
            return f"{qual}() call"
        if name in ctx.config.hot_loop_types:
            return f"{name} construction"
        return None

    def _hot_function(self, node: ast.AST,
                      ctx: FileContext) -> Optional[Tuple[str, ast.stmt]]:
        """``(qualified name, enclosing statement)`` when ``node`` sits
        in a configured hot-loop function's body (``None`` otherwise);
        functions resolve at their own scope only."""
        located = _enclosing_function(node, ctx)
        if located is None or \
                located[0] not in ctx.config.hot_loop_functions:
            return None
        return located

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        description = self._describe(node, ctx)
        if description is None:
            return
        located = self._hot_function(node, ctx)
        if located is None:
            return
        qualified, statement = located
        yield statement, (f"{description} in hot-loop function "
                          f"{qualified}; this runs every simulated "
                          f"cycle (or once per trace in the signal "
                          f"engine) — hoist the construction out of "
                          f"the hot path (precomputed table, "
                          f"preallocated buffer, or positional writer)")


class ConvolveOutsideOracleRule(Rule):
    """P602: direct ``np.convolve`` only in the sanctioned oracle path.

    The signal engine replaced direct Eq. 6 convolution with a planned
    polyphase/FFT synthesis (``repro.signal.reconstruction``); the
    seed's ``np.convolve`` evaluation survives solely as the
    ``method="direct"`` oracle the engine is asserted against.  Any
    other ``np.convolve`` call in the source tree is a finding unless
    its enclosing function is listed under
    ``convolve-oracle-functions`` (same ``Class.method`` /
    ``module.function`` naming as the P601 list) or the site carries an
    explicit ``allow[P602]`` tag — signal *filtering* legitimately
    convolves, and the tags keep those sites audited decisions.
    """

    rule_id = "P602"
    family = "performance"
    title = "direct convolution outside the sanctioned oracle path"
    node_types = (ast.Call,)

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if ctx.qualname(node.func) != "numpy.convolve":
            return
        located = _enclosing_function(node, ctx)
        if located is not None and \
                located[0] in ctx.config.convolve_oracle_functions:
            return
        yield node, ("np.convolve outside the sanctioned direct-oracle "
                     "path; synthesize Eq. 6 waveforms through the "
                     "planned engine (repro.signal.reconstruction."
                     "reconstruct) — or tag a legitimate filtering "
                     "convolution with allow[P602]")
