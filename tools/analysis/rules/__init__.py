"""Rule registry: one place that knows every pass, in report order.

``all_rules()`` instantiates the full set; the CLI's ``--select`` /
``--ignore`` filter it by rule id.  Register new passes here so
``--list-rules``, the gate, and the docs all see them.
"""

from __future__ import annotations

from typing import List

from ..core import Rule, SyntaxErrorRule, UnusedSuppressionRule
from .contracts import (BareExceptRule, CampaignTimeoutRule,
                        CliErrorTypeRule, ExitCodeTableRule,
                        SwallowedExceptionRule)
from .determinism import (ForeignPoolRule, SetIterationRule, UnseededRngRule,
                          UnsortedWalkRule, WallClockRule)
from .docs import CliReferenceRule, DocLinkRule
from .hygiene import AnnotationCoverageRule, DocstringCoverageRule
from .numeric import (AggregateDivisionRule, DtypeDowncastRule,
                      FloatEqualityRule)
from .observability import CampaignManifestRule, MetricReferenceRule
from .performance import ConvolveOutsideOracleRule, HotLoopAllocationRule
from .wholeprogram import (ExitContractRule, IpcHygieneRule,
                           SeedProvenanceRule)


def all_rules() -> List[Rule]:
    """Every registered pass, ordered by rule id."""
    rules = [
        SyntaxErrorRule(),
        UnseededRngRule(),
        WallClockRule(),
        UnsortedWalkRule(),
        SetIterationRule(),
        ForeignPoolRule(),
        SeedProvenanceRule(),
        FloatEqualityRule(),
        AggregateDivisionRule(),
        DtypeDowncastRule(),
        BareExceptRule(),
        SwallowedExceptionRule(),
        CliErrorTypeRule(),
        ExitCodeTableRule(),
        CampaignTimeoutRule(),
        ExitContractRule(),
        DocstringCoverageRule(),
        UnusedSuppressionRule(),
        DocLinkRule(),
        CliReferenceRule(),
        AnnotationCoverageRule(),
        CampaignManifestRule(),
        MetricReferenceRule(),
        HotLoopAllocationRule(),
        ConvolveOutsideOracleRule(),
        IpcHygieneRule(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)
