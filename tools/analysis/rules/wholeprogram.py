"""Whole-program rules: the invariants no single file can witness.

All three passes run on the :class:`~tools.analysis.project
.ProjectIndex` + :class:`~tools.analysis.callgraph.CallGraph` the
engine builds over the full lint surface:

* ``D201`` — seed provenance: an unseeded ``random.*`` /
  ``np.random.*`` call three frames below ``EMSim.simulate`` breaks
  bit-reproducibility just as surely as one inside it; this pass walks
  the call graph from the configured ``seed-entry-points`` and flags
  every reachable unseeded-RNG site with the path that reaches it.
* ``E601`` — exit-code contracts: the CLI promises the documented
  ``ReproError`` exit-code table (``docs/robustness.md``); this pass
  computes, per CLI entry point, the exception types that can
  propagate all the way out (class-hierarchy-aware ``except``
  subtraction included) and flags the raise sites whose types the
  top-level handler does not convert.
* ``X701`` — IPC hygiene: values returned by ``parallel_map`` /
  ``supervised_map`` workers cross a process boundary; anything that
  is not a codec-serialized array, a plain JSON-able type, or an
  explicitly allow-listed class (``ipc-allowlist``) is ad-hoc pickle
  of a custom object and gets flagged at the worker's return site.

Each pass is a conservative *under*-approximation where the AST runs
out (computed callables above the dynamic-fanout cap, values bound to
locals): it prefers missing an exotic path to drowning the gate in
false positives, and the per-file rules still cover the local cases.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..callgraph import CallGraph, ExceptionHierarchy, Node
from ..config import path_matches
from ..core import Finding, ProgramRule


def _route(chain: Tuple[Node, ...], limit: int = 5) -> str:
    """Human-readable call path, elided in the middle when long."""
    quals = [qual for _, qual in chain]
    if len(quals) > limit:
        quals = quals[:limit - 1] + ["...", quals[-1]]
    return " -> ".join(quals)


class SeedProvenanceRule(ProgramRule):
    """D201: no unseeded RNG reachable from a seed-critical entry."""

    rule_id = "D201"
    family = "determinism"
    title = "unseeded RNG reachable from a seed-critical entry point"

    def check_program(self, index) -> Iterator[Finding]:
        graph = CallGraph(index)
        wanted = set(index.config.seed_entry_points)
        entries = [node for node in graph.nodes if node[1] in wanted]
        paths = graph.reachable(entries)
        seen: Set[Tuple[str, int, int]] = set()
        for node in sorted(paths):
            info = index.function(*node)
            record = index.by_module[node[0]]
            for line, col, label in info["rng"]:
                key = (record.path, line, col)
                if key in seen:
                    continue
                seen.add(key)
                chain = paths[node]
                yield Finding(
                    path=record.path, line=line, col=col,
                    rule=self.rule_id,
                    message=f"{label} is unseeded/global RNG state "
                            f"reachable from seed-critical entry "
                            f"{chain[0][1]} (path: {_route(chain)}); "
                            f"traces must be a pure function of the "
                            f"seed — plumb a seeded generator (or "
                            f"repro.parallel.spawn_seed) down this "
                            f"path instead")


class ExitContractRule(ProgramRule):
    """E601: CLI entry points keep the documented exit-code table."""

    rule_id = "E601"
    family = "contracts"
    title = "exception escapes a CLI entry without a documented exit code"

    def _entries(self, index, graph: CallGraph) -> List[Node]:
        entries = []
        for node in graph.nodes:
            module, qual = node
            record = index.by_module[module]
            if not path_matches(record.path, index.config.cli_modules):
                continue
            if "." in qual:
                continue
            if qual == "main" or qual.startswith("_cmd_"):
                entries.append(node)
        return sorted(entries)

    def check_program(self, index) -> Iterator[Finding]:
        graph = CallGraph(index)
        entries = self._entries(index, graph)
        if not entries:
            return
        escapes = graph.escapes()
        hierarchy = ExceptionHierarchy(index)
        handled = set(index.config.cli_handled_exceptions)
        exempt = set(index.config.cli_exempt_escapes)
        sites: Dict[Tuple[str, int, str],
                    Tuple[List[str], Tuple[Node, ...]]] = {}
        for entry in entries:
            for name in sorted(escapes[entry]):
                if name in exempt:
                    continue
                if hierarchy.ancestors(name) & handled:
                    continue
                chain, line = graph.escape_chain(escapes, entry, name)
                if line is None:
                    continue
                raise_module = chain[-1][0]
                path = index.by_module[raise_module].path
                key = (path, line, name)
                if key in sites:
                    sites[key][0].append(entry[1])
                else:
                    sites[key] = ([entry[1]], tuple(chain))
        for path, line, name in sorted(sites):
            entry_names, chain = sites[(path, line, name)]
            yield Finding(
                path=path, line=line, col=0, rule=self.rule_id,
                message=f"{name} raised here can escape the CLI entry "
                        f"point(s) {', '.join(sorted(set(entry_names)))} "
                        f"(path: {_route(chain)}) with no exit code in "
                        f"the documented ReproError table; raise a "
                        f"ReproError subclass or catch-and-convert it "
                        f"on that path (docs/robustness.md)")


class IpcHygieneRule(ProgramRule):
    """X701: worker return values must survive the IPC boundary."""

    rule_id = "X701"
    family = "ipc"
    title = "custom class crosses the worker boundary un-allow-listed"

    #: how many resolved-call hops to chase through a worker's returns.
    MAX_DEPTH = 5

    def check_program(self, index) -> Iterator[Finding]:
        graph = CallGraph(index)
        allow = set(index.config.ipc_allowlist)
        emitted: Set[Tuple[str, int, str]] = set()
        for module in index.modules():
            summary = index.summary(module)
            for qual in sorted(summary["functions"]):
                info = summary["functions"][qual]
                for _, wkind, wtarget in info["fanouts"]:
                    workers = graph.resolve_callable(
                        wkind, wtarget, cls=info.get("cls"),
                        module=module)
                    for worker in sorted(set(workers)):
                        yield from self._audit_worker(
                            index, graph, worker, allow, emitted)

    def _audit_worker(self, index, graph: CallGraph, worker: Node,
                      allow: Set[str],
                      emitted: Set[Tuple[str, int, str]]
                      ) -> Iterator[Finding]:
        worker_qual = worker[1]
        stack: List[Tuple[Node, int]] = [(worker, 0)]
        visited: Set[Node] = set()
        while stack:
            node, depth = stack.pop()
            if node in visited or depth > self.MAX_DEPTH:
                continue
            visited.add(node)
            info = index.function(*node)
            for line, kind, value in info["returns"]:
                if kind == "ref":
                    resolved = index.resolve(value)
                    if resolved is None:
                        continue  # external call: numpy etc. are fine
                    rkind, rmodule, rqual = resolved
                    if rkind == "class":
                        bare = rqual.split(".")[-1]
                        if bare in allow:
                            continue
                        path = index.by_module[node[0]].path
                        key = (path, line, bare)
                        if key in emitted:
                            continue
                        emitted.add(key)
                        yield Finding(
                            path=path, line=line, col=0,
                            rule=self.rule_id,
                            message=f"pool worker {worker_qual} "
                                    f"returns {bare} (defined in "
                                    f"{rmodule}) across the process "
                                    f"boundary; IPC payloads must be "
                                    f"codec-serialized arrays, plain "
                                    f"JSON-able types, or a class on "
                                    f"the audited ipc-allowlist")
                    elif rkind == "function":
                        stack.append(((rmodule, rqual), depth + 1))
                else:
                    targets = graph.resolve_callable(
                        kind, value, cls=info.get("cls"),
                        module=node[0])
                    if len(targets) == 1:
                        stack.append((targets[0], depth + 1))
                    # ambiguous dynamic call: opaque by design
