"""Observability rules (``A5xx``): run records stay present and honest.

Two invariants guard the observability layer added for run manifests:

* ``A501`` — the campaign entry points (the hours-long workloads in
  the configured ``campaign-modules``) must participate in run
  recording: a public module-level function that fans out through the
  supervised pool has to create a campaign record (or visibly accept
  one), otherwise a run manifest silently loses that campaign.
* ``A502`` — the instrumentation-name reference table in
  ``docs/observability.md`` must list exactly the span/phase/counter/
  gauge/histogram names the source emits, so the docs cannot rot as
  instrumentation is added or renamed.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterator, List, Set, Tuple

from ..config import path_matches
from ..core import FileContext, Project, ProjectRule, Rule


class CampaignManifestRule(Rule):
    """A501: campaign entry points must create or accept a run record.

    In the ``campaign-modules``, every *public, module-level* function
    whose body (including nested helpers) reaches ``supervised_map`` /
    ``parallel_map`` must either reference the manifest layer
    (``record_campaign``, ``get_recorder``, ``RunRecorder``,
    ``start_run``) or take an explicit ``recorder`` / ``manifest`` /
    ``recording`` parameter through which a caller passes one.
    Private helpers and methods are exempt — the contract sits on the
    entry point, not on every rung below it.
    """

    rule_id = "A501"
    family = "observability"
    title = "campaign entry point without a run record"
    node_types = (ast.FunctionDef,)

    FANOUT_FNS = frozenset({"parallel_map", "supervised_map"})
    RECORD_NAMES = frozenset({"record_campaign", "get_recorder",
                              "RunRecorder", "start_run"})
    RECORD_PARAMS = frozenset({"recorder", "manifest", "recording"})

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.campaign_modules)

    def _fans_out(self, node: ast.FunctionDef, ctx: FileContext) -> bool:
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            qual = ctx.qualname(inner.func)
            if qual is not None and \
                    qual.rpartition(".")[2] in self.FANOUT_FNS:
                return True
        return False

    def _records(self, node: ast.FunctionDef) -> bool:
        arguments = node.args
        parameters = (arguments.posonlyargs + arguments.args +
                      arguments.kwonlyargs)
        if any(argument.arg in self.RECORD_PARAMS
               for argument in parameters):
            return True
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and \
                    inner.id in self.RECORD_NAMES:
                return True
            if isinstance(inner, ast.Attribute) and \
                    inner.attr in self.RECORD_NAMES:
                return True
        return False

    def check_node(self, node: ast.FunctionDef,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if node.name.startswith("_"):
            return
        if not isinstance(ctx.parent(node), ast.Module):
            return
        if not self._fans_out(node, ctx):
            return
        if self._records(node):
            return
        yield node, (f"campaign entry point {node.name!r} fans out "
                     f"through the supervised pool without creating a "
                     f"run record; wrap the campaign in "
                     f"record_campaign(...) (or accept a recorder/"
                     f"manifest/recording parameter) so --trace-dir "
                     f"manifests do not silently lose it")


#: instrumentation-emitting methods whose literal first argument is a
#: span/phase/counter/gauge/histogram name.
_EMITTERS = frozenset({"count", "increment", "set_gauge", "observe",
                       "span", "phase", "add_phase"})

#: shape of a real instrumentation name — lowercase segments joined by
#: dots, with ``<placeholder>`` segments for f-string parameters.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.(<[a-z_]+>|[a-z0-9_]+))*$")


def _is_name(token: str) -> bool:
    """Whether ``token`` looks like an instrumentation name.

    Beyond the shape regex, a real name always carries a dot (a
    namespace) or an underscore (a multi-word counter); this is what
    keeps unrelated stdlib calls such as ``"xyz".count("y")`` out of
    the extracted set.
    """
    return bool(_NAME_RE.match(token)) and ("." in token or
                                            "_" in token)


_BEGIN_MARK = "<!-- name-reference:begin -->"
_END_MARK = "<!-- name-reference:end -->"
_TOKEN_RE = re.compile(r"`([^`]+)`")


def _literal_name(argument: ast.expr) -> "str | None":
    """The instrumentation name in a literal or f-string first arg.

    F-string interpolations normalize to ``<expression-name>`` so
    ``f"trace_cache.{category}.hits"`` extracts as
    ``trace_cache.<category>.hits`` — one documented row per family.
    """
    if isinstance(argument, ast.Constant) and \
            isinstance(argument.value, str):
        return argument.value
    if isinstance(argument, ast.JoinedStr):
        parts: List[str] = []
        for value in argument.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            elif isinstance(value, ast.FormattedValue):
                inner = value.value
                if isinstance(inner, ast.Name):
                    parts.append(f"<{inner.id}>")
                elif isinstance(inner, ast.Attribute):
                    parts.append(f"<{inner.attr}>")
                else:
                    parts.append("<expr>")
        return "".join(parts)
    return None


def extract_names(root: str, package: str = "src/repro") -> Set[str]:
    """Every instrumentation name emitted by literal calls in ``package``.

    Walks the package AST looking for method calls named in
    ``_EMITTERS`` whose first argument is a string literal (or
    f-string, normalized); anything not shaped like a dotted
    instrumentation name is discarded.
    """
    names: Set[str] = set()
    base = os.path.join(root, package)
    for directory, subdirs, files in sorted(os.walk(base)):
        subdirs.sort()
        subdirs[:] = [d for d in subdirs if d != "__pycache__"]
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            with open(path) as handle:
                tree = ast.parse(handle.read(), filename=path)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                if not isinstance(node.func, ast.Attribute) or \
                        node.func.attr not in _EMITTERS:
                    continue
                name = _literal_name(node.args[0])
                if name is not None and _is_name(name):
                    names.add(name)
    return names


class MetricReferenceRule(ProjectRule):
    """A502: the docs name-reference table matches the emitted names.

    ``docs/observability.md`` carries a table delimited by
    ``name-reference:begin`` / ``name-reference:end`` HTML comments;
    every backticked token inside must be an instrumentation name the
    source actually emits, and every emitted name must appear.  Run
    ``python -m tools.analysis --select A502`` after adding a counter
    or span to see exactly which rows to add.
    """

    rule_id = "A502"
    family = "observability"
    title = "instrumentation name reference stale"

    REFERENCE = os.path.join("docs", "observability.md")

    #: consume cached per-module summaries when the engine built an
    #: index — a warm incremental run then never re-parses src/repro.
    needs_index = True

    def check_project(self,
                      project: Project) -> Iterator[Tuple[str, int, str]]:
        reference_path = os.path.join(project.root, self.REFERENCE)
        if project.index is not None:
            emitted = project.index.metric_names("src/repro")
        else:
            emitted = extract_names(project.root)
        if not os.path.exists(reference_path):
            if emitted:
                yield self.REFERENCE, 1, \
                    "missing docs/observability.md with the " \
                    "instrumentation name-reference table"
            return
        with open(reference_path) as handle:
            lines = handle.read().splitlines()
        begin = end = None
        for number, line in enumerate(lines, start=1):
            if _BEGIN_MARK in line and begin is None:
                begin = number
            elif _END_MARK in line and begin is not None:
                end = number
                break
        if begin is None or end is None:
            yield self.REFERENCE, 1, \
                f"name-reference markers ({_BEGIN_MARK} / {_END_MARK}) " \
                f"not found; the instrumentation table cannot be checked"
            return
        documented: Set[str] = set()
        for line in lines[begin:end - 1]:
            for token in _TOKEN_RE.findall(line):
                if _is_name(token):
                    documented.add(token)
        for name in sorted(emitted - documented):
            yield self.REFERENCE, begin, \
                f"emitted instrumentation name {name!r} is missing " \
                f"from the name-reference table"
        for name in sorted(documented - emitted):
            yield self.REFERENCE, begin, \
                f"documented instrumentation name {name!r} is no " \
                f"longer emitted anywhere under src/repro"
