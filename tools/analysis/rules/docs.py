"""API-hygiene rules (``A4xx``, project half): documentation integrity.

These are the two checks migrated from ``check_docs.py``: markdown
links must resolve (``A402``) and ``docs/cli.md`` must mention every
subcommand and long option the real argparse parser defines (``A403``).
They are :class:`~tools.analysis.core.ProjectRule` passes — they look
at repo artifacts rather than one Python AST.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

from ..core import Project, ProjectRule

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _markdown_files(project: Project) -> List[str]:
    """Repo-relative markdown surfaces named by ``doc-files``."""
    files: List[str] = []
    for entry in project.config.doc_files:
        absolute = os.path.join(project.root, entry)
        if os.path.isdir(absolute):
            files += [os.path.join(entry, name)
                      for name in sorted(os.listdir(absolute))
                      if name.endswith(".md")]
        elif os.path.exists(absolute):
            files.append(entry)
    return sorted(files)


class DocLinkRule(ProjectRule):
    """A402: every relative markdown link points at an existing file."""

    rule_id = "A402"
    family = "hygiene"
    title = "broken markdown link"

    def check_project(self,
                      project: Project) -> Iterator[Tuple[str, int, str]]:
        for relative in _markdown_files(project):
            absolute = os.path.join(project.root, relative)
            base = os.path.dirname(absolute)
            with open(absolute) as handle:
                lines = handle.read().splitlines()
            for number, line in enumerate(lines, start=1):
                for target in LINK_RE.findall(line):
                    if "://" in target or target.startswith("#") or \
                            target.startswith("mailto:"):
                        continue
                    resolved = os.path.normpath(os.path.join(
                        base, target.split("#", 1)[0]))
                    if not os.path.exists(resolved):
                        yield relative, number, \
                            f"broken link -> {target}"


class CliReferenceRule(ProjectRule):
    """A403: ``docs/cli.md`` documents the full argparse surface.

    Imports the real parser from :mod:`repro.cli` so the reference
    cannot silently rot when subcommands or flags are added.
    """

    rule_id = "A403"
    family = "hygiene"
    title = "CLI reference incomplete"

    REFERENCE = os.path.join("docs", "cli.md")

    @staticmethod
    def _long_options(parser) -> List[str]:
        options = []
        for action in parser._actions:
            options += [option for option in action.option_strings
                        if option.startswith("--") and option != "--help"]
        return options

    def check_project(self,
                      project: Project) -> Iterator[Tuple[str, int, str]]:
        import argparse

        reference_path = os.path.join(project.root, self.REFERENCE)
        if not os.path.exists(reference_path):
            return
        source = os.path.join(project.root, "src")
        if source not in sys.path:
            sys.path.insert(0, source)
        try:
            from repro.cli import _build_parser
        except ImportError:
            yield self.REFERENCE, 1, \
                "cannot import repro.cli to cross-check the reference"
            return
        with open(reference_path) as handle:
            reference = handle.read()
        parser = _build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name in sorted(action.choices):
                    sub = action.choices[name]
                    if f"`{name}`" not in reference:
                        yield self.REFERENCE, 1, \
                            f"subcommand {name!r} undocumented"
                    for option in self._long_options(sub):
                        if option not in reference:
                            yield self.REFERENCE, 1, \
                                f"{name} option {option} undocumented"
            else:
                for option in action.option_strings:
                    if option.startswith("--") and option != "--help" \
                            and option not in reference:
                        yield self.REFERENCE, 1, \
                            f"global option {option} undocumented"
