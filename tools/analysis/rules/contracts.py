"""Error-contract rules (``E3xx``): failures must stay typed and
mapped to the documented exit-code table.

PR 1 introduced the ``ReproError`` hierarchy so scripted pipelines can
branch on failure families via exit codes.  These passes keep that
contract tight: no handler may silently eat an exception, the CLI layer
may only raise typed errors, and every literal process exit code must
appear in the table in ``docs/robustness.md``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import FrozenSet, Iterator, Tuple

from ..config import REPO_ROOT, path_matches
from ..core import FileContext, Rule

#: non-ReproError raises the CLI layer is still allowed: argparse's own
#: conversion-error type (argparse turns it into exit code 2) and the
#: interpreter-level exits.
CLI_EXEMPT_RAISES = frozenset({
    "ArgumentTypeError", "ArgumentError", "SystemExit",
    "KeyboardInterrupt", "NotImplementedError",
})

#: fallback when ``repro.robustness.errors`` cannot be imported (kept in
#: sync by ``test_analysis.py::test_repro_error_names_in_sync``).
FALLBACK_REPRO_ERRORS = frozenset({
    "ReproError", "AcquisitionError", "CaptureQualityError",
    "ConvergenceError", "ModelFormatError", "ProbeError",
    "ConfigurationError", "AnalysisError", "CampaignError",
    "CheckpointError", "AssemblerError", "TraceCodecError",
    "MitigationError",
})


def repro_error_names() -> FrozenSet[str]:
    """Names of every class in the ``ReproError`` hierarchy.

    Resolved by importing :mod:`repro.robustness.errors` (the single
    source of truth), so a new error subclass is allowed from the CLI
    the moment it is defined; falls back to a static list when the
    package is unimportable (e.g. fixture runs outside the repo).
    """
    source = os.path.join(REPO_ROOT, "src")
    if source not in sys.path:
        sys.path.insert(0, source)
    try:
        from repro.robustness import errors
    except ImportError:  # pragma: no cover - repo always importable
        return FALLBACK_REPRO_ERRORS
    names = set()
    stack = [errors.ReproError]
    while stack:
        cls = stack.pop()
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return frozenset(names)


class BareExceptRule(Rule):
    """E301: no bare ``except:`` (or ``except BaseException:``).

    A bare handler catches ``SystemExit`` and ``KeyboardInterrupt``
    too, turning an operator's Ctrl-C into whatever the handler does;
    catch the narrowest ``ReproError`` family the caller can handle.
    """

    rule_id = "E301"
    family = "contracts"
    title = "bare except clause"
    node_types = (ast.ExceptHandler,)

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        """True when the handler body contains a bare ``raise``."""
        return any(isinstance(child, ast.Raise) and child.exc is None
                   for child in ast.walk(node))

    def check_node(self, node: ast.ExceptHandler,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if node.type is None:
            yield node, ("bare except: catches SystemExit and "
                         "KeyboardInterrupt; name the exception "
                         "family this code can actually handle")
        elif ctx.qualname(node.type) == "BaseException" and \
                not self._reraises(node):
            yield node, ("except BaseException: without re-raising "
                         "catches interpreter exits; re-raise, or "
                         "catch Exception / a ReproError family")


class SwallowedExceptionRule(Rule):
    """E302: an except body must *do* something with the failure.

    A handler whose entire body is ``pass`` (or ``...``) erases the
    error and every bit of evidence it existed.  Count it, log it,
    re-raise it, or fold the fallback logic into the handler itself;
    genuinely best-effort paths spell the intent out with
    ``contextlib.suppress(SpecificError)``.
    """

    rule_id = "E302"
    family = "contracts"
    title = "swallowed exception"
    node_types = (ast.ExceptHandler,)

    def check_node(self, node: ast.ExceptHandler,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        body = node.body
        if len(body) == 1 and (
                isinstance(body[0], ast.Pass) or
                (isinstance(body[0], ast.Expr) and
                 isinstance(body[0].value, ast.Constant) and
                 body[0].value.value is Ellipsis)):
            yield node, ("exception swallowed by an empty handler; "
                         "record it, re-raise, or move the fallback "
                         "into the handler body")


class CliErrorTypeRule(Rule):
    """E303: the CLI layer raises only ``ReproError`` subclasses.

    ``repro.cli.main`` maps ``ReproError`` families to exit codes and a
    one-line stderr message; any other exception type escapes as a raw
    traceback with exit code 1, which scripted pipelines cannot branch
    on.  Applies to the modules configured as ``cli-modules``.
    """

    rule_id = "E303"
    family = "contracts"
    title = "non-ReproError raise in the CLI layer"
    node_types = (ast.Raise,)

    def __init__(self) -> None:
        self._allowed = repro_error_names() | CLI_EXEMPT_RAISES

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.cli_modules)

    def check_node(self, node: ast.Raise,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if node.exc is None:  # re-raise keeps the original contract
            return
        target = node.exc.func if isinstance(node.exc, ast.Call) \
            else node.exc
        qual = ctx.qualname(target)
        if qual is None:  # raising a computed object; can't tell
            return
        name = qual.rpartition(".")[2]
        if name not in self._allowed:
            yield node, (f"raise {name} from the CLI layer; raise a "
                         f"ReproError subclass so the exit-code table "
                         f"stays truthful")


class ExitCodeTableRule(Rule):
    """E304: literal exit codes must come from the documented table.

    ``docs/robustness.md`` maps each ``ReproError`` family to one code;
    an undocumented ``sys.exit(3)`` silently forks that contract.
    Computed codes (``sys.exit(main())``) are trusted.
    """

    rule_id = "E304"
    family = "contracts"
    title = "undocumented literal exit code"
    node_types = (ast.Call,)

    def check_node(self, node: ast.Call,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if ctx.qualname(node.func) not in ("sys.exit", "os._exit"):
            return
        if len(node.args) != 1 or node.keywords:
            return
        code = node.args[0]
        if isinstance(code, ast.Constant) and \
                isinstance(code.value, int) and \
                not isinstance(code.value, bool) and \
                code.value not in ctx.config.exit_codes:
            yield node, (f"exit code {code.value} is not in the "
                         f"documented ReproError table "
                         f"(docs/robustness.md); add it there or map "
                         f"through exit_code_for()")


class CampaignTimeoutRule(Rule):
    """E305: campaign fan-outs must pass an explicit ``timeout=``.

    The supervised pool treats a missing ``timeout`` as "no deadline" —
    correct for short fan-outs, but in the campaign modules (model
    training, TVLA, SAVAT — the hours-long workloads) a hung worker
    then blocks the run forever.  Every ``parallel_map``/
    ``supervised_map`` call in a module configured under
    ``campaign-modules`` must state its deadline policy explicitly,
    even if that statement is ``timeout=None`` (visibly opting out) or
    a forwarded variable.  Calls that splat ``**kwargs`` are trusted.
    """

    rule_id = "E305"
    family = "contracts"
    title = "campaign fan-out without an explicit timeout"
    node_types = (ast.Call,)

    #: the supervised fan-out entry points of ``repro.parallel``.
    FANOUT_FNS = frozenset({"parallel_map", "supervised_map"})

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.campaign_modules)

    def check_node(self, node: ast.Call,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        qual = ctx.qualname(node.func)
        if qual is None:
            return
        name = qual.rpartition(".")[2]
        if name not in self.FANOUT_FNS:
            return
        for keyword in node.keywords:
            if keyword.arg == "timeout" or keyword.arg is None:
                return
        yield node, (f"{name} call in a campaign module without an "
                     f"explicit timeout=; state the per-item deadline "
                     f"(or timeout=None to visibly opt out) so hung "
                     f"workers cannot sink an hours-long run")
