"""Determinism rules (``D1xx``): every run must be a pure function of
its seeds.

The reproduction's acceptance bar is bit-identical output across runs,
worker counts, and machines.  These passes catch the classic ways
Python code silently breaks that: hidden global RNG state, clock reads
inside the simulation core, filesystem enumeration order, set-iteration
order, and process pools that bypass the sanctioned spawn-seeded
fan-out in :mod:`repro.parallel`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..config import path_matches
from ..core import FileContext, Rule

#: module-level :mod:`random` functions backed by the shared global
#: Mersenne Twister (list mirrors the stdlib docs).
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: legacy ``numpy.random`` module functions backed by the global
#: ``RandomState`` (seeded or not, they are shared mutable state).
GLOBAL_NP_RANDOM_FNS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "laplace",
    "lognormal", "normal", "permutation", "poisson", "rand", "randint",
    "randn", "random", "random_sample", "ranf", "sample", "seed",
    "set_state", "shuffle", "standard_normal", "uniform",
})

#: constructors that are fine *with* a seed but nondeterministic bare.
SEEDED_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom", "numpy.random.default_rng",
    "numpy.random.RandomState", "numpy.random.SeedSequence",
})

#: wall-clock reads: the value depends on when the run happens.
WALL_CLOCK_FNS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: monotonic clocks: fine for profiling layers, banned in the
#: simulation core where outputs must not depend on timing at all.
MONOTONIC_CLOCK_FNS = frozenset({
    "time.monotonic", "time.monotonic_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
})

#: filesystem enumerators whose order is OS/filesystem dependent.
UNORDERED_WALK_FNS = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})


class UnseededRngRule(Rule):
    """D101: randomness must come from an explicitly seeded generator."""

    rule_id = "D101"
    family = "determinism"
    title = "unseeded or global RNG state"
    node_types = (ast.Call,)

    def check_node(self, node: ast.Call,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        qual = ctx.qualname(node.func)
        if qual is None:
            return
        module, _, name = qual.rpartition(".")
        if module == "random" and name in GLOBAL_RANDOM_FNS:
            yield node, (f"random.{name}() draws from the shared global "
                         f"Mersenne Twister; use a seeded "
                         f"random.Random(seed) instance")
        elif module == "numpy.random" and name in GLOBAL_NP_RANDOM_FNS:
            yield node, (f"np.random.{name}() mutates numpy's global "
                         f"RandomState; use np.random.default_rng(seed) "
                         f"or repro.parallel.spawn_seed")
        elif qual in SEEDED_CONSTRUCTORS and not node.args and \
                not node.keywords:
            yield node, (f"{qual}() without a seed is entropy-seeded "
                         f"and breaks run-to-run reproducibility")


class WallClockRule(Rule):
    """D102: no clock reads where outputs must be seed-pure.

    Wall-clock calls are banned everywhere on the lint surface;
    monotonic clocks (``perf_counter`` and friends) are additionally
    banned inside the ``monotonic-strict`` packages — the simulation
    core's outputs must not be able to depend on timing.  Modules
    listed as ``clock-owner-modules`` (the profiling layer) are exempt:
    they *are* the sanctioned place to read clocks.
    """

    rule_id = "D102"
    family = "determinism"
    title = "wall-clock or in-core monotonic clock read"
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not path_matches(ctx.path,
                                ctx.config.clock_owner_modules)

    def check_node(self, node: ast.Call,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        qual = ctx.qualname(node.func)
        if qual in WALL_CLOCK_FNS:
            yield node, (f"{qual}() reads the wall clock; outputs must "
                         f"be a pure function of seeds and inputs")
        elif qual in MONOTONIC_CLOCK_FNS and \
                path_matches(ctx.path, ctx.config.monotonic_strict):
            yield node, (f"{qual}() inside the simulation core; route "
                         f"timing through repro.profiling (monotonic()/"
                         f"Profiler.phase) so core outputs stay "
                         f"seed-pure")


class UnsortedWalkRule(Rule):
    """D103: filesystem enumeration must be wrapped in ``sorted()``.

    ``os.listdir`` and friends return entries in on-disk order, which
    differs across filesystems and inode histories; any sequence built
    from them must be explicitly ordered before it feeds returned or
    serialized data.
    """

    rule_id = "D103"
    family = "determinism"
    title = "unsorted directory enumeration"
    node_types = (ast.Call,)

    def check_node(self, node: ast.Call,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        qual = ctx.qualname(node.func)
        is_walk = qual in UNORDERED_WALK_FNS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("iterdir", "rglob"))
        if not is_walk:
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.Call) and \
                isinstance(parent.func, ast.Name) and \
                parent.func.id == "sorted":
            return
        label = qual or f"*.{node.func.attr}"
        yield node, (f"{label}() enumerates the filesystem in "
                     f"OS-dependent order; wrap the call in sorted()")


class SetIterationRule(Rule):
    """D104: don't iterate a freshly built set into an ordered context.

    ``for x in set(...)`` and ``list(set(...))`` leak hash-table order
    into whatever consumes the loop; when the elements are strings the
    order even changes across interpreter runs (hash randomization).
    ``sorted(set(...))`` is the sanctioned spelling.
    """

    rule_id = "D104"
    family = "determinism"
    title = "iteration over an unordered set"
    node_types = (ast.For, ast.comprehension, ast.Call)

    @staticmethod
    def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and \
            ctx.qualname(node.func) in ("set", "frozenset")

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, (ast.For, ast.comprehension)):
            if self._is_set_expr(node.iter, ctx):
                yield node.iter, ("iterating a set leaks hash-table "
                                  "order; use sorted(...) to fix the "
                                  "iteration order")
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("list", "tuple") and \
                len(node.args) == 1 and \
                self._is_set_expr(node.args[0], ctx):
            yield node, (f"{node.func.id}(set(...)) materializes "
                         f"hash-table order; use sorted(...) instead")


class ForeignPoolRule(Rule):
    """D105: process fan-out happens only in :mod:`repro.parallel`.

    That module owns the one deterministic recipe (ordered results,
    per-item ``spawn_seed``, graceful single-process degrade); ad-hoc
    pools elsewhere reintroduce scheduling-dependent results.
    """

    rule_id = "D105"
    family = "determinism"
    title = "process pool outside repro.parallel"
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    POOL_MODULES = ("multiprocessing", "concurrent.futures")
    FORK_FNS = frozenset({"os.fork", "os.forkpty", "os.spawnl",
                          "os.spawnlp", "os.spawnv", "os.spawnvp"})

    def applies_to(self, ctx: FileContext) -> bool:
        return not path_matches(ctx.path, ctx.config.pool_modules)

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "multiprocessing" or \
                        alias.name.startswith("concurrent.futures"):
                    yield node, (f"import {alias.name}: process pools "
                                 f"belong in repro.parallel "
                                 f"(parallel_map + spawn_seed)")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] == "multiprocessing" or \
                    module.startswith("concurrent.futures"):
                yield node, (f"from {module} import ...: process pools "
                             f"belong in repro.parallel "
                             f"(parallel_map + spawn_seed)")
        elif isinstance(node, ast.Call) and \
                ctx.qualname(node.func) in self.FORK_FNS:
            yield node, (f"{ctx.qualname(node.func)}() outside "
                         f"repro.parallel; use parallel_map")
