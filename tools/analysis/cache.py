"""Incremental-analysis cache: per-module records under content keys.

Same discipline as :mod:`repro.core.trace_cache`: every entry lives
under a SHA-256 key derived from *all* of its inputs, writes are
atomic (tmp file + rename), and anything unreadable, truncated, or
mismatched is a miss — a tampered entry can only cost a recompute,
never change a finding.

Two entry kinds:

* ``imports-*`` — a module's import list, keyed by its own source
  hash.  This is what lets a warm run recover the import graph without
  parsing unchanged files.
* ``module-*`` — the full :class:`~tools.analysis.project.ModuleRecord`
  (file findings, suppressions, tags, summary), keyed by the module's
  *tree hash*: its own source hash combined with the hashes of every
  module transitively reachable through its imports.  Editing one file
  therefore invalidates exactly that module and its transitive
  importers — the invalidation walks the import graph, matching how
  whole-program facts flow.

Both keys also fold in the engine fingerprint (the analyzer's own
sources, the active rule ids, and the effective config), so upgrading
a rule or flipping a config knob is automatically a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Set

CACHE_SCHEMA = "repro-lint-cache/1"


def engine_fingerprint(config_repr: str,
                       rule_ids: Sequence[str]) -> str:
    """Hash of the analyzer itself: sources + rules + config."""
    digest = hashlib.sha256()
    engine_dir = os.path.dirname(os.path.abspath(__file__))
    for directory, subdirs, files in sorted(os.walk(engine_dir)):
        subdirs.sort()
        subdirs[:] = [d for d in subdirs if d != "__pycache__"]
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            digest.update(os.path.relpath(path, engine_dir).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    digest.update(config_repr.encode())
    digest.update(",".join(sorted(rule_ids)).encode())
    return digest.hexdigest()


def source_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def tree_hashes(own: Dict[str, str],
                deps: Dict[str, Set[str]],
                fingerprint: str) -> Dict[str, str]:
    """Per-module tree hash: own hash + every reachable dep's hash.

    Reachability (rather than direct deps) keeps the key stable and
    cycle-safe: a module in an import cycle simply reaches every other
    member, so all of them share the same invalidation fate.
    """
    closure: Dict[str, Set[str]] = {}
    for module in own:
        reached: Set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(dep for dep in deps.get(current, ())
                            if dep in own)
        closure[module] = reached
    hashes = {}
    for module, reached in closure.items():
        digest = hashlib.sha256()
        digest.update(fingerprint.encode())
        # the module's own identity first: members of one import cycle
        # share a closure (same invalidation fate) but must never share
        # a key, or they would load each other's records.
        digest.update(f"module:{module}\n".encode())
        for name in sorted(reached):
            digest.update(f"{name}:{own[name]}\n".encode())
        hashes[module] = digest.hexdigest()
    return hashes


class SummaryCache:
    """Directory of JSON cache entries, validated on every load."""

    def __init__(self, directory: str):
        self.directory = directory

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.directory, f"{kind}-{key}.json")

    def load(self, kind: str, key: str) -> Optional[dict]:
        """The cached document, or ``None`` on any irregularity."""
        path = self._path(kind, key)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("schema") != CACHE_SCHEMA or \
                document.get("key") != key:
            return None
        return document.get("payload")

    def store(self, kind: str, key: str, payload: dict) -> None:
        """Atomically persist one entry (corrupt-on-crash safe)."""
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(kind, key)
        document = {"schema": CACHE_SCHEMA, "key": key,
                    "payload": payload}
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(temporary, path)

    def entry_exists(self, kind: str, key: str) -> bool:
        return os.path.exists(self._path(kind, key))
