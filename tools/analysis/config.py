"""Analyzer configuration, read from ``[tool.repro.analysis]``.

Every knob has a default tuned to this repository, so a bare
``python -m tools.analysis`` checks exactly what ``make lint`` gates.
Path-valued options are repo-root-relative prefixes; a file matches a
prefix when its relative path equals the prefix or lives under it.
Tests override individual fields to point rules at fixture trees.
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass, field, fields, replace
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


@dataclass(frozen=True)
class AnalysisConfig:
    """All analyzer settings; field names mirror the pyproject keys."""

    #: directory trees scanned for ``.py`` files (the lint surface).
    paths: List[str] = field(default_factory=lambda: ["src", "tools"])
    #: committed baseline of accepted findings.
    baseline: str = "tools/analysis/baseline.json"
    #: modules making up the CLI layer; E303 restricts their raises.
    cli_modules: List[str] = field(default_factory=lambda: [
        "src/repro/cli.py", "src/repro/__main__.py"])
    #: the sanctioned process fan-out modules (D105 flags pools
    #: elsewhere): the supervised pool itself and the shared-memory
    #: result transport it rides on.
    pool_modules: List[str] = field(default_factory=lambda: [
        "src/repro/parallel.py", "src/repro/ipc.py"])
    #: packages where even monotonic clocks are banned (D102); the
    #: simulation core must be a pure function of its seeds.
    monotonic_strict: List[str] = field(default_factory=lambda: [
        "src/repro/core", "src/repro/uarch", "src/repro/signal"])
    #: modules that own timing primitives, exempt from D102 entirely.
    clock_owner_modules: List[str] = field(default_factory=lambda: [
        "src/repro/profiling.py"])
    #: packages whose public API must be fully annotated (A404).
    annotations_packages: List[str] = field(default_factory=lambda: [
        "src/repro/core"])
    #: packages/modules whose public API must be fully documented (A401;
    #: populated from ``[tool.repro.docstrings]`` for one-gate parity).
    docstring_packages: List[str] = field(default_factory=lambda: [
        "src/repro/core", "src/repro/signal"])
    #: campaign-shaped modules where every supervised fan-out call must
    #: pass an explicit ``timeout=`` (E305) — an hours-long campaign
    #: silently inheriting "no deadline" is how hung workers sink runs.
    campaign_modules: List[str] = field(default_factory=lambda: [
        "src/repro/core/batch.py", "src/repro/core/training.py",
        "src/repro/leakage/tvla.py", "src/repro/leakage/savat.py"])
    #: process exit codes the repo documents (E304); kept in sync with
    #: the ``ReproError`` table in ``docs/robustness.md``.
    exit_codes: List[int] = field(default_factory=lambda: [
        0, 1, 2, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22])
    #: markdown surfaces checked by the doc rules (A402/A403).
    doc_files: List[str] = field(default_factory=lambda: [
        "README.md", "docs"])
    #: ``Class.method`` (or ``module.function`` for module-level
    #: functions) names on the per-cycle simulation hot path; P601
    #: flags any dict/list/set construction inside them — the columnar
    #: trace engine exists precisely because per-cycle object churn
    #: dominated simulate time.  The ``Legacy*`` reference paths are
    #: listed too: their allocations carry explicit allow tags so the
    #: preserved seed cost stays a visible, audited decision.  The
    #: ``reconstruction.*`` entries are the signal engine's per-trace
    #: kernels (``repro bench --mode signal`` gates their speedups).
    hot_loop_functions: List[str] = field(default_factory=lambda: [
        "ActivityTrace.begin_cycle", "ActivityTrace.commit_cycle",
        "ActivityTrace.end_cycle", "ActivityTrace.record",
        "HardwareLatches.write", "HardwareLatches.write_bubble",
        "LegacyActivityTrace.begin_cycle",
        "LegacyActivityTrace.commit_cycle",
        "LegacyActivityTrace.end_cycle", "LegacyActivityTrace.record",
        "LegacyHardwareLatches.write",
        "LegacyHardwareLatches.write_bubble",
        "OutOfOrderCore.step", "Pipeline.step",
        "reconstruction._banded_rhs",
        "reconstruction._overlap_add_synthesize",
        "reconstruction._spectral_synthesize"])
    #: per-cycle dataclass/object types whose construction P601 also
    #: flags inside hot-loop functions (matched by unqualified name).
    hot_loop_types: List[str] = field(default_factory=lambda: [
        "StageOccupancy"])
    #: the sanctioned direct-convolution sites (same naming scheme as
    #: ``hot-loop-functions``); P602 flags every other ``np.convolve``
    #: call in ``src`` — Eq. 6 synthesis must go through the planned
    #: engine (``reconstruct``), with the direct path reserved for the
    #: bit-exact oracle it is benchmarked against.
    convolve_oracle_functions: List[str] = field(default_factory=lambda: [
        "reconstruction._direct_reconstruct"])
    #: import roots mapping file paths to dotted module names for the
    #: ProjectIndex; tried in order (``src/repro/cli.py`` ->
    #: ``repro.cli``, ``tools/analysis/cli.py`` -> ``tools.analysis.cli``).
    source_roots: List[str] = field(default_factory=lambda: [
        "src", "."])
    #: seed-critical entry points for the D201 provenance pass: every
    #: unseeded-RNG site reachable from one of these (``Class.method``
    #: or bare function quals) is flagged — a trace must be a pure
    #: function of (program, config, seed).
    seed_entry_points: List[str] = field(default_factory=lambda: [
        "EMSim.simulate", "EMSim.simulate_many",
        "BatchSimulator.simulate_many", "supervised_campaign",
        "measurement_campaign", "Trainer.train", "Trainer.fit"])
    #: exception families the CLI layer's top-level handler converts to
    #: documented exit codes (E601 treats raises of these as covered).
    cli_handled_exceptions: List[str] = field(default_factory=lambda: [
        "ReproError"])
    #: exception names E601 never flags: argparse's own types, process
    #: control, and internal-bug signals where a traceback is wanted.
    cli_exempt_escapes: List[str] = field(default_factory=lambda: [
        "ArgumentError", "ArgumentTypeError", "AssertionError",
        "KeyboardInterrupt", "MemoryError", "NotImplementedError",
        "RecursionError", "StopIteration", "SystemExit"])
    #: bare function names that fan work out across processes; their
    #: first argument is the worker the X701 IPC pass audits.
    fanout_functions: List[str] = field(default_factory=lambda: [
        "parallel_map", "supervised_map"])
    #: project-defined class names allowed to cross the SupervisedPool
    #: worker boundary (X701); everything else must be codec arrays or
    #: plain JSON-able types.  Each entry is justified in
    #: ``docs/static-analysis.md``.
    ipc_allowlist: List[str] = field(default_factory=lambda: [
        "CampaignProbe", "SavatMeasurement", "Measurement",
        "SharedArrayRef"])
    #: name-based (dynamic) call edges are dropped when a bare name
    #: matches more than this many project functions — the graph stays
    #: an over-approximation without wiring the whole repo together.
    dynamic_call_fanout: int = 6
    #: where the incremental engine keeps per-module records (relative
    #: to the repo root; gitignored).
    cache_dir: str = ".repro-lint-cache"


def _pyproject_section(root: str, *keys: str) -> dict:
    """Return a nested table from ``pyproject.toml`` ({} when absent)."""
    path = os.path.join(root, "pyproject.toml")
    if not os.path.exists(path):
        return {}
    with open(path, "rb") as handle:
        document = tomllib.load(handle)
    for key in keys:
        document = document.get(key, {})
    return document if isinstance(document, dict) else {}


def load_config(root: str = REPO_ROOT) -> AnalysisConfig:
    """Build the effective config: defaults + pyproject overrides.

    ``[tool.repro.analysis]`` keys use dashes (``cli-modules``); they
    map onto the dataclass fields with underscores.  The docstring
    package list is inherited from ``[tool.repro.docstrings]`` so the
    migrated A401 pass gates exactly what ``check_docstrings`` gated.
    """
    config = AnalysisConfig()
    docstrings = _pyproject_section(root, "tool", "repro", "docstrings")
    if docstrings:
        packages = list(docstrings.get("packages", []))
        packages += list(docstrings.get("modules", []))
        if packages:
            config = replace(config, docstring_packages=packages)
    overrides = _pyproject_section(root, "tool", "repro", "analysis")
    known = {f.name for f in fields(AnalysisConfig)}
    updates = {}
    for key, value in overrides.items():
        name = key.replace("-", "_")
        if name not in known:
            raise ValueError(f"[tool.repro.analysis]: unknown key {key!r}")
        updates[name] = value
    return replace(config, **updates) if updates else config


def path_matches(relative: str, prefixes: List[str]) -> bool:
    """True when ``relative`` equals a prefix or lives under one.

    The empty-string prefix matches everything, which fixture tests use
    to aim package-scoped rules at temporary trees.
    """
    normalized = relative.replace(os.sep, "/")
    for prefix in prefixes:
        prefix = prefix.replace(os.sep, "/").rstrip("/")
        if not prefix or normalized == prefix or \
                normalized.startswith(prefix + "/"):
            return True
    return False
