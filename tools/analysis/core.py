"""Analyzer core: finding model, per-file AST context, rule base classes,
and the engine that runs every pass in a single tree walk.

The design splits a *rule* (one invariant, one ``RULE-ID``) from the
*engine* (file discovery, parsing, dispatch, suppression, ordering):

* :class:`Rule` subclasses declare the AST node types they care about
  and yield ``(node, message)`` pairs from :meth:`Rule.check_node`;
  the engine visits each file's tree exactly once and dispatches every
  node to all interested rules, so adding a pass costs one class, not
  one traversal.
* :class:`ProjectRule` subclasses skip the AST and check repo-level
  artifacts (markdown links, the CLI reference) via
  :meth:`ProjectRule.check_project`.
* :class:`FileContext` gives rules the shared per-file facts they need:
  resolved import aliases (``np`` -> ``numpy``), parent links,
  ``np.errstate`` spans, and inline suppression comments.

Output is deterministic by construction: files are discovered in sorted
order, findings are sorted by ``(path, line, col, rule, message)``, and
nothing records wall-clock time.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .config import AnalysisConfig, path_matches

SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z]\d+(?:\s*,\s*[A-Za-z]\d+)*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a ``file:line:col`` span."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Human-readable one-liner (the text report row)."""
        return f"{self.path}:{self.line}:{self.col}: " \
               f"[{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order via sort_keys)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the baseline loader)."""
        return cls(path=data["path"], line=int(data["line"]),
                   col=int(data["col"]), rule=data["rule"],
                   message=data["message"])


class FileContext:
    """Shared per-file facts rules draw on while visiting one tree."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: AnalysisConfig):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.imports: Dict[str, str] = {}
        self.errstate_spans: List[Tuple[int, int]] = []
        self.suppressions: Dict[int, set] = {}
        self._index(tree)
        self._scan_suppressions()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or
                                 alias.name.split(".")[0]] = \
                        alias.name if alias.asname else \
                        alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    not node.level:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, ast.With):
                for item in node.items:
                    call = item.context_expr
                    if isinstance(call, ast.Call) and \
                            self.qualname(call.func) == "numpy.errstate":
                        self.errstate_spans.append(
                            (node.lineno, node.end_lineno or node.lineno))

    def _scan_suppressions(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            self.suppressions.setdefault(number, set()).update(ids)
            if line[:match.start()].strip():
                continue  # inline comment: applies to this line only
            # standalone comment: also cover the next code line, so a
            # multi-line explanation can sit between tag and statement
            cursor = number
            while cursor < len(self.lines):
                text = self.lines[cursor].strip()
                cursor += 1
                if text and not text.startswith("#"):
                    self.suppressions.setdefault(cursor,
                                                 set()).update(ids)
                    break

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression with import aliases resolved.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        ``perf_counter`` resolves to ``time.perf_counter`` under
        ``from time import perf_counter``.  Returns ``None`` for
        expressions that are not plain dotted names (calls, subscripts).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        return ".".join([base] + list(reversed(parts)))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Immediate parent node (``None`` for the module itself)."""
        return self.parents.get(node)

    def in_errstate(self, line: int) -> bool:
        """True when ``line`` sits inside a ``with np.errstate`` block."""
        return any(start <= line <= end
                   for start, end in self.errstate_spans)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when an allow comment covers ``rule`` at ``line``.

        Inline tags cover their own line; standalone comment tags cover
        the next code line (with any further comment lines between).
        """
        return rule in self.suppressions.get(line, set())


@dataclass
class Project:
    """Repo-level view handed to :class:`ProjectRule` passes."""

    root: str
    config: AnalysisConfig


class Rule:
    """Base class for one AST-level invariant check.

    Subclasses set :attr:`rule_id` / :attr:`family` / :attr:`title`,
    declare :attr:`node_types`, and implement :meth:`check_node`.
    :meth:`applies_to` narrows a rule to a subset of files (the engine
    skips dispatch entirely for files a rule declines).
    """

    rule_id: str = ""
    family: str = ""
    title: str = ""
    #: AST node classes this rule wants to see; () = whole-file rule
    #: that only implements :meth:`check_file`.
    node_types: Tuple[type, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: yes)."""
        return True

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, message)`` for each violation at ``node``."""
        return iter(())

    def check_file(self, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        """Yield ``(line, message)`` pairs from whole-file analysis."""
        return iter(())


class ProjectRule(Rule):
    """Base class for repo-level (non-AST) passes."""

    def check_project(self,
                      project: Project) -> Iterator[Tuple[str, int, str]]:
        """Yield ``(relative path, line, message)`` per violation."""
        return iter(())


@dataclass
class ScanResult:
    """Everything one analyzer run produced, pre-sorted."""

    findings: List[Finding]
    suppressed: List[Finding]
    checked_files: int


class Analyzer:
    """Runs a rule set over the configured lint surface."""

    def __init__(self, rules: Sequence[Rule], config: AnalysisConfig,
                 root: str):
        self.rules = list(rules)
        self.config = config
        self.root = root

    # ------------------------------------------------------------------
    # file discovery
    # ------------------------------------------------------------------
    def python_files(self, paths: Optional[Sequence[str]] = None
                     ) -> List[str]:
        """Sorted repo-relative ``.py`` paths under the lint surface."""
        found = []
        for entry in sorted(paths if paths is not None
                            else self.config.paths):
            absolute = os.path.join(self.root, entry)
            if os.path.isfile(absolute):
                if absolute.endswith(".py"):
                    found.append(os.path.relpath(absolute, self.root))
                continue
            for directory, subdirs, files in sorted(os.walk(absolute)):
                subdirs.sort()
                subdirs[:] = [d for d in subdirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.relpath(
                            os.path.join(directory, name), self.root))
        return sorted(dict.fromkeys(
            path.replace(os.sep, "/") for path in found))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, paths: Optional[Sequence[str]] = None) -> ScanResult:
        """Analyze the surface; returns sorted kept/suppressed findings."""
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        files = self.python_files(paths)
        for relative in files:
            with open(os.path.join(self.root, relative)) as handle:
                source = handle.read()
            tree = ast.parse(source, filename=relative)
            ctx = FileContext(relative, source, tree, self.config)
            for finding in self._check_tree(ctx):
                (suppressed if ctx.is_suppressed(finding.line,
                                                 finding.rule)
                 else kept).append(finding)
        project = Project(root=self.root, config=self.config)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                for path, line, message in rule.check_project(project):
                    kept.append(Finding(path=path.replace(os.sep, "/"),
                                        line=line, col=0,
                                        rule=rule.rule_id,
                                        message=message))
        return ScanResult(findings=sorted(kept),
                          suppressed=sorted(suppressed),
                          checked_files=len(files))

    def _check_tree(self, ctx: FileContext) -> Iterator[Finding]:
        active = [rule for rule in self.rules
                  if not isinstance(rule, ProjectRule)
                  and rule.applies_to(ctx)]
        by_type: Dict[type, List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                by_type.setdefault(node_type, []).append(rule)
        for node in ast.walk(ctx.tree):
            for rule in by_type.get(type(node), ()):
                for where, message in rule.check_node(node, ctx):
                    yield Finding(path=ctx.path,
                                  line=getattr(where, "lineno", 1),
                                  col=getattr(where, "col_offset", 0),
                                  rule=rule.rule_id, message=message)
        for rule in active:
            for line, message in rule.check_file(ctx):
                yield Finding(path=ctx.path, line=line, col=0,
                              rule=rule.rule_id, message=message)


def check_source(source: str, rules: Sequence[Rule],
                 config: Optional[AnalysisConfig] = None,
                 path: str = "<fixture>.py") -> ScanResult:
    """Analyze one in-memory snippet (the fixture-test entry point)."""
    config = config or AnalysisConfig()
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree, config)
    analyzer = Analyzer(rules, config, root=".")
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in analyzer._check_tree(ctx):
        (suppressed if ctx.is_suppressed(finding.line, finding.rule)
         else kept).append(finding)
    return ScanResult(findings=sorted(kept), suppressed=sorted(suppressed),
                      checked_files=1)
