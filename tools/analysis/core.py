"""Analyzer core: finding model, per-file AST context, rule base classes,
and the engine that runs every pass in a single tree walk.

The design splits a *rule* (one invariant, one ``RULE-ID``) from the
*engine* (file discovery, parsing, dispatch, suppression, ordering):

* :class:`Rule` subclasses declare the AST node types they care about
  and yield ``(node, message)`` pairs from :meth:`Rule.check_node`;
  the engine visits each file's tree exactly once and dispatches every
  node to all interested rules, so adding a pass costs one class, not
  one traversal.
* :class:`ProjectRule` subclasses skip the AST and check repo-level
  artifacts (markdown links, the CLI reference) via
  :meth:`ProjectRule.check_project`.
* :class:`ProgramRule` subclasses see the *whole program*: the engine
  builds a :class:`~tools.analysis.project.ProjectIndex` (symbol
  tables, import graph, call-graph summaries) over the full lint
  surface and hands it to :meth:`ProgramRule.check_program` — this is
  how the interprocedural families (seed provenance ``D2xx``,
  exit-code contracts ``E6xx``, IPC hygiene ``X7xx``) run.
* :class:`FileContext` gives rules the shared per-file facts they need:
  resolved import aliases (``np`` -> ``numpy``), parent links,
  ``np.errstate`` spans, and inline suppression comments.

Per-file work is cached incrementally when the engine is given a cache
directory: each module's record (findings, suppressions, summary) is
stored under a content hash of the module *and everything it
transitively imports* (see :mod:`tools.analysis.cache`), so a warm run
re-analyzes only what a change can actually affect and produces
byte-identical findings to a cold run.

Output is deterministic by construction: files are discovered in sorted
order, findings are sorted by ``(path, line, col, rule, message)``, and
nothing records wall-clock time.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import (Any, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from .config import AnalysisConfig, path_matches

SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z]\d+(?:\s*,\s*[A-Za-z]\d+)*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a ``file:line:col`` span."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Human-readable one-liner (the text report row)."""
        return f"{self.path}:{self.line}:{self.col}: " \
               f"[{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order via sort_keys)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the baseline loader)."""
        return cls(path=data["path"], line=int(data["line"]),
                   col=int(data["col"]), rule=data["rule"],
                   message=data["message"])


class FileContext:
    """Shared per-file facts rules draw on while visiting one tree."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: AnalysisConfig):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.imports: Dict[str, str] = {}
        self.errstate_spans: List[Tuple[int, int]] = []
        self.suppressions: Dict[int, set] = {}
        #: every allow tag: ``(tag line, rule ids, covered lines)`` —
        #: the stale-suppression pass (``A405``) audits these.
        self.suppression_tags: List[Tuple[int, Tuple[str, ...],
                                          Tuple[int, ...]]] = []
        self._index(tree)
        self._scan_suppressions()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or
                                 alias.name.split(".")[0]] = \
                        alias.name if alias.asname else \
                        alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    not node.level:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, ast.With):
                for item in node.items:
                    call = item.context_expr
                    if isinstance(call, ast.Call) and \
                            self.qualname(call.func) == "numpy.errstate":
                        self.errstate_spans.append(
                            (node.lineno, node.end_lineno or node.lineno))

    def _scan_suppressions(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = tuple(sorted({part.strip()
                                for part in match.group(1).split(",")}))
            covered = [number]
            if not line[:match.start()].strip():
                # standalone comment: also cover the next code line, so
                # a multi-line explanation can sit between tag and
                # statement (inline tags apply to their own line only)
                cursor = number
                while cursor < len(self.lines):
                    text = self.lines[cursor].strip()
                    cursor += 1
                    if text and not text.startswith("#"):
                        covered.append(cursor)
                        break
            self.suppression_tags.append((number, ids, tuple(covered)))
            for line_number in covered:
                self.suppressions.setdefault(line_number,
                                             set()).update(ids)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression with import aliases resolved.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        ``perf_counter`` resolves to ``time.perf_counter`` under
        ``from time import perf_counter``.  Returns ``None`` for
        expressions that are not plain dotted names (calls, subscripts).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        return ".".join([base] + list(reversed(parts)))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Immediate parent node (``None`` for the module itself)."""
        return self.parents.get(node)

    def in_errstate(self, line: int) -> bool:
        """True when ``line`` sits inside a ``with np.errstate`` block."""
        return any(start <= line <= end
                   for start, end in self.errstate_spans)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when an allow comment covers ``rule`` at ``line``.

        Inline tags cover their own line; standalone comment tags cover
        the next code line (with any further comment lines between).
        """
        return rule in self.suppressions.get(line, set())


@dataclass
class Project:
    """Repo-level view handed to :class:`ProjectRule` passes.

    ``index`` is the :class:`~tools.analysis.project.ProjectIndex`
    when the engine built one (whole-program rules active or the cache
    enabled), letting repo-level passes read cached per-module facts
    instead of re-walking source trees; it is ``None`` on bare
    file-scoped runs, and rules must fall back accordingly.
    """

    root: str
    config: AnalysisConfig
    index: Optional[Any] = None


class Rule:
    """Base class for one AST-level invariant check.

    Subclasses set :attr:`rule_id` / :attr:`family` / :attr:`title`,
    declare :attr:`node_types`, and implement :meth:`check_node`.
    :meth:`applies_to` narrows a rule to a subset of files (the engine
    skips dispatch entirely for files a rule declines).
    """

    rule_id: str = ""
    family: str = ""
    title: str = ""
    #: AST node classes this rule wants to see; () = whole-file rule
    #: that only implements :meth:`check_file`.
    node_types: Tuple[type, ...] = ()
    #: set by rules that consume the ProjectIndex when one is available
    #: (forces the engine to build it even without ProgramRules).
    needs_index: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: yes)."""
        return True

    def check_node(self, node: ast.AST,
                   ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, message)`` for each violation at ``node``."""
        return iter(())

    def check_file(self, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        """Yield ``(line, message)`` pairs from whole-file analysis."""
        return iter(())


class ProjectRule(Rule):
    """Base class for repo-level (non-AST) passes."""

    def check_project(self,
                      project: Project) -> Iterator[Tuple[str, int, str]]:
        """Yield ``(relative path, line, message)`` per violation."""
        return iter(())


class ProgramRule(Rule):
    """Base class for whole-program (interprocedural) passes.

    The engine builds one :class:`~tools.analysis.project.ProjectIndex`
    over the *full* configured surface — even when the run itself is
    scoped to a subset of files — and calls :meth:`check_program` once;
    findings landing outside the scoped file set are dropped, so a
    scoped run never reports on files it was not asked about while the
    analysis itself still sees every caller and callee.
    """

    needs_index = True

    def check_program(self, index: Any) -> Iterator[Finding]:
        """Yield findings computed from the whole-program index."""
        return iter(())


class SyntaxErrorRule(Rule):
    """E000: a file on the lint surface must parse.

    The engine emits this one itself — an unparsable file yields a
    single deterministic finding at the syntax error's position instead
    of aborting the whole run, so one broken file cannot hide every
    other finding in the report.  The class exists so the id shows up
    in ``--list-rules`` and participates in ``--select`` filtering.
    """

    rule_id = "E000"
    family = "engine"
    title = "file on the lint surface fails to parse"


class UnusedSuppressionRule(Rule):
    """A405: every allow tag must actually suppress something.

    A ``# repro: allow[...]`` comment whose rule ids silence no finding
    on the lines it covers is stale — the violation was fixed, the rule
    changed, or the tag was misplaced — and stale tags are how real
    suppressions rot into unreviewed noise.  The engine computes this
    after all other passes (including whole-program ones) have
    attributed their suppressions, counting only rule ids that were
    active in the run; tags naming unselected rules are left alone.
    """

    rule_id = "A405"
    family = "hygiene"
    title = "stale allow[] tag that suppresses nothing"


@dataclass
class ScanResult:
    """Everything one analyzer run produced, pre-sorted."""

    findings: List[Finding]
    suppressed: List[Finding]
    checked_files: int


def _syntax_error_finding(path: str, error: SyntaxError) -> Finding:
    """The deterministic E000 finding for an unparsable file."""
    return Finding(path=path.replace(os.sep, "/"),
                   line=error.lineno or 1,
                   col=max(0, (error.offset or 1) - 1),
                   rule=SyntaxErrorRule.rule_id,
                   message=f"file does not parse: "
                           f"{error.msg or 'invalid syntax'}; every "
                           f"file on the lint surface must be valid "
                           f"Python")


class Analyzer:
    """Runs a rule set over the configured lint surface.

    With ``cache_dir`` set, per-module records are reused across runs
    under content-hash keys (see :mod:`tools.analysis.cache`); without
    it every run is cold.  Cached and cold runs produce byte-identical
    results — ``tests/test_analysis_project.py`` pins this.
    """

    def __init__(self, rules: Sequence[Rule], config: AnalysisConfig,
                 root: str, cache_dir: Optional[str] = None):
        self.rules = list(rules)
        self.config = config
        self.root = root
        self.cache_dir = cache_dir
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # file discovery
    # ------------------------------------------------------------------
    def python_files(self, paths: Optional[Sequence[str]] = None
                     ) -> List[str]:
        """Sorted repo-relative ``.py`` paths under the lint surface."""
        found = []
        for entry in sorted(paths if paths is not None
                            else self.config.paths):
            absolute = os.path.join(self.root, entry)
            if os.path.isfile(absolute):
                if absolute.endswith(".py"):
                    found.append(os.path.relpath(absolute, self.root))
                continue
            for directory, subdirs, files in sorted(os.walk(absolute)):
                subdirs.sort()
                subdirs[:] = [d for d in subdirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.relpath(
                            os.path.join(directory, name), self.root))
        return sorted(dict.fromkeys(
            path.replace(os.sep, "/") for path in found))

    # ------------------------------------------------------------------
    # engine identity (cache keying)
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Engine + config + ruleset hash folded into cache keys."""
        if self._fingerprint is None:
            from .cache import engine_fingerprint
            self._fingerprint = engine_fingerprint(
                repr(self.config),
                [rule.rule_id for rule in self.rules])
        return self._fingerprint

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, paths: Optional[Sequence[str]] = None) -> ScanResult:
        """Analyze the surface; returns sorted kept/suppressed findings."""
        from .project import ProjectIndex

        program_rules = sorted(
            (rule for rule in self.rules
             if isinstance(rule, ProgramRule)),
            key=lambda rule: rule.rule_id)
        syntax_active = any(isinstance(rule, SyntaxErrorRule)
                            for rule in self.rules)
        unused_active = any(isinstance(rule, UnusedSuppressionRule)
                            for rule in self.rules)
        needs_index = (bool(program_rules) or
                       self.cache_dir is not None or
                       any(rule.needs_index for rule in self.rules))

        reported = self.python_files(paths)
        if needs_index:
            all_files = sorted(set(reported) |
                               set(self.python_files(None)))
        else:
            all_files = reported

        records = self._collect_records(all_files, needs_index)
        index = ProjectIndex(records, self.config, self.root) \
            if needs_index else None

        kept: List[Finding] = []
        suppressed: List[Finding] = []
        reported_set = set(reported)
        for relative in reported:
            record = records[relative]
            kept.extend(record.findings)
            suppressed.extend(record.suppressed)
            if record.error is not None and syntax_active:
                kept.append(record.error)

        # whole-program passes: computed over the full index, reported
        # (and suppression-routed) only on the files in scope.
        program_suppressed: Dict[str, Set[Tuple[int, str]]] = {}
        suppression_maps: Dict[str, Dict[int, Set[str]]] = {}
        for rule in program_rules:
            for finding in rule.check_program(index):
                if finding.path not in reported_set:
                    continue
                mapping = suppression_maps.get(finding.path)
                if mapping is None:
                    mapping = records[finding.path].suppression_map()
                    suppression_maps[finding.path] = mapping
                if finding.rule in mapping.get(finding.line, ()):
                    suppressed.append(finding)
                    program_suppressed.setdefault(
                        finding.path, set()).add(
                        (finding.line, finding.rule))
                else:
                    kept.append(finding)

        if unused_active:
            active_ids = {rule.rule_id for rule in self.rules}
            for relative in reported:
                record = records[relative]
                used = {(finding.line, finding.rule)
                        for finding in record.suppressed}
                used |= program_suppressed.get(relative, set())
                mapping = suppression_maps.get(relative)
                if mapping is None:
                    mapping = record.suppression_map()
                for finding in self._stale_tags(relative, record.tags,
                                                used, active_ids):
                    if UnusedSuppressionRule.rule_id in \
                            mapping.get(finding.line, ()):
                        suppressed.append(finding)
                    else:
                        kept.append(finding)

        project = Project(root=self.root, config=self.config,
                          index=index)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                for path, line, message in rule.check_project(project):
                    kept.append(Finding(path=path.replace(os.sep, "/"),
                                        line=line, col=0,
                                        rule=rule.rule_id,
                                        message=message))
        return ScanResult(findings=sorted(kept),
                          suppressed=sorted(suppressed),
                          checked_files=len(reported))

    @staticmethod
    def _stale_tags(path: str, tags, used: Set[Tuple[int, str]],
                    active_ids: Set[str]) -> Iterator[Finding]:
        for tag_line, ids, covered in tags:
            stale = [rule_id for rule_id in ids
                     if rule_id != UnusedSuppressionRule.rule_id
                     and rule_id in active_ids
                     and not any((line, rule_id) in used
                                 for line in covered)]
            if stale:
                yield Finding(
                    path=path, line=tag_line, col=0,
                    rule=UnusedSuppressionRule.rule_id,
                    message=f"allow[{', '.join(stale)}] suppresses "
                            f"nothing on the line(s) it covers; remove "
                            f"the stale tag or move it to the "
                            f"offending line")

    # ------------------------------------------------------------------
    # per-module records (cached or fresh)
    # ------------------------------------------------------------------
    def _collect_records(self, files: Sequence[str],
                         needs_index: bool) -> Dict[str, Any]:
        from .cache import SummaryCache
        from .project import module_name_for

        sources: Dict[str, bytes] = {}
        for relative in files:
            with open(os.path.join(self.root, relative), "rb") as handle:
                sources[relative] = handle.read()
        modinfo = {relative: module_name_for(
            relative, self.config.source_roots) for relative in files}

        cache = SummaryCache(self.cache_dir) if self.cache_dir else None
        trees: Dict[str, ast.Module] = {}
        module_keys: Dict[str, str] = {}
        if cache is not None:
            module_keys = self._module_keys(files, sources, modinfo,
                                            cache, trees)

        records: Dict[str, Any] = {}
        for relative in files:
            record = None
            key = module_keys.get(relative)
            if cache is not None and key is not None:
                record = self._load_record(cache, key)
            if record is None:
                record = self._build_record(relative, sources[relative],
                                            modinfo[relative],
                                            trees.get(relative),
                                            needs_index)
                if cache is not None and key is not None:
                    cache.store("module", key, record.to_dict())
            records[relative] = record
        return records

    def _module_keys(self, files, sources, modinfo, cache,
                     trees) -> Dict[str, str]:
        """Tree-hash cache keys, recovering imports without re-parsing."""
        import hashlib

        from .cache import source_hash, tree_hashes
        from .summaries import module_imports

        own_by_module: Dict[str, str] = {}
        imports_by_module: Dict[str, Set[str]] = {}
        file_of_module: Dict[str, str] = {}
        fingerprint = self.fingerprint()
        for relative in files:
            info = modinfo[relative]
            if info is None:
                continue
            module, is_package = info
            own = source_hash(sources[relative])
            own_by_module[module] = own
            file_of_module[module] = relative
            import_key = hashlib.sha256(
                f"{fingerprint}:{relative}:{own}".encode()).hexdigest()
            payload = cache.load("imports", import_key)
            if payload is None:
                try:
                    tree = ast.parse(sources[relative].decode("utf-8"),
                                     filename=relative)
                except SyntaxError:
                    imports: List[str] = []
                else:
                    trees[relative] = tree
                    imports = module_imports(tree, module, is_package)
                cache.store("imports", import_key,
                            {"imports": imports})
            else:
                imports = list(payload.get("imports", []))
            imports_by_module[module] = set(imports)
        hashes = tree_hashes(own_by_module, imports_by_module,
                             fingerprint)
        return {file_of_module[module]: key
                for module, key in hashes.items()}

    def _load_record(self, cache, key: str):
        from .project import ModuleRecord
        payload = cache.load("module", key)
        if payload is None:
            return None
        try:
            return ModuleRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def _build_record(self, relative: str, data: bytes, info,
                      tree: Optional[ast.Module], needs_index: bool):
        from .project import ModuleRecord
        from .summaries import build_summary

        module, is_package = info if info is not None else (None, False)
        source = data.decode("utf-8")
        if tree is None:
            try:
                tree = ast.parse(source, filename=relative)
            except SyntaxError as error:
                return ModuleRecord(
                    path=relative.replace(os.sep, "/"), module=module,
                    is_package=is_package,
                    error=_syntax_error_finding(relative, error))
        ctx = FileContext(relative, source, tree, self.config)
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in self._check_tree(ctx):
            (suppressed if ctx.is_suppressed(finding.line, finding.rule)
             else kept).append(finding)
        summary = None
        if needs_index and module is not None:
            summary = build_summary(module, is_package, ctx)
        return ModuleRecord(path=ctx.path, module=module,
                            is_package=is_package, findings=sorted(kept),
                            suppressed=sorted(suppressed),
                            tags=list(ctx.suppression_tags),
                            summary=summary)

    # ------------------------------------------------------------------
    # incremental scoping (``--changed-only``)
    # ------------------------------------------------------------------
    def changed_scope(self, changed: Sequence[str]) -> List[str]:
        """Changed surface files plus transitive import-graph dependents.

        ``changed`` is any iterable of repo-relative paths (straight
        from ``git diff --name-only``); anything off the lint surface is
        ignored.  A module's dependents are every module that reaches
        it through imports — the same closure the cache invalidates —
        so a scoped run re-checks exactly what the change can affect.
        """
        from .summaries import module_imports
        from .project import module_name_for

        surface = self.python_files(None)
        changed_set = {path.replace(os.sep, "/") for path in changed}
        seeds = sorted(changed_set & set(surface))
        if not seeds:
            return []
        deps: Dict[str, Set[str]] = {}
        module_of: Dict[str, str] = {}
        for relative in surface:
            info = module_name_for(relative, self.config.source_roots)
            if info is None:
                continue
            module, is_package = info
            module_of[relative] = module
            try:
                with open(os.path.join(self.root, relative)) as handle:
                    tree = ast.parse(handle.read(), filename=relative)
            except SyntaxError:
                deps[module] = set()
                continue
            deps[module] = set(module_imports(tree, module, is_package))
        reverse: Dict[str, Set[str]] = {}
        for module, imported in deps.items():
            for dep in imported:
                if dep in deps:
                    reverse.setdefault(dep, set()).add(module)
        closure: Set[str] = set()
        frontier = [module_of[path] for path in seeds
                    if path in module_of]
        while frontier:
            module = frontier.pop()
            if module in closure:
                continue
            closure.add(module)
            frontier.extend(sorted(reverse.get(module, ())))
        scope = set(seeds)
        scope.update(path for path, module in module_of.items()
                     if module in closure)
        return sorted(scope)

    def _check_tree(self, ctx: FileContext) -> Iterator[Finding]:
        active = [rule for rule in self.rules
                  if not isinstance(rule, ProjectRule)
                  and not isinstance(rule, ProgramRule)
                  and rule.applies_to(ctx)]
        by_type: Dict[type, List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                by_type.setdefault(node_type, []).append(rule)
        for node in ast.walk(ctx.tree):
            for rule in by_type.get(type(node), ()):
                for where, message in rule.check_node(node, ctx):
                    yield Finding(path=ctx.path,
                                  line=getattr(where, "lineno", 1),
                                  col=getattr(where, "col_offset", 0),
                                  rule=rule.rule_id, message=message)
        for rule in active:
            for line, message in rule.check_file(ctx):
                yield Finding(path=ctx.path, line=line, col=0,
                              rule=rule.rule_id, message=message)


def check_source(source: str, rules: Sequence[Rule],
                 config: Optional[AnalysisConfig] = None,
                 path: str = "<fixture>.py") -> ScanResult:
    """Analyze one in-memory snippet (the fixture-test entry point).

    Runs the per-file passes plus the engine-computed ones (``E000``
    when a :class:`SyntaxErrorRule` is supplied, ``A405`` when an
    :class:`UnusedSuppressionRule` is); whole-program rules need real
    trees — use an :class:`Analyzer` over a fixture directory instead.
    """
    config = config or AnalysisConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        if any(isinstance(rule, SyntaxErrorRule) for rule in rules):
            return ScanResult(
                findings=[_syntax_error_finding(path, error)],
                suppressed=[], checked_files=1)
        raise
    ctx = FileContext(path, source, tree, config)
    analyzer = Analyzer(rules, config, root=".")
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in analyzer._check_tree(ctx):
        (suppressed if ctx.is_suppressed(finding.line, finding.rule)
         else kept).append(finding)
    if any(isinstance(rule, UnusedSuppressionRule) for rule in rules):
        active_ids = {rule.rule_id for rule in rules}
        used = {(finding.line, finding.rule) for finding in suppressed}
        for finding in Analyzer._stale_tags(ctx.path,
                                            ctx.suppression_tags, used,
                                            active_ids):
            (suppressed if ctx.is_suppressed(finding.line, finding.rule)
             else kept).append(finding)
    return ScanResult(findings=sorted(kept), suppressed=sorted(suppressed),
                      checked_files=1)
