"""repro-lint: an AST-based invariant analyzer for the EMSim repo.

The reproduction's headline guarantee is bit-identical runs, and PRs
1-3 built that guarantee by hand (spawn-seeded fork pools, a
content-addressed trace cache, typed ``ReproError`` exit codes).  This
package checks the *code* for regressions against those invariants at
``make check`` time instead of waiting for a flaky benchmark:

* **determinism** (``D1xx``) — unseeded RNG state, wall-clock reads in
  the simulation core, unsorted directory walks, set iteration feeding
  ordered outputs, process pools outside :mod:`repro.parallel`;
* **numerical safety** (``N2xx``) — float ``==``/``!=``, division by
  unguarded aggregates, silent dtype downcasts;
* **error contracts** (``E3xx``) — bare/swallowing ``except``, CLI
  raises outside the ``ReproError`` hierarchy, undocumented exit codes;
* **API hygiene** (``A4xx``) — docstring coverage, annotation coverage,
  markdown link resolution, CLI reference completeness (the last three
  migrated from ``check_docstrings.py`` / ``check_docs.py``).

Run ``python -m tools.analysis`` (or ``make lint``); findings are
suppressed inline with ``# repro: allow[RULE-ID] reason`` or absorbed by
the committed baseline ``tools/analysis/baseline.json``.  The full rule
reference lives in ``docs/static-analysis.md``.
"""

from .core import (Analyzer, FileContext, Finding, Project, ProjectRule,
                   Rule, check_source)
from .config import AnalysisConfig, load_config

__all__ = [
    "AnalysisConfig",
    "Analyzer",
    "FileContext",
    "Finding",
    "Project",
    "ProjectRule",
    "Rule",
    "check_source",
    "load_config",
]
