"""Report rendering: the text summary and the machine-readable JSON.

Both formats are deterministic — findings arrive pre-sorted from the
engine and the JSON is dumped with sorted keys and no timestamps — so
two consecutive runs over the same tree produce byte-identical output
(a property ``test_analysis.py`` pins).
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .core import Finding, Rule, ScanResult

REPORT_SCHEMA = "repro-lint/1"


def render_text(result: ScanResult, new: List[Finding],
                stale: List[Finding]) -> str:
    """Human-readable report: one row per finding, then the tally."""
    lines = [finding.format() for finding in new]
    for entry in stale:
        lines.append(f"stale baseline entry (fixed? rerun "
                     f"--write-baseline): {entry.format()}")
    lines.append(f"repro-lint: {result.checked_files} file(s), "
                 f"{len(new)} finding(s), "
                 f"{len(result.suppressed)} suppressed, "
                 f"{len(stale)} stale baseline entr"
                 f"{'y' if len(stale) == 1 else 'ies'}")
    return "\n".join(lines)


def render_json(result: ScanResult, new: List[Finding],
                stale: List[Finding]) -> str:
    """Machine-readable report (schema ``repro-lint/1``)."""
    document = {
        "schema": REPORT_SCHEMA,
        "checked_files": result.checked_files,
        "findings": [finding.to_dict() for finding in new],
        "suppressed": [finding.to_dict()
                       for finding in result.suppressed],
        "stale_baseline": [entry.to_dict() for entry in stale],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_rule_list(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` table, grouped by family order of id."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  [{rule.family}] {rule.title}")
    return "\n".join(lines)
