"""Report rendering: the text summary and the machine-readable JSON.

Both formats are deterministic — findings arrive pre-sorted from the
engine and the JSON is dumped with sorted keys and no timestamps — so
two consecutive runs over the same tree produce byte-identical output
(a property ``test_analysis.py`` pins).
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .core import Finding, Rule, ScanResult

REPORT_SCHEMA = "repro-lint/1"


def render_text(result: ScanResult, new: List[Finding],
                stale: List[Finding]) -> str:
    """Human-readable report: one row per finding, then the tally."""
    lines = [finding.format() for finding in new]
    for entry in stale:
        lines.append(f"stale baseline entry (fixed? rerun "
                     f"--write-baseline): {entry.format()}")
    lines.append(f"repro-lint: {result.checked_files} file(s), "
                 f"{len(new)} finding(s), "
                 f"{len(result.suppressed)} suppressed, "
                 f"{len(stale)} stale baseline entr"
                 f"{'y' if len(stale) == 1 else 'ies'}")
    return "\n".join(lines)


def render_json(result: ScanResult, new: List[Finding],
                stale: List[Finding]) -> str:
    """Machine-readable report (schema ``repro-lint/1``)."""
    document = {
        "schema": REPORT_SCHEMA,
        "checked_files": result.checked_files,
        "findings": [finding.to_dict() for finding in new],
        "suppressed": [finding.to_dict()
                       for finding in result.suppressed],
        "stale_baseline": [entry.to_dict() for entry in stale],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


#: published JSON schema for SARIF 2.1.0 (the static analysis results
#: interchange format CI annotators consume).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_sarif(result: ScanResult, new: List[Finding],
                 stale: List[Finding], rules: Sequence[Rule]) -> str:
    """SARIF 2.1.0 report for CI diff annotation.

    Carries the same findings as the JSON report (new findings as
    ``error`` results, stale baseline entries as ``note`` results) in
    the shape code-review integrations ingest: one run, driver
    ``repro-lint``, per-rule metadata, and physical locations with
    1-based lines/columns and repo-relative URIs.  Deterministic like
    every other renderer: sorted keys, no timestamps, no absolute
    paths — two runs over the same tree are byte-identical.
    """
    driver_rules = [
        {
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "properties": {"family": rule.family},
        }
        for rule in sorted(rules, key=lambda rule: rule.rule_id)
        if rule.rule_id
    ]
    results = []
    for level, findings in (("error", new), ("note", stale)):
        for finding in findings:
            message = finding.message if level == "error" else \
                f"stale baseline entry (fixed? rerun " \
                f"--write-baseline): {finding.message}"
            results.append({
                "ruleId": finding.rule,
                "level": level,
                "message": {"text": message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    },
                }],
            })
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "docs/static-analysis.md",
                    "rules": driver_rules,
                },
            },
            "results": results,
            "properties": {
                "checkedFiles": result.checked_files,
                "suppressed": len(result.suppressed),
            },
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_rule_list(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` table, grouped by family order of id."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  [{rule.family}] {rule.title}")
    return "\n".join(lines)
