"""Entry point: ``python -m tools.analysis`` (run from the repo root,
or anywhere — paths are resolved against the repo the tool lives in)."""

import sys

from .cli import main

sys.exit(main())
