"""Baseline handling: the committed ledger of accepted findings.

A baseline lets the gate land at zero *new* findings while historical
debt is burned down separately.  This repo's policy (see
``docs/static-analysis.md``) is stricter — the committed baseline is
empty and every legacy finding was fixed or inline-suppressed — but the
mechanism stays, so future rules can be introduced without blocking on
an instant repo-wide sweep.

Matching is exact on ``(path, line, col, rule, message)``; a drifted
line number shows up as one stale entry plus one new finding, which is
the prompt to re-run ``--write-baseline`` and review the diff.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

from .core import Finding

BASELINE_SCHEMA = "repro-lint-baseline/1"


def load_baseline(path: str) -> List[Finding]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: unsupported baseline schema "
                         f"{document.get('schema')!r}")
    return sorted(Finding.from_dict(entry)
                  for entry in document.get("findings", []))


def write_baseline(path: str, findings: List[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable bytes)."""
    document = {
        "schema": BASELINE_SCHEMA,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(findings: List[Finding], baseline: List[Finding]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, stale_baseline_entries)``.

    ``new`` is every finding not absorbed by the baseline; ``stale``
    is every baseline entry that no longer matches a real finding (a
    fixed defect whose ledger row should now be deleted).
    """
    known = set(baseline)
    new = [finding for finding in findings if finding not in known]
    current = set(findings)
    stale = [entry for entry in baseline if entry not in current]
    return sorted(new), sorted(stale)
