"""Per-module summaries: the JSON-serializable facts the whole-program
layer needs from one file.

A summary is a *pure function of one module's source* (plus its dotted
module name), which is what makes the incremental cache sound: the
entry for ``repro/core/batch.py`` can be reused until that file's
content hash changes, no matter what happened elsewhere — all
cross-module reasoning (call-graph edges, exception escape, seed
provenance) happens later, at :mod:`tools.analysis.callgraph` build
time, from the summaries of *every* module.

One summary records, per function (methods keyed ``Class.method``,
nested defs keyed ``outer.inner``):

* **calls** — every call site with its best-effort target: a resolved
  dotted ref (``repro.parallel.parallel_map``), a ``self.`` method, or
  a bare dynamic name for anything the AST cannot pin down, plus the
  exception names caught by ``try`` blocks enclosing the site;
* **raises** — literal ``raise`` sites with the resolved class name and
  the locally-caught names (a bare ``raise`` inside a handler re-raises
  the handler's types);
* **rng** — unseeded-RNG call sites, using the same detection sets as
  the per-file ``D101`` pass;
* **returns** — return expressions that construct or call something
  (the IPC-hygiene pass chases these across the graph);
* **fanouts** — ``parallel_map`` / ``supervised_map`` call sites with
  the resolved worker argument.

Module-level facts: import bindings (``np`` -> ``numpy``), star
imports, class bases, the emitted instrumentation names (so ``A502``
does not have to re-parse unchanged files), and the file's suppression
tags.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import FileContext
from .rules.determinism import (GLOBAL_NP_RANDOM_FNS, GLOBAL_RANDOM_FNS,
                                SEEDED_CONSTRUCTORS)
from .rules.observability import _EMITTERS, _is_name, _literal_name

SUMMARY_SCHEMA = "repro-lint-summary/1"

#: node types that open a new scope — the per-function walks stop here
#: so an inner def's calls are attributed to the inner function.
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _statement_bodies(node: ast.stmt) -> Iterator[List[ast.stmt]]:
    """Every nested statement list of a compound statement.

    Covers ``if``/``try``/``with``/``for``/``while`` (sync and async),
    so definitions inside e.g. a ``with record_campaign(...)`` block
    are discovered like top-level ones.
    """
    for name in ("body", "orelse", "finalbody"):
        value = getattr(node, name, None)
        if isinstance(value, list):
            yield value
    for handler in getattr(node, "handlers", []):
        yield handler.body


def resolve_relative(module: str, is_package: bool, level: int,
                     target: Optional[str]) -> str:
    """Absolute module name for a ``from ... import`` statement."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[:len(parts) - (level - 1)]
    base = ".".join(parts)
    if not target:
        return base
    return f"{base}.{target}" if base else target


def _own_scope_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_TYPES):
            stack.extend(ast.iter_child_nodes(child))


class _ModuleScope:
    """Module-level name bindings derived from top-level imports."""

    def __init__(self, module: str, is_package: bool, tree: ast.Module):
        self.module = module
        self.bindings: Dict[str, str] = {}
        self.star_imports: List[str] = []
        self.imports: Set[str] = set()
        self.functions: Dict[str, int] = {}
        self.classes: Dict[str, dict] = {}
        self._scan_imports(tree, is_package)
        self._scan_defs(tree.body, "")
        self._resolve_class_bases()

    def _scan_imports(self, tree: ast.Module, is_package: bool) -> None:
        for node in _own_scope_nodes(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports.add(alias.name)
                    if alias.asname:
                        self.bindings[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.bindings[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = resolve_relative(self.module, is_package,
                                        node.level, node.module)
                if base:
                    self.imports.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        self.star_imports.append(base)
                        continue
                    # ``from pkg import sub`` may bind a submodule: list
                    # both candidates, the graph keeps the ones that are
                    # real modules.
                    self.imports.add(f"{base}.{alias.name}"
                                     if base else alias.name)
                    self.bindings[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name

    def _scan_defs(self, body: List[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                self.functions[qual] = node.lineno
                self._scan_defs(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                self.classes[qual] = {
                    "line": node.lineno,
                    "bases": [self._base_ref(base)
                              for base in node.bases
                              if self._base_ref(base)],
                    "methods": sorted(
                        stmt.name for stmt in node.body
                        if isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))),
                }
                self._scan_defs(node.body, f"{qual}.")
            elif not isinstance(node, _SCOPE_TYPES):
                for body in _statement_bodies(node):
                    self._scan_defs(body, prefix)

    def _base_ref(self, base: ast.expr) -> Optional[str]:
        dotted = _dotted(base)
        if dotted is None:
            return None
        return self.qualify(dotted)

    def _resolve_class_bases(self) -> None:
        for info in self.classes.values():
            info["bases"] = [self.qualify(ref) for ref in info["bases"]]

    def qualify(self, dotted: str) -> str:
        """Expand the leading component through the import bindings."""
        head, _, rest = dotted.partition(".")
        if head in self.bindings:
            base = self.bindings[head]
        elif head in self.classes or head in self.functions:
            base = f"{self.module}.{head}"
        else:
            return dotted
        return f"{base}.{rest}" if rest else base


def _dotted(node: ast.expr) -> Optional[str]:
    """Plain dotted name of an expression, or ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return ".".join([node.id] + list(reversed(parts)))


def _local_names(function: ast.AST) -> Set[str]:
    """Names bound inside ``function``'s own scope (params + stores)."""
    names: Set[str] = set()
    arguments = function.args
    for arg in (arguments.posonlyargs + arguments.args +
                arguments.kwonlyargs):
        names.add(arg.arg)
    if arguments.vararg:
        names.add(arguments.vararg.arg)
    if arguments.kwarg:
        names.add(arguments.kwarg.arg)
    for node in _own_scope_nodes(function):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or
                              alias.name.split(".")[0])
        elif isinstance(node, _SCOPE_TYPES):
            names.add(node.name)
    return names


class _FunctionWalker:
    """Extracts one function's summary facts."""

    def __init__(self, scope: _ModuleScope, ctx: FileContext,
                 node: ast.AST, qual: str, cls: Optional[str]):
        self.scope = scope
        self.ctx = ctx
        self.node = node
        self.qual = qual
        self.cls = cls
        self.locals = _local_names(node)

    # -- target resolution ---------------------------------------------
    def target(self, func: ast.expr) -> Optional[Tuple[str, str]]:
        """``("ref", dotted)`` / ``("self", method)`` / ``("dyn", name)``.

        ``ref`` targets are absolute dotted names (project or external);
        ``self`` targets resolve against the enclosing class at graph
        time; ``dyn`` targets fall back to name-based matching.  Returns
        ``None`` for calls on computed expressions with no usable name.
        """
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.locals:
                return ("dyn", name)
            if name in self.scope.bindings:
                return ("ref", self.scope.bindings[name])
            if name in self.scope.functions or name in self.scope.classes:
                return ("ref", f"{self.scope.module}.{name}")
            if hasattr(builtins, name):
                return None
            return ("dyn", name)
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is None:
                return ("dyn", func.attr)
            head, _, rest = dotted.partition(".")
            if head == "self" and self.cls is not None and rest:
                if "." not in rest:
                    return ("self", rest)
                return ("dyn", func.attr)
            if head in self.locals:
                return ("dyn", func.attr)
            qualified = self.scope.qualify(dotted)
            if qualified != dotted or head in self.scope.bindings:
                return ("ref", qualified)
            return ("dyn", func.attr)
        return None

    def exception_name(self, expr: ast.expr) -> Optional[str]:
        """Bare class name for a ``raise``/``except`` expression."""
        node = expr.func if isinstance(expr, ast.Call) else expr
        if isinstance(node, ast.Name) and node.id[:1].isupper() and \
                node.id not in self.locals and hasattr(builtins, node.id):
            # builtin exception classes (ValueError, OSError, ...):
            # ``target`` deliberately drops builtins from the call
            # graph, but for raise/except matching the bare name is
            # exactly what the hierarchy wants.
            return node.id
        target = self.target(node)
        if target is None:
            return None
        kind, value = target
        if kind == "ref":
            return value.split(".")[-1]
        if kind == "dyn" and value[:1].isupper():
            # an unbound capitalized name is almost always a class from
            # a star import; keep the bare name for hierarchy matching.
            return value
        return None

    # -- caught-exception context --------------------------------------
    def caught_at(self, node: ast.AST) -> List[str]:
        """Handler type names of ``try`` blocks enclosing ``node``."""
        caught: List[str] = []
        child = node
        parent = self.ctx.parent(child)
        while parent is not None and parent is not self.node:
            if isinstance(parent, ast.Try) and \
                    any(stmt is child for stmt in parent.body):
                for handler in parent.handlers:
                    caught.extend(self._handler_names(handler))
            child, parent = parent, self.ctx.parent(parent)
        return sorted(set(caught))

    def _handler_names(self, handler: ast.ExceptHandler) -> List[str]:
        if handler.type is None:
            return ["BaseException"]
        types = handler.type.elts \
            if isinstance(handler.type, ast.Tuple) else [handler.type]
        names = []
        for expr in types:
            name = self.exception_name(expr)
            if name is not None:
                names.append(name)
        return names

    def _enclosing_handler(self,
                           node: ast.AST) -> Optional[ast.ExceptHandler]:
        child = node
        parent = self.ctx.parent(child)
        while parent is not None and parent is not self.node:
            if isinstance(parent, ast.ExceptHandler):
                return parent
            child, parent = parent, self.ctx.parent(parent)
        return None

    # -- per-node fact extraction ---------------------------------------
    def collect(self, config) -> dict:
        calls: List[list] = []
        raises: List[list] = []
        rng: List[list] = []
        returns: List[list] = []
        fanouts: List[list] = []
        for node in _own_scope_nodes(self.node):
            if isinstance(node, ast.Call):
                self._collect_call(node, config, calls, rng, fanouts)
            elif isinstance(node, ast.Raise):
                self._collect_raise(node, raises)
            elif isinstance(node, ast.Return) and node.value is not None:
                for kind, value in self._return_targets(node.value):
                    returns.append([node.lineno, kind, value])
            elif isinstance(node, _SCOPE_TYPES) and \
                    isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                # a nested def runs (at the latest) when the enclosing
                # function calls it — model containment as a call edge.
                calls.append([node.lineno, "ref",
                              f"{self.scope.module}.{self.qual}."
                              f"{node.name}", []])
        return {"line": self.node.lineno, "cls": self.cls,
                "calls": calls, "raises": raises, "rng": rng,
                "returns": returns, "fanouts": fanouts}

    def _collect_call(self, node: ast.Call, config, calls: List[list],
                      rng: List[list], fanouts: List[list]) -> None:
        target = self.target(node.func)
        if target is None:
            return
        kind, value = target
        caught = self.caught_at(node)
        calls.append([node.lineno, kind, value, caught])
        if kind == "ref":
            module, _, name = value.rpartition(".")
            if module == "random" and name in GLOBAL_RANDOM_FNS:
                rng.append([node.lineno, node.col_offset,
                            f"random.{name}"])
            elif module == "numpy.random" and \
                    name in GLOBAL_NP_RANDOM_FNS:
                rng.append([node.lineno, node.col_offset,
                            f"numpy.random.{name}"])
            elif value in SEEDED_CONSTRUCTORS and not node.args and \
                    not node.keywords:
                rng.append([node.lineno, node.col_offset, value])
        bare = value.split(".")[-1]
        if bare in config.fanout_functions and node.args:
            worker = self._worker_target(node.args[0])
            if worker is not None:
                fanouts.append([node.lineno, worker[0], worker[1]])

    def _worker_target(self,
                       expr: ast.expr) -> Optional[Tuple[str, str]]:
        if isinstance(expr, ast.Call):
            # functools.partial(worker, ...) — chase the bound callable
            inner = self.target(expr.func)
            if inner is not None and \
                    inner[1].split(".")[-1] == "partial" and expr.args:
                return self._worker_target(expr.args[0])
            return None
        return self.target(expr)

    def _collect_raise(self, node: ast.Raise,
                       raises: List[list]) -> None:
        handler = self._enclosing_handler(node)
        exc = node.exc
        rethrow = exc is None or (
            handler is not None and isinstance(exc, ast.Name) and
            handler.name == exc.id)
        if rethrow:
            if handler is None:
                return
            caught = self.caught_at(handler)
            for name in self._handler_names(handler):
                if name != "BaseException":
                    raises.append([node.lineno, name, caught])
            return
        name = self.exception_name(exc)
        if name is None:
            return
        raises.append([node.lineno, name, self.caught_at(node)])

    def _return_targets(self,
                        expr: ast.expr) -> Iterator[Tuple[str, str]]:
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                yield from self._return_targets(element)
            return
        if isinstance(expr, ast.Call):
            target = self.target(expr.func)
            if target is not None:
                yield target


def _metric_names(tree: ast.Module) -> List[str]:
    """Instrumentation names emitted by literal calls in this module.

    Byte-for-byte the same extraction :func:`..rules.observability
    .extract_names` performs, so ``A502`` answers identically whether it
    reads cached summaries or re-walks the tree.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if not isinstance(node.func, ast.Attribute) or \
                node.func.attr not in _EMITTERS:
            continue
        name = _literal_name(node.args[0])
        if name is not None and _is_name(name):
            names.add(name)
    return sorted(names)


def module_imports(tree: ast.Module, module: str,
                   is_package: bool) -> List[str]:
    """Absolute names of every module this one imports (pre-filter)."""
    return sorted(_ModuleScope(module, is_package, tree).imports)


def build_summary(module: str, is_package: bool,
                  ctx: FileContext) -> dict:
    """The full per-module summary document (JSON-serializable)."""
    scope = _ModuleScope(module, is_package, ctx.tree)
    functions: Dict[str, dict] = {}
    stack: List[Tuple[List[ast.stmt], str, Optional[str]]] = [
        (ctx.tree.body, "", None)]
    while stack:
        body, prefix, cls = stack.pop()
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                walker = _FunctionWalker(scope, ctx, node, qual, cls)
                functions[qual] = walker.collect(ctx.config)
                stack.append((node.body, f"{qual}.", cls))
            elif isinstance(node, ast.ClassDef):
                stack.append((node.body, f"{prefix}{node.name}.",
                              f"{prefix}{node.name}"))
            else:
                for body in _statement_bodies(node):
                    stack.append((body, prefix, cls))
    return {
        "schema": SUMMARY_SCHEMA,
        "module": module,
        "is_package": is_package,
        "imports": sorted(scope.imports),
        "bindings": dict(sorted(scope.bindings.items())),
        "star_imports": list(scope.star_imports),
        "functions": {qual: functions[qual]
                      for qual in sorted(functions)},
        "classes": {name: scope.classes[name]
                    for name in sorted(scope.classes)},
        "metrics": _metric_names(ctx.tree),
    }
