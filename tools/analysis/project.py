"""The ProjectIndex: the whole-program view built from module summaries.

Where :class:`~tools.analysis.core.FileContext` answers questions about
one file, the index answers the cross-module ones: *which module is
``repro.core.batch``*, *what does the ref ``repro.core.EMSim.simulate``
actually name once re-exports are chased*, *who imports whom*, and
*which files does a change to this module invalidate*.  It is built
from one :class:`ModuleRecord` per file — each the cached (or freshly
computed) product of that file alone — so constructing the index never
re-parses an unchanged module.

Name resolution is deliberately conservative: a dotted ref resolves by
longest-module-prefix, then through the target module's symbol table,
its ``from x import y`` re-export bindings (``__init__.py`` chains),
and finally its ``from x import *`` star imports, with a visited set
guarding import cycles.  Anything unresolved stays unresolved — the
call graph falls back to name-based over-approximation rather than
guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .config import AnalysisConfig, path_matches
from .core import Finding


def module_name_for(path: str,
                    source_roots: List[str]
                    ) -> Optional[Tuple[str, bool]]:
    """``(dotted module name, is_package)`` for a repo-relative path.

    Source roots are tried in order; ``"."`` maps a path to its dotted
    form verbatim (how ``tools/analysis/cli.py`` becomes
    ``tools.analysis.cli``), while ``"src"`` strips the prefix first
    (how ``src/repro/cli.py`` becomes ``repro.cli``).
    """
    normalized = path.replace("\\", "/")
    if not normalized.endswith(".py"):
        return None
    for root in source_roots:
        root = root.rstrip("/")
        if root in ("", "."):
            relative = normalized
        elif normalized.startswith(root + "/"):
            relative = normalized[len(root) + 1:]
        else:
            continue
        parts = relative[:-3].split("/")
        is_package = parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        if not parts or not all(part.isidentifier() for part in parts):
            return None
        return ".".join(parts), is_package
    return None


@dataclass
class ModuleRecord:
    """Everything one analyzer pass over a single file produced.

    This is the unit of caching: findings and suppressions from the
    per-file rules, the file's suppression tags (for the stale-tag
    pass), the module summary (for the whole-program rules), and the
    ``E000`` finding when the file does not parse.
    """

    path: str
    module: Optional[str]
    is_package: bool
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    tags: List[Tuple[int, Tuple[str, ...], Tuple[int, ...]]] = \
        field(default_factory=list)
    summary: Optional[dict] = None
    error: Optional[Finding] = None

    def suppression_map(self) -> Dict[int, Set[str]]:
        """Line -> suppressed rule ids, rebuilt from the stored tags."""
        mapping: Dict[int, Set[str]] = {}
        for _, ids, covered in self.tags:
            for line in covered:
                mapping.setdefault(line, set()).update(ids)
        return mapping

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict()
                           for finding in self.suppressed],
            "tags": [[line, list(ids), list(covered)]
                     for line, ids, covered in self.tags],
            "summary": self.summary,
            "error": self.error.to_dict() if self.error else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleRecord":
        return cls(
            path=data["path"],
            module=data["module"],
            is_package=bool(data["is_package"]),
            findings=[Finding.from_dict(entry)
                      for entry in data["findings"]],
            suppressed=[Finding.from_dict(entry)
                        for entry in data["suppressed"]],
            tags=[(int(line), tuple(ids), tuple(covered))
                  for line, ids, covered in data["tags"]],
            summary=data["summary"],
            error=Finding.from_dict(data["error"])
            if data.get("error") else None,
        )


class ProjectIndex:
    """Symbol tables, import graph, and ref resolution over all modules."""

    def __init__(self, records: Dict[str, ModuleRecord],
                 config: AnalysisConfig, root: str):
        self.config = config
        self.root = root
        self.records = records
        self.by_module: Dict[str, ModuleRecord] = {}
        for record in records.values():
            if record.module and record.summary is not None:
                self.by_module[record.module] = record
        self._bases: Optional[Dict[str, Set[str]]] = None

    # ------------------------------------------------------------------
    # lookup primitives
    # ------------------------------------------------------------------
    def summary(self, module: str) -> Optional[dict]:
        record = self.by_module.get(module)
        return record.summary if record else None

    def modules(self) -> List[str]:
        return sorted(self.by_module)

    def function(self, module: str, qual: str) -> Optional[dict]:
        summary = self.summary(module)
        if summary is None:
            return None
        return summary["functions"].get(qual)

    # ------------------------------------------------------------------
    # ref resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: str,
                _seen: Optional[FrozenSet[str]] = None
                ) -> Optional[Tuple[str, str, str]]:
        """Resolve a dotted ref to ``(kind, module, qual)``.

        ``kind`` is ``"function"``, ``"class"``, or ``"module"``;
        external refs (``numpy.random.normal``) resolve to ``None``.
        Re-export chains (``repro.core.EMSim`` ->
        ``repro.core.simulator.EMSim``) and star imports are chased
        with a visited set, so import cycles terminate.
        """
        seen = _seen or frozenset()
        if ref in seen:
            return None
        seen = seen | {ref}
        parts = ref.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.by_module:
                rest = parts[cut:]
                if not rest:
                    return ("module", module, "")
                return self._resolve_in(module, rest, seen)
        return None

    def _resolve_in(self, module: str, rest: List[str],
                    seen: FrozenSet[str]
                    ) -> Optional[Tuple[str, str, str]]:
        summary = self.summary(module)
        if summary is None:
            return None
        qual = ".".join(rest)
        if qual in summary["functions"]:
            return ("function", module, qual)
        if qual in summary["classes"]:
            return ("class", module, qual)
        head = rest[0]
        if head in summary["bindings"]:
            target = summary["bindings"][head]
            if rest[1:]:
                target = f"{target}.{'.'.join(rest[1:])}"
            return self.resolve(target, seen)
        for star in summary["star_imports"]:
            hit = self.resolve(f"{star}.{qual}", seen)
            if hit is not None:
                return hit
        return None

    # ------------------------------------------------------------------
    # class hierarchy (bare names)
    # ------------------------------------------------------------------
    def class_bases(self) -> Dict[str, Set[str]]:
        """Bare class name -> bare base names, merged across modules.

        Keyed by bare name because exception matching in ``except``
        clauses is textual at analysis time; a cross-module name
        collision merges conservatively (more ancestors, never fewer).
        """
        if self._bases is None:
            bases: Dict[str, Set[str]] = {}
            for module in self.modules():
                summary = self.summary(module)
                for qual, info in summary["classes"].items():
                    bare = qual.split(".")[-1]
                    bases.setdefault(bare, set()).update(
                        ref.split(".")[-1] for ref in info["bases"])
            self._bases = bases
        return self._bases

    # ------------------------------------------------------------------
    # import graph
    # ------------------------------------------------------------------
    def import_graph(self) -> Dict[str, Set[str]]:
        """module -> internal modules it imports (externals dropped)."""
        graph: Dict[str, Set[str]] = {}
        for module in self.modules():
            summary = self.summary(module)
            graph[module] = {dep for dep in summary["imports"]
                             if dep in self.by_module and dep != module}
        return graph

    def dependents_closure(self,
                           modules: Iterable[str]) -> Set[str]:
        """The given modules plus everything transitively importing them."""
        reverse: Dict[str, Set[str]] = {}
        for module, deps in self.import_graph().items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(module)
        closure: Set[str] = set()
        frontier = [m for m in modules if m in self.by_module]
        while frontier:
            module = frontier.pop()
            if module in closure:
                continue
            closure.add(module)
            frontier.extend(sorted(reverse.get(module, ())))
        return closure

    # ------------------------------------------------------------------
    # derived facts for rules
    # ------------------------------------------------------------------
    def metric_names(self, prefix: str = "src/repro") -> Set[str]:
        """Union of emitted instrumentation names under ``prefix``."""
        names: Set[str] = set()
        for record in self.records.values():
            if record.summary is None:
                continue
            if path_matches(record.path, [prefix]):
                names.update(record.summary["metrics"])
        return names
