"""Command-line front end for ``python -m tools.analysis``.

Exit codes follow the documented ``ReproError`` table
(``docs/robustness.md``): ``0`` clean, ``17`` (``AnalysisError``) when
unsuppressed findings remain, ``16`` (``ConfigurationError``) for bad
invocations or config, ``2`` from argparse itself.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .baseline import apply_baseline, load_baseline, write_baseline
from .config import REPO_ROOT, load_config
from .core import Analyzer
from .report import render_json, render_rule_list, render_text
from .rules import all_rules

#: mirrors ``AnalysisError.exit_code`` / ``ConfigurationError.exit_code``
#: without importing numpy-heavy ``repro`` for the common clean path;
#: ``test_analysis.py`` pins these against the real classes.
EXIT_FINDINGS = 17
EXIT_CONFIG = 16


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="repro-lint: AST-based invariant analyzer "
                    "(determinism, numerical safety, error contracts, "
                    "API hygiene)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to scan (default: the "
                             "configured lint surface)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json"),
                        help="report format (json is byte-stable "
                             "across runs)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the report here instead of stdout")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: the configured "
                             "tools/analysis/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every "
                             "finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str]):
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for option, value in (("--select", select), ("--ignore", ignore)):
        if value:
            unknown = sorted(set(_split(value)) - known)
            if unknown:
                raise ValueError(f"{option}: unknown rule id(s) "
                                 f"{', '.join(unknown)}")
    if select:
        wanted = set(_split(select))
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = set(_split(ignore))
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _split(value: str) -> List[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer; returns a ``ReproError``-table exit code."""
    args = _build_parser().parse_args(argv)
    try:
        config = load_config(REPO_ROOT)
        rules = _pick_rules(args.select, args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    if args.list_rules:
        print(render_rule_list(rules))
        return 0

    analyzer = Analyzer(rules, config, root=REPO_ROOT)
    result = analyzer.run(args.paths or None)

    baseline_path = os.path.join(
        REPO_ROOT, args.baseline or config.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"baseline written: {len(result.findings)} finding(s) "
              f"-> {os.path.relpath(baseline_path, REPO_ROOT)}")
        return 0
    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    new, stale = apply_baseline(result.findings, baseline)

    render = render_json if args.format == "json" else render_text
    report = render(result, new, stale)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report if report.endswith("\n")
                         else report + "\n")
    else:
        print(report, end="" if report.endswith("\n") else "\n")
    return EXIT_FINDINGS if new or stale else 0
