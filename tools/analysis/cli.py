"""Command-line front end for ``python -m tools.analysis``.

Exit codes follow the documented ``ReproError`` table
(``docs/robustness.md``): ``0`` clean, ``17`` (``AnalysisError``) when
unsuppressed findings remain, ``16`` (``ConfigurationError``) for bad
invocations, bad config, or an unusable ``--changed-only`` git state,
``2`` from argparse itself.

The incremental cache is on by default (``make lint``); ``--no-cache``
forces a full cold analysis (``make lint-cold``) and is guaranteed to
produce byte-identical findings.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
from typing import List, Optional

from .baseline import apply_baseline, load_baseline, write_baseline
from .config import REPO_ROOT, load_config
from .core import Analyzer
from .report import (render_json, render_rule_list, render_sarif,
                     render_text)
from .rules import all_rules

#: mirrors ``AnalysisError.exit_code`` / ``ConfigurationError.exit_code``
#: without importing numpy-heavy ``repro`` for the common clean path;
#: ``test_analysis.py`` pins these against the real classes.
EXIT_FINDINGS = 17
EXIT_CONFIG = 16


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="repro-lint: AST-based invariant analyzer "
                    "(determinism, numerical safety, error contracts, "
                    "API hygiene, whole-program dataflow)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to scan (default: the "
                             "configured lint surface)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (json and sarif are "
                             "byte-stable across runs)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the report here instead of stdout")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: the configured "
                             "tools/analysis/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every "
                             "finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the incremental per-module cache "
                             "(full cold analysis; identical findings)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="incremental cache directory (default: "
                             "the configured cache-dir under the repo "
                             "root)")
    parser.add_argument("--changed-only", action="store_true",
                        help="scope to files changed vs merge-base "
                             "with origin/main, plus their transitive "
                             "import-graph dependents")
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str]):
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for option, value in (("--select", select), ("--ignore", ignore)):
        if value:
            unknown = sorted(set(_split(value)) - known)
            if unknown:
                raise ValueError(f"{option}: unknown rule id(s) "
                                 f"{', '.join(unknown)}")
    if select:
        wanted = set(_split(select))
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = set(_split(ignore))
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _split(value: str) -> List[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def _git_changed_files(root: str) -> List[str]:
    """Paths changed vs ``git merge-base HEAD origin/main``.

    Includes uncommitted working-tree changes (that is what a local
    pre-push lint wants).  Raises ``ValueError`` — reported as exit 16
    — when git is missing, this is not a repository, or the merge base
    cannot be computed (no ``origin/main``), so ``--changed-only``
    degrades with a clear message instead of a traceback.
    """
    git = shutil.which("git")
    if git is None:
        raise ValueError("--changed-only: git is not available on PATH")
    try:
        base = subprocess.run(
            [git, "merge-base", "HEAD", "origin/main"],
            cwd=root, capture_output=True, text=True)
    except OSError as error:
        raise ValueError(f"--changed-only: cannot run git ({error})")
    if base.returncode != 0:
        detail = base.stderr.strip() or base.stdout.strip() or \
            f"exit status {base.returncode}"
        raise ValueError(f"--changed-only: git merge-base HEAD "
                         f"origin/main failed ({detail})")
    diff = subprocess.run(
        [git, "diff", "--name-only", base.stdout.strip()],
        cwd=root, capture_output=True, text=True)
    if diff.returncode != 0:
        detail = diff.stderr.strip() or f"exit status {diff.returncode}"
        raise ValueError(f"--changed-only: git diff failed ({detail})")
    return [line.strip() for line in diff.stdout.splitlines()
            if line.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer; returns a ``ReproError``-table exit code."""
    args = _build_parser().parse_args(argv)
    try:
        config = load_config(REPO_ROOT)
        rules = _pick_rules(args.select, args.ignore)
        if args.changed_only and args.paths:
            raise ValueError("--changed-only computes its own scope; "
                             "drop the positional paths")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    if args.list_rules:
        print(render_rule_list(rules))
        return 0

    cache_dir = None
    if not args.no_cache:
        cache_dir = os.path.join(REPO_ROOT,
                                 args.cache_dir or config.cache_dir)
    analyzer = Analyzer(rules, config, root=REPO_ROOT,
                        cache_dir=cache_dir)

    paths: Optional[List[str]] = args.paths or None
    if args.changed_only:
        try:
            paths = analyzer.changed_scope(_git_changed_files(REPO_ROOT))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_CONFIG
    result = analyzer.run(paths)

    baseline_path = os.path.join(
        REPO_ROOT, args.baseline or config.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"baseline written: {len(result.findings)} finding(s) "
              f"-> {os.path.relpath(baseline_path, REPO_ROOT)}")
        return 0
    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    new, stale = apply_baseline(result.findings, baseline)

    if args.format == "sarif":
        report = render_sarif(result, new, stale, rules)
    elif args.format == "json":
        report = render_json(result, new, stale)
    else:
        report = render_text(result, new, stale)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report if report.endswith("\n")
                         else report + "\n")
    else:
        print(report, end="" if report.endswith("\n") else "\n")
    return EXIT_FINDINGS if new or stale else 0
