"""Repository tooling: development gates that run under ``make check``.

``tools.analysis`` is the AST-based invariant analyzer (``repro-lint``);
``check_docstrings.py`` and ``check_docs.py`` are deprecated thin
wrappers kept for one release (see ``docs/static-analysis.md``).
"""
