"""Tests for the AES-128 implementation (repro.leakage.aes)."""

import pytest

from repro.leakage.aes import (DEFAULT_KEY, FIPS_CIPHERTEXT, FIPS_KEY,
                               FIPS_PLAINTEXT, SBOX, aes128_encrypt_reference,
                               aes_program, key_schedule, read_ciphertext)
from repro.uarch import GoldenSimulator, run_program


def test_sbox_known_values():
    # classic S-box spot checks
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16
    assert len(set(SBOX)) == 256  # a permutation


def test_key_schedule_fips_vector():
    round_keys = key_schedule(FIPS_KEY)
    assert len(round_keys) == 11
    assert round_keys[0] == list(FIPS_KEY)
    # FIPS-197 appendix A.1: w[4..7] of the expanded key
    assert round_keys[1][:4] == [0xA0, 0xFA, 0xFE, 0x17]
    assert round_keys[10][12:] == [0xB6, 0x63, 0x0C, 0xA6]


def test_key_schedule_rejects_bad_key():
    with pytest.raises(ValueError):
        key_schedule([0] * 15)


def test_reference_matches_fips():
    assert tuple(aes128_encrypt_reference(FIPS_KEY, FIPS_PLAINTEXT)) == \
        FIPS_CIPHERTEXT


def test_reference_rejects_bad_plaintext():
    with pytest.raises(ValueError):
        aes128_encrypt_reference(FIPS_KEY, [0] * 15)


def test_golden_execution_matches_fips():
    program = aes_program(FIPS_KEY, FIPS_PLAINTEXT)
    golden = GoldenSimulator(program)
    golden.run(max_steps=100_000)
    assert golden.halted
    assert tuple(read_ciphertext(golden.memory)) == FIPS_CIPHERTEXT


def test_pipeline_execution_matches_fips():
    program = aes_program(FIPS_KEY, FIPS_PLAINTEXT)
    trace, core = run_program(program)
    assert core.halted
    assert tuple(read_ciphertext(core.memory.snapshot())) == \
        FIPS_CIPHERTEXT


def test_reduced_round_variant_matches_reference():
    plaintext = list(range(16, 32))
    program = aes_program(DEFAULT_KEY, plaintext, rounds=3)
    golden = GoldenSimulator(program)
    golden.run(max_steps=100_000)
    expected = aes128_encrypt_reference(DEFAULT_KEY, plaintext, rounds=3)
    assert read_ciphertext(golden.memory) == expected


def test_cycle_count_is_data_independent():
    """Required for TVLA trace alignment: the cache-warmed AES runs in
    the same number of cycles for every plaintext."""
    counts = set()
    for seed in range(3):
        plaintext = [(seed * 37 + i * 11) & 0xFF for i in range(16)]
        trace, _ = run_program(aes_program(DEFAULT_KEY, plaintext,
                                           rounds=2))
        counts.add(trace.num_cycles)
    assert len(counts) == 1


def test_different_plaintexts_different_ciphertexts():
    a = aes128_encrypt_reference(DEFAULT_KEY, [0] * 16)
    b = aes128_encrypt_reference(DEFAULT_KEY, [1] + [0] * 15)
    assert a != b
