"""Batched/parallel engine: numerical contracts and determinism.

The batch layer (``repro.core.batch``, the batched signal helpers, and
the worker fan-out in training and leakage sweeps) promises:

* re-simulation through :class:`BatchSimulator` is **bit-identical** to
  calling ``EMSim.simulate`` per program;
* measurement campaigns agree between ``workers=1`` (sequential legacy
  engine) and ``workers=N`` (batched engine) to well inside 1e-9,
  including under fault injection;
* results are deterministic and independent of worker count, because
  every campaign item reseeds from ``(seed, index)``.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core import (BatchSimulator, EMSim, ModelSwitches, Trainer,
                        measurement_campaign, model_to_dict, train_emsim)
from repro.hardware import HardwareDevice
from repro.parallel import spawn_seed
from repro.profiling import (Profiler, disable_profiling, enable_profiling,
                             write_bench_json)
from repro.robustness import FaultPlan
from repro.signal import (DEFAULT_KERNEL, batch_estimate_cycle_amplitudes,
                          batch_reconstruct, estimate_cycle_amplitudes,
                          reconstruct)
from repro.uarch.latches import STAGES
from repro.workloads import RandomProgramBuilder

CONTRACT = 1e-9
"""The batch engine's documented max-abs-diff bound vs sequential."""


def _programs(count, length=24, seed=5):
    builder = RandomProgramBuilder(seed=seed)
    return [builder.program(length, name=f"prog_{i:03d}")
            for i in range(count)]


@pytest.fixture(scope="module")
def trained():
    device = HardwareDevice(seed=3)
    model = train_emsim(device)
    return device, model, EMSim(model, core_config=device.core_config)


def _max_campaign_diff(left, right):
    diff = 0.0
    for a, b in zip(left, right):
        diff = max(diff, float(np.abs(a.signal - b.signal).max()),
                   float(np.abs(a.amplitudes - b.amplitudes).max()))
    return diff


# ---------------------------------------------------------------------------
# batched re-simulation
# ---------------------------------------------------------------------------
def test_simulate_many_bit_identical(trained):
    _, _, simulator = trained
    programs = _programs(6)
    for workers in (1, 2):
        batch = BatchSimulator(simulator, workers=workers)
        results = batch.simulate_many(programs)
        assert len(results) == len(programs)
        for program, result in zip(programs, results):
            reference = simulator.simulate(program)
            assert np.array_equal(result.amplitudes, reference.amplitudes)
            assert np.array_equal(result.signal, reference.signal)


def test_simulator_simulate_many_entry_point(trained):
    _, _, simulator = trained
    programs = _programs(3)
    results = simulator.simulate_many(programs, workers=2)
    reference = [simulator.simulate(p) for p in programs]
    for got, want in zip(results, reference):
        assert np.array_equal(got.signal, want.signal)


def test_vectorized_predict_matches_scalar_reference(trained):
    """The vectorized per-cycle predictor is bitwise the legacy loop."""
    _, model, simulator = trained
    switch_sets = [ModelSwitches(),
                   ModelSwitches(model_stalls=False),
                   ModelSwitches(regression_alpha=False),
                   ModelSwitches(data_dependence=False)]
    for program in _programs(3, seed=11):
        trace = simulator.run_trace(program)
        for switches in switch_sets:
            got = model.predict_cycle_amplitudes(trace, switches=switches)
            assert np.array_equal(got, _scalar_predict(model, trace,
                                                       switches))


def _scalar_predict(model, trace, switches):
    """The pre-vectorization per-cycle reference loop, kept verbatim."""
    activity = model._activity_model(switches)
    cycles = trace.num_cycles
    prediction = np.full(cycles, model.intercept)
    for stage in STAGES:
        floor = model.floors.get(stage, 0.0)
        scale = model.miso.get(stage, 1.0) * model.beta.get(stage, 1.0)
        alphas = activity.alpha(trace, stage)
        contribution = np.empty(cycles)
        for cycle, occ in enumerate(trace.occupancy[stage]):
            em_class = occ.em_class()
            if em_class == "stall":
                if switches.model_stalls:
                    contribution[cycle] = 0.0
                    continue
                em_class = (occ.instr.cls.value if occ.instr is not None
                            else "nop")
                if occ.instr is not None and occ.instr.is_load:
                    em_class = "load_cache" if occ.dyn == "hit" \
                        else "load_mem"
            if em_class == "nop":
                contribution[cycle] = floor * model.beta.get(stage, 1.0)
                continue
            amplitude = model.amplitude(em_class, stage, switches)
            contribution[cycle] = \
                floor * model.beta.get(stage, 1.0) + \
                scale * alphas[cycle] * amplitude
        prediction += contribution
    return prediction


# ---------------------------------------------------------------------------
# batched signal helpers
# ---------------------------------------------------------------------------
def test_batch_reconstruct_bit_identical(rng):
    amplitudes = [rng.normal(size=n) for n in (17, 30, 17, 5)]
    signals = batch_reconstruct(amplitudes, DEFAULT_KERNEL, 10)
    for amps, signal in zip(amplitudes, signals):
        assert np.array_equal(signal, reconstruct(amps, DEFAULT_KERNEL, 10))


def test_batch_estimate_matches_sequential(rng):
    signals = []
    for n in (12, 25, 12):
        clean = reconstruct(rng.normal(size=n), DEFAULT_KERNEL, 10)
        signals.append(clean + rng.normal(scale=0.01, size=len(clean)))
    batched = batch_estimate_cycle_amplitudes(signals, DEFAULT_KERNEL, 10)
    for signal, amps in zip(signals, batched):
        reference = estimate_cycle_amplitudes(signal, DEFAULT_KERNEL, 10)
        assert np.abs(amps - reference).max() < CONTRACT


# ---------------------------------------------------------------------------
# measurement campaigns
# ---------------------------------------------------------------------------
def test_campaign_workers_agree_within_contract():
    programs = _programs(6)
    sequential = measurement_campaign(HardwareDevice(seed=3), programs,
                                      repetitions=16, workers=1, seed=9)
    batched = measurement_campaign(HardwareDevice(seed=3), programs,
                                   repetitions=16, workers=8, seed=9)
    assert [p.program_name for p in sequential] == \
        [p.program_name for p in batched]
    assert _max_campaign_diff(sequential, batched) < CONTRACT


def test_campaign_workers_agree_under_faults():
    plan = FaultPlan.preset(0.25, seed=7)
    programs = _programs(6)
    runs = [measurement_campaign(
        HardwareDevice(seed=3, fault_plan=FaultPlan.preset(0.25, seed=7)),
        programs, repetitions=16, workers=workers, seed=9)
        for workers in (1, 8)]
    assert plan.describe()  # the plan is non-trivial
    assert _max_campaign_diff(*runs) < CONTRACT


def test_campaign_deterministic_across_runs():
    programs = _programs(5)
    first = measurement_campaign(HardwareDevice(seed=3), programs,
                                 repetitions=12, workers=8, seed=4)
    second = measurement_campaign(HardwareDevice(seed=3), programs,
                                  repetitions=12, workers=8, seed=4)
    for a, b in zip(first, second):
        assert np.array_equal(a.signal, b.signal)
        assert np.array_equal(a.amplitudes, b.amplitudes)


# ---------------------------------------------------------------------------
# parallel training
# ---------------------------------------------------------------------------
def test_trainer_workers_identical_on_ideal_path():
    """Ideal captures never consume the device RNG, so the worker pool
    must reproduce the sequential model bit-for-bit."""
    kwargs = dict(activity_probes_per_class=4, miso_groups=1,
                  miso_group_size=48, repetitions=16, seed=11)
    models = []
    for workers in (1, 2):
        trainer = Trainer(device=HardwareDevice(seed=3), workers=workers,
                          **kwargs)
        models.append(model_to_dict(trainer.train()))
    assert json.dumps(models[0], sort_keys=True) == \
        json.dumps(models[1], sort_keys=True)


# ---------------------------------------------------------------------------
# determinism plumbing
# ---------------------------------------------------------------------------
def test_spawn_seed_streams_are_independent():
    base = spawn_seed(42, 3).random(4)
    assert np.array_equal(base, spawn_seed(42, 3).random(4))
    assert not np.array_equal(base, spawn_seed(42, 4).random(4))
    assert not np.array_equal(base, spawn_seed(42, 3, stream=1).random(4))
    assert not np.array_equal(base, spawn_seed(43, 3).random(4))


def test_trace_pickle_drops_transition_cache(trained):
    _, _, simulator = trained
    trace = simulator.run_trace(_programs(1)[0])
    matrix = trace.transition_matrix("E")          # populate the cache
    clone = pickle.loads(pickle.dumps(trace))
    assert "_transition_cache" not in clone.__dict__ or \
        not clone.__dict__["_transition_cache"]
    assert np.array_equal(clone.transition_matrix("E"), matrix)


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------
def test_profiler_merge_and_bench_json(tmp_path):
    parent, child = Profiler(enabled=True), Profiler(enabled=True)
    parent.add_phase("sim.trace", 1.0, calls=2)
    child.add_phase("sim.trace", 0.5)
    child.count("batch.programs", 7)
    parent.merge(child)
    assert parent.phases["sim.trace"].seconds == pytest.approx(1.5)
    assert parent.phases["sim.trace"].calls == 3
    assert parent.counters["batch.programs"] == 7

    path = tmp_path / "BENCH_sim.json"
    document = write_bench_json(str(path), metadata={"speedup": 3.0},
                                profiler=parent)
    on_disk = json.loads(path.read_text())
    assert on_disk == document
    assert on_disk["schema"] == "repro-bench/1"
    assert on_disk["speedup"] == 3.0
    assert on_disk["phases"]["sim.trace"]["calls"] == 3


def test_campaign_records_profile_phases():
    profiler = enable_profiling()
    profiler.reset()
    try:
        measurement_campaign(HardwareDevice(seed=3), _programs(2),
                             repetitions=8, workers=1, seed=0)
        assert "campaign.capture" in profiler.phases
        assert "campaign.deconvolve" in profiler.phases
        assert profiler.counters["campaign.programs"] == 2
    finally:
        disable_profiling().reset()
