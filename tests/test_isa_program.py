"""Tests for the Program container and the disassembler."""

import pytest

from repro.isa import (Instruction, NOP, Program, TEXT_BASE, assemble,
                       disassemble, disassemble_word, store_words)


def test_machine_code_matches_instructions():
    program = Program.from_instructions([NOP, Instruction("ebreak")])
    assert program.machine_code == [0x00000013, 0x00100073]


def test_instruction_at():
    program = Program.from_instructions([NOP] * 3)
    assert program.instruction_at(TEXT_BASE) is NOP
    assert program.instruction_at(TEXT_BASE + 8) is NOP
    assert program.instruction_at(TEXT_BASE + 12) is None
    assert program.instruction_at(TEXT_BASE + 2) is None  # misaligned
    assert program.instruction_at(TEXT_BASE - 4) is None


def test_with_data_words():
    base_program = Program.from_instructions([NOP])
    poked = base_program.with_data_words(0x2000, [0x11223344])
    assert poked.data[0x2000] == 0x44
    assert poked.data[0x2003] == 0x11
    assert not base_program.data  # original untouched


def test_data_byte_validation():
    with pytest.raises(ValueError):
        Program(instructions=[NOP], data={0: 300})


def test_store_words_little_endian():
    data = {}
    store_words(data, 0x100, [0xAABBCCDD])
    assert data[0x100] == 0xDD
    assert data[0x103] == 0xAA


def test_to_asm_round_trip():
    source = """
    add t0, t1, t2
    lw a0, 4(sp)
    sw a1, 8(sp)
    """
    program = assemble(source)
    again = assemble(program.to_asm())
    assert again.instructions == program.instructions


def test_disassemble_word():
    assert disassemble_word(0x00000013) == "nop"
    assert disassemble_word(0x003100B3) == "add ra, sp, gp"


def test_disassemble_listing():
    program = assemble("nop\nadd t0, t1, t2")
    lines = disassemble(program.machine_code)
    assert lines[0].startswith("00000000: nop")
    assert "add" in lines[1]


def test_disassemble_round_trip_whole_isa():
    from repro.isa.spec import ALL_MNEMONICS
    for name in ALL_MNEMONICS:
        if name in ("ecall", "ebreak", "fence"):
            instr = Instruction(name)
        elif name in ("slli", "srli", "srai"):
            instr = Instruction(name, rd=3, rs1=4, imm=7)
        else:
            probe = Instruction(name, rd=3, rs1=4, rs2=5)
            if probe.is_branch:
                instr = Instruction(name, rs1=4, rs2=5, imm=16)
            elif probe.fmt.value == "J":
                instr = Instruction(name, rd=3, imm=16)
            else:
                instr = probe
        text = instr.to_asm()
        assert assemble(text).instructions[0].encode() == instr.encode(), \
            (name, text)
