"""Tests for reconstruction kernels (repro.signal.kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.kernels import (DampedSineKernel, ExpKernel, RectKernel,
                                  make_kernel)


def test_rect_kernel_is_unit_pulse():
    kernel = RectKernel()
    tau = np.array([-0.5, 0.0, 0.5, 0.999, 1.0, 2.0])
    assert np.array_equal(kernel.evaluate(tau), [0, 1, 1, 1, 0, 0])


def test_exp_kernel_decays():
    kernel = ExpKernel(theta=4.0)
    tau = np.linspace(0, 3, 50)
    values = kernel.evaluate(tau)
    assert values[0] == 1.0
    assert np.all(np.diff(values) < 0)
    assert kernel.evaluate(np.array([-0.01]))[0] == 0.0


def test_damped_sine_oscillates_and_decays():
    kernel = DampedSineKernel(t0=0.25, theta=4.0)
    tau = np.linspace(0, 1, 400)
    values = kernel.evaluate(tau)
    signs = np.sign(values[1:])
    crossings = int(np.sum(signs[1:] != signs[:-1]))
    assert crossings >= 6  # about 4 oscillation periods in one cycle
    # envelope decays
    assert np.max(np.abs(values[300:])) < np.max(np.abs(values[:100]))
    assert kernel.evaluate(np.array([-1e-9]))[0] == 0.0


def test_damped_sine_phase_shifts_waveform():
    base = DampedSineKernel(phase=0.0)
    shifted = DampedSineKernel(phase=np.pi)
    tau = np.linspace(0.01, 0.2, 50)
    assert np.allclose(base.evaluate(tau), -shifted.evaluate(tau),
                       atol=1e-12)


def test_sampled_length_matches_support():
    kernel = DampedSineKernel(support_cycles=3.0)
    assert len(kernel.sampled(20)) == 60
    assert len(kernel.sampled(7)) == 21


def test_sampled_starts_at_zero_for_sine():
    kernel = DampedSineKernel(phase=0.0)
    assert kernel.sampled(20)[0] == 0.0


def test_make_kernel_factory():
    assert isinstance(make_kernel("rect"), RectKernel)
    assert isinstance(make_kernel("exp", theta=2.0), ExpKernel)
    kernel = make_kernel("damped-sine", t0=0.3)
    assert isinstance(kernel, DampedSineKernel)
    assert kernel.t0 == 0.3
    with pytest.raises(ValueError):
        make_kernel("wavelet")


@given(st.floats(0.1, 0.5), st.floats(1.0, 8.0),
       st.floats(-np.pi, np.pi))
@settings(max_examples=60, deadline=None)
def test_kernel_causal_and_bounded(t0, theta, phase):
    kernel = DampedSineKernel(t0=t0, theta=theta, phase=phase)
    tau = np.linspace(-2, 5, 300)
    values = kernel.evaluate(tau)
    assert np.all(values[tau < 0] == 0.0)
    assert np.all(np.abs(values) <= 1.0 + 1e-12)
