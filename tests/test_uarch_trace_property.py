"""Property-based bit-identity and codec round trips for the trace engine.

The columnar :class:`~repro.uarch.trace.ActivityTrace` replaced the
seed's per-cycle object-graph recording; the seed path survives as
``LegacyActivityTrace``, the reference oracle.  These properties pin
the equivalence over *arbitrary* generated programs — not just the
canned kernels the unit tests use — on both cores and under ALU fault
injection, and pin the ``repro-trace/1`` codec: a round trip must be
byte-stable and bit-identical, and any truncation or single-byte
corruption must surface as :class:`TraceCodecError` (which the trace
cache treats as a miss), never as a wrong trace or a foreign exception.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracebench import assert_traces_identical
from repro.leakage.debugging import (buggy_multiplier,
                                     multiplier_stress_program)
from repro.uarch import run_program, run_program_ooo
from repro.uarch.tracecodec import (TraceCodecError, decode_trace,
                                    encode_trace)
from repro.workloads import fibonacci
from repro.workloads.generators import RandomProgramBuilder


def _random_program(seed, length, **builder_options):
    builder = RandomProgramBuilder(seed=seed, **builder_options)
    return builder.program(length, name=f"prop_{seed}_{length}")


_SEEDS = st.integers(0, 2**16 - 1)
_LENGTHS = st.integers(4, 40)

#: one fixed payload for the cheap truncation/corruption properties.
_PAYLOAD = encode_trace(run_program(fibonacci(6))[0])


@given(seed=_SEEDS, length=_LENGTHS)
@settings(max_examples=25, deadline=None)
def test_columnar_matches_legacy_inorder(seed, length):
    program = _random_program(seed, length)
    legacy, _ = run_program(program, legacy_trace=True)
    columnar, _ = run_program(program)
    assert_traces_identical(legacy, columnar)


@given(seed=_SEEDS, length=_LENGTHS)
@settings(max_examples=15, deadline=None)
def test_columnar_matches_legacy_ooo(seed, length):
    program = _random_program(seed, length)
    legacy, _ = run_program_ooo(program, legacy_trace=True)
    columnar, _ = run_program_ooo(program)
    assert_traces_identical(legacy, columnar)


@given(seed=_SEEDS, muls=st.integers(1, 8))
@settings(max_examples=10, deadline=None)
def test_columnar_matches_legacy_under_fault_injection(seed, muls):
    program = multiplier_stress_program(muls, seed=seed)
    legacy, _ = run_program(program, alu_bug=buggy_multiplier,
                            legacy_trace=True)
    columnar, _ = run_program(program, alu_bug=buggy_multiplier)
    assert_traces_identical(legacy, columnar)


@given(seed=_SEEDS, length=_LENGTHS)
@settings(max_examples=15, deadline=None)
def test_codec_round_trip_is_byte_stable(seed, length):
    program = _random_program(seed, length)
    trace, _ = run_program(program)
    payload = encode_trace(trace)
    decoded = decode_trace(payload)
    assert_traces_identical(trace, decoded)
    assert encode_trace(decoded) == payload
    # pickling routes through the codec, so it round-trips identically
    assert_traces_identical(trace, pickle.loads(pickle.dumps(trace)))


@given(cut=st.integers(0, len(_PAYLOAD) - 1))
@settings(max_examples=60, deadline=None)
def test_truncated_payload_is_rejected(cut):
    with pytest.raises(TraceCodecError):
        decode_trace(_PAYLOAD[:cut])


@given(position=st.integers(0, len(_PAYLOAD) - 1),
       flip=st.integers(1, 255))
@settings(max_examples=60, deadline=None)
def test_corrupted_payload_is_rejected(position, flip):
    corrupted = bytearray(_PAYLOAD)
    corrupted[position] ^= flip
    with pytest.raises(TraceCodecError):
        decode_trace(bytes(corrupted))
