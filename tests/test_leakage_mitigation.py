"""Tests for the branch-timing balancing pass (repro.leakage.mitigation)."""

import pytest

from repro.isa import Instruction, NOP, assemble
from repro.leakage import (MitigationError, balance_branch_timing,
                           duration_separation, recover_exponent)
from repro.uarch import GoldenSimulator, run_program
from repro.workloads import (RandomProgramBuilder, modexp_program,
                             modexp_reference)


def _golden_state(program):
    golden = GoldenSimulator(program)
    golden.run(max_steps=500_000)
    assert golden.halted
    return golden.registers, golden.memory


def test_transform_preserves_modexp_result():
    program = modexp_program(7, 0xBEEF, 40961)
    balanced, report = balance_branch_timing(program)
    assert report.transformed == 1
    assert report.added_instructions == 3  # j + 2-instruction clone
    registers, _ = _golden_state(balanced)
    assert registers[13] == modexp_reference(7, 0xBEEF, 40961)


def test_transform_closes_the_spa_channel():
    secret = 0xD00D
    program = modexp_program(7, secret, 40961)
    balanced, _ = balance_branch_timing(program)
    before, _ = run_program(program)
    after, _ = run_program(balanced)
    spa_before = recover_exponent(before, program)
    spa_after = recover_exponent(after, balanced)
    assert spa_before.exponent() == secret          # attack works...
    assert spa_after.exponent() != secret           # ...and is defeated
    assert duration_separation(spa_after.durations) < \
        duration_separation(spa_before.durations) - 3


def test_clone_discards_results():
    """The dummy path writes only x0: architectural state is identical
    whether the branch is taken or not (beyond the real semantics)."""
    source = """
    li t0, 0
    li t1, 7
    beqz t0, skip
    mul t1, t1, t1
    add t2, t1, t1
skip:
    ebreak
    """
    program = assemble(source)
    balanced, report = balance_branch_timing(program)
    assert report.transformed == 1
    base_regs, _ = _golden_state(program)
    balanced_regs, _ = _golden_state(balanced)
    assert base_regs == balanced_regs


@pytest.mark.parametrize("seed", range(8))
def test_random_programs_keep_semantics(seed):
    program = RandomProgramBuilder(seed=seed,
                                   include_memory=False).program(60)
    balanced, _ = balance_branch_timing(program)
    assert _golden_state(program)[0] == _golden_state(balanced)[0]


def test_memory_blocks_are_not_transformed():
    source = """
    li t0, 1
    li t1, 0x10000
    beqz t0, skip
    lw t2, 0(t1)
skip:
    ebreak
    """
    program = assemble(source)
    balanced, report = balance_branch_timing(program)
    assert report.transformed == 0  # loads cannot be cloned safely
    assert balanced.machine_code == program.machine_code


def test_indirect_jumps_rejected():
    program = assemble("la t0, end\njalr zero, 0(t0)\nend:\nebreak")
    with pytest.raises(MitigationError):
        balance_branch_timing(program)


def test_backward_branches_untouched():
    source = """
    li t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
    """
    program = assemble(source)
    balanced, report = balance_branch_timing(program)
    assert report.transformed == 0
    assert balanced.machine_code == program.machine_code


def test_symbols_relocated():
    program = modexp_program(7, 0xAB, 40961, bits=8)
    balanced, _ = balance_branch_timing(program)
    from repro.workloads import DONE_SYMBOL, LOOP_SYMBOL
    # the loop head is before the insertion: unchanged; the done label
    # sits after it: shifted by the inserted instructions
    assert balanced.symbols[LOOP_SYMBOL] == program.symbols[LOOP_SYMBOL]
    assert balanced.symbols[DONE_SYMBOL] == \
        program.symbols[DONE_SYMBOL] + 12
