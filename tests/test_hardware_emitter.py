"""Unit tests for the emission synthesis internals (repro.hardware.emitter)."""

import numpy as np
import pytest

from repro.hardware import DE0_CV, HardwareEmitter, ProbePosition
from repro.hardware.emitter import stage_couplings
from repro.isa import Instruction
from repro.uarch import run_program
from repro.workloads import nop_padded


@pytest.fixture(scope="module")
def trace():
    program = nop_padded([Instruction("mul", rd=5, rs1=8, rs2=9),
                          Instruction("lw", rd=6, rs1=3, imm=64)])
    result, _ = run_program(program)
    return result


@pytest.fixture(scope="module")
def emitter():
    return HardwareEmitter(DE0_CV.build_units())


def test_unit_amplitudes_shape_and_positivity(emitter, trace):
    amplitudes = emitter.unit_amplitudes(trace)
    assert amplitudes.shape == (trace.num_cycles, len(emitter.units))
    assert np.all(amplitudes >= 0)


def test_signal_is_superposition_of_units(emitter, trace):
    total = emitter.signal_on_grid(trace, 20)
    summed = np.zeros_like(total)
    for name, signal in emitter.per_unit_signals(trace, 20).items():
        summed += signal
    assert np.allclose(total, summed, atol=1e-9)


def test_stage_signals_partition_the_total(emitter, trace):
    total = emitter.signal_on_grid(trace, 20)
    by_stage = sum(emitter.stage_signal_on_grid(trace, stage, 20)
                   for stage in ("F", "D", "E", "M", "W"))
    assert np.allclose(total, by_stage, atol=1e-9)


def test_continuous_matches_grid_at_grid_points(emitter, trace):
    grid = emitter.signal_on_grid(trace, 20)
    continuous = emitter.continuous(trace)
    times = np.arange(len(grid)) / 20.0
    values = continuous(times)
    # continuous evaluation includes kernel tails past the truncated
    # support, so allow a small absolute tolerance
    assert np.allclose(values, grid, atol=5e-3)


def test_gain_scales_linearly(trace):
    units = DE0_CV.build_units()
    base = HardwareEmitter(units, gain=1.0).signal_on_grid(trace, 20)
    doubled = HardwareEmitter(units, gain=2.0).signal_on_grid(trace, 20)
    assert np.allclose(doubled, 2.0 * base)


def test_clock_scale_stretches_continuous_time(trace):
    units = DE0_CV.build_units()
    nominal = HardwareEmitter(units, clock_scale=1.0)
    slow = HardwareEmitter(units, clock_scale=1.01)
    times = np.linspace(0, trace.num_cycles - 1, 500)
    nominal_values = nominal.continuous(trace)(times)
    stretched = slow.continuous(trace)(times * 1.01)
    assert np.allclose(nominal_values, stretched, atol=1e-9)


def test_probe_position_changes_couplings(trace):
    units = DE0_CV.build_units()
    centered = HardwareEmitter(units)
    offset = HardwareEmitter(units, probe=ProbePosition(3.0, 1.0, 6.0))
    center_couplings = stage_couplings(units, centered.probe)
    offset_couplings = stage_couplings(units, offset.probe)
    assert all(offset_couplings[stage] < center_couplings[stage]
               for stage in offset_couplings)
    # and not uniformly: relative stage weights change with position
    ratios = [offset_couplings[stage] / center_couplings[stage]
              for stage in ("F", "D", "E", "M", "W")]
    assert max(ratios) - min(ratios) > 0.005


def test_mul_final_cycle_radiates_more_than_mid_stall(emitter, trace):
    mul_seq = next(index for index, occ
                   in enumerate(trace.occupancy["E"])
                   if occ.active and occ.instr is not None
                   and occ.instr.name == "mul")
    cycles = trace.cycles_of(
        next(entry.seq for entry in trace.retired
             if entry.instr.name == "mul"), "E")
    amplitudes = emitter.unit_amplitudes(trace)
    muldiv_column = [unit.name for unit in emitter.units] \
        .index("muldiv_unit")
    final = amplitudes[cycles[-1], muldiv_column]
    middle = amplitudes[cycles[1], muldiv_column]
    assert final > middle
