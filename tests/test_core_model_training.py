"""Integration tests: EMSim training and simulation quality.

These run the full train-then-simulate loop against the synthetic bench
and assert the paper's headline behaviours: high accuracy on held-out
programs, and strictly worse accuracy for every model ablation.
"""

import numpy as np
import pytest

from repro.core import (ABLATIONS, EMSim, EMSimConfig, Trainer,
                        coverage_groups, make_simulator, train_emsim)
from repro.hardware import HardwareDevice
from repro.signal import simulation_accuracy
from repro.workloads import checksum, dot_product, fibonacci


@pytest.fixture(scope="module")
def bench():
    device = HardwareDevice()
    model = train_emsim(device)
    simulator = EMSim(model, core_config=device.core_config)
    return device, model, simulator


def _accuracy(device, simulator, program):
    measured = device.capture_ideal(program)
    simulated = simulator.simulate(program)
    length = min(len(measured.signal), len(simulated.signal))
    return simulation_accuracy(simulated.signal[:length],
                               measured.signal[:length],
                               device.samples_per_cycle)


def test_training_produces_complete_model(bench):
    _, model, _ = bench
    classes = {cls for cls, _ in model.amplitudes}
    assert {"alu", "shift", "muldiv", "load", "load_cache", "load_mem",
            "store", "branch", "jump"} <= classes
    assert set(model.floors) == {"F", "D", "E", "M", "W"}
    assert set(model.miso) == {"F", "D", "E", "M", "W"}
    assert model.nop_level > 0
    assert model.trained_on == "de0-cv#0"


def test_stepwise_keeps_minority_of_bits(bench):
    """Paper: step-wise regression removed >65% of the transition bits."""
    _, model, _ = bench
    assert model.regression_activity.selected_fraction() < 0.35


def test_high_accuracy_on_held_out_code(bench):
    device, _, simulator = bench
    group = coverage_groups(group_size=128, seed=901, limit_groups=1)[0]
    assert _accuracy(device, simulator, group) > 0.90
    assert _accuracy(device, simulator, dot_product(8)) > 0.88
    assert _accuracy(device, simulator, fibonacci(8)) > 0.88
    assert _accuracy(device, simulator, checksum(16)) > 0.88


def test_simulated_cycle_count_matches_hardware(bench):
    device, _, simulator = bench
    program = dot_product(6)
    measured = device.capture_ideal(program)
    simulated = simulator.simulate(program)
    assert simulated.num_cycles == measured.num_cycles


def test_every_ablation_hurts(bench):
    device, model, simulator = bench
    group = coverage_groups(group_size=192, seed=902, limit_groups=1)[0]
    full = _accuracy(device, simulator, group)
    for ablation in ABLATIONS:
        if ablation == "full":
            continue
        variant = make_simulator(model, ablation,
                                 core_config=device.core_config)
        assert _accuracy(device, variant, group) < full, ablation


def test_event_ablations_hurt_most(bench):
    """Figs. 5-7: not modeling stalls/cache/mispredicts costs more than
    amplitude-model simplifications on event-heavy code."""
    device, model, simulator = bench
    group = coverage_groups(group_size=192, seed=903, limit_groups=1)[0]
    scores = {}
    for ablation in ("single-source", "avg-alpha", "no-cache",
                     "no-mispredict"):
        variant = make_simulator(model, ablation,
                                 core_config=device.core_config)
        scores[ablation] = _accuracy(device, variant, group)
    assert scores["no-cache"] < scores["single-source"]
    assert scores["no-mispredict"] < scores["avg-alpha"]


def test_unknown_ablation_rejected(bench):
    _, model, _ = bench
    with pytest.raises(ValueError):
        make_simulator(model, "no-physics")


def test_simulate_trace_reuses_existing_trace(bench):
    device, _, simulator = bench
    program = fibonacci(6)
    trace = simulator.run_trace(program)
    first = simulator.simulate_trace(trace)
    second = simulator.simulate(program)
    assert np.allclose(first.amplitudes, second.amplitudes)


def test_model_summary_and_table(bench):
    _, model, _ = bench
    summary = model.summary()
    assert "EMSimModel" in summary and "de0-cv#0" in summary
    table = model.amplitude_table()
    assert "muldiv" in table and "load_mem" in table


def test_trainer_scope_reference_capture():
    """Training through the noisy scope+modulo chain still yields a
    usable model (slower; uses reduced probe counts)."""
    device = HardwareDevice()
    trainer = Trainer(device=device, capture_method="reference",
                      repetitions=60, activity_probes_per_class=6,
                      miso_groups=1, miso_group_size=96,
                      fit_kernel_parameters=False)
    model = trainer.train()
    simulator = EMSim(model, core_config=device.core_config)
    accuracy = _accuracy(device, simulator, dot_product(6))
    assert accuracy > 0.8


def test_config_switch_helpers():
    config = EMSimConfig()
    ablated = config.with_switches(model_stalls=False)
    assert not ablated.switches.model_stalls
    assert config.switches.model_stalls
    assert "no-stall" in ablated.switches.describe()
    assert config.switches.describe() == "full"


def test_fast_and_legacy_fits_are_bit_identical():
    """The Gram/sweep + Lance-Williams + trace-cache fast path must
    reproduce the scalar reference model exactly (same features, same
    Table-I clusters, same coefficients)."""
    from repro.core.persistence import model_to_dict
    from repro.core.trace_cache import configure_trace_cache

    configure_trace_cache(clear=True)
    legacy = model_to_dict(Trainer(device=HardwareDevice(),
                                   activity_probes_per_class=2, seed=0,
                                   fast=False).train())
    configure_trace_cache(clear=True)
    cold = model_to_dict(Trainer(device=HardwareDevice(),
                                 activity_probes_per_class=2, seed=0,
                                 fast=True).train())
    warm = model_to_dict(Trainer(device=HardwareDevice(),
                                 activity_probes_per_class=2, seed=0,
                                 fast=True).train())
    assert legacy == cold == warm


def test_trainer_fit_is_an_alias_for_train():
    from repro.core.persistence import model_to_dict

    fitted = model_to_dict(Trainer(device=HardwareDevice(),
                                   activity_probes_per_class=2,
                                   seed=0).fit())
    trained = model_to_dict(Trainer(device=HardwareDevice(),
                                    activity_probes_per_class=2,
                                    seed=0).train())
    assert fitted == trained
