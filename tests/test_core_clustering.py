"""Tests for signature clustering (repro.core.clustering)."""

import numpy as np
import pytest

from repro.core.clustering import (agglomerative_cluster,
                                   cluster_instruction_signatures,
                                   signature_distance)


def _waves(seed=0):
    """Three families of signatures with within-family similarity."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, 120)
    families = {
        "sin": np.sin(t),
        "saw": (t % np.pi) / np.pi,
        "burst": np.exp(-t) * np.cos(5 * t),
    }
    signatures = {}
    for family, base in families.items():
        for index in range(4):
            signatures[f"{family}{index}"] = \
                base * rng.uniform(0.8, 1.2) + \
                rng.normal(0, 0.02, size=t.shape)
    return signatures


def test_signature_distance_properties():
    a = np.sin(np.linspace(0, 10, 100))
    assert signature_distance(a, a) == pytest.approx(0.0, abs=1e-12)
    assert signature_distance(a, 2 * a) == pytest.approx(0.0, abs=1e-12)
    assert signature_distance(a, -a) == pytest.approx(2.0)
    assert 0.0 <= signature_distance(a, np.cos(np.linspace(0, 10, 100))) \
        <= 2.0


def test_clusters_recover_families():
    result = agglomerative_cluster(_waves(), num_clusters=3)
    assert result.num_clusters == 3
    for family in ("sin", "saw", "burst"):
        labels = {result.labels[f"{family}{index}"] for index in range(4)}
        assert len(labels) == 1, f"family {family} split across clusters"


def test_members_and_table():
    result = agglomerative_cluster(_waves(), num_clusters=3)
    clusters = result.clusters()
    assert sum(len(group) for group in clusters) == 12
    table = result.table()
    assert "cluster" in table
    assert len(table.splitlines()) == 4


def test_distance_threshold_stops_merging():
    result = agglomerative_cluster(_waves(), num_clusters=1,
                                   distance_threshold=0.3)
    # merging across families costs ~1.0, so the threshold keeps 3
    assert result.num_clusters == 3


def test_single_item_and_empty():
    result = agglomerative_cluster({"only": np.ones(10)}, num_clusters=1)
    assert result.labels == {"only": 0}
    assert agglomerative_cluster({}, num_clusters=3).labels == {}


def test_merge_heights_monotone_enough():
    result = agglomerative_cluster(_waves(), num_clusters=1)
    heights = result.merge_heights
    # early merges (within family) far cheaper than final merges
    assert max(heights[:8]) < min(heights[-2:])


def test_instruction_signatures_alias():
    signatures = _waves()
    assert cluster_instruction_signatures(signatures, num_clusters=3) \
        .num_clusters == 3


# ---------------------------------------------------------------------------
# Lance-Williams engine vs the naive reference
# ---------------------------------------------------------------------------
def _random_signatures(seed, count=None, length=None):
    rng = np.random.default_rng(seed)
    count = count or int(rng.integers(4, 24))
    length = length or int(rng.integers(16, 64))
    signatures = {}
    for index in range(count):
        if index and seed % 3 == 0 and index % 5 == 0:
            # exact duplicate of an earlier signature: tie territory
            signatures[f"s{index:02d}"] = \
                signatures[f"s{index - 1:02d}"].copy()
        elif seed % 4 == 0 and index % 7 == 3:
            signatures[f"s{index:02d}"] = np.zeros(length)  # silent
        else:
            signatures[f"s{index:02d}"] = rng.normal(size=length)
    return signatures


@pytest.mark.parametrize("seed", range(12))
def test_lw_matches_naive_linkage(seed):
    from repro.core.clustering import signature_distance_matrix

    signatures = _random_signatures(seed)
    clusters = max(1, len(signatures) // 3)
    threshold = 0.9 if seed % 2 else None
    naive = agglomerative_cluster(signatures, num_clusters=clusters,
                                  distance_threshold=threshold,
                                  method="naive")
    fast = agglomerative_cluster(signatures, num_clusters=clusters,
                                 distance_threshold=threshold,
                                 method="lw")
    assert naive.labels == fast.labels
    assert np.allclose(naive.merge_heights, fast.merge_heights,
                       atol=1e-12)


def test_distance_matrix_matches_scalar_pairs():
    from repro.core.clustering import signature_distance_matrix

    signatures = _random_signatures(4, count=10, length=32)
    signatures["silent"] = np.zeros(32)
    names, matrix = signature_distance_matrix(signatures)
    assert list(names) == list(signatures)
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            expected = signature_distance(signatures[a], signatures[b])
            assert abs(matrix[i, j] - expected) < 1e-12
    assert np.array_equal(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0.0)


def test_distance_matrix_mixed_lengths_falls_back():
    from repro.core.clustering import signature_distance_matrix

    rng = np.random.default_rng(0)
    signatures = {"short": rng.normal(size=16),
                  "long": rng.normal(size=48),
                  "other": rng.normal(size=32)}
    names, matrix = signature_distance_matrix(signatures)
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            expected = signature_distance(signatures[a], signatures[b])
            assert abs(matrix[i, j] - expected) < 1e-12


def test_clustering_rejects_unknown_method():
    with pytest.raises(ValueError, match="method"):
        agglomerative_cluster(_waves(), num_clusters=2, method="ward")
