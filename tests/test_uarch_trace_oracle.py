"""Tests for the activity trace, event records, and oracle replay."""

import numpy as np
import pytest

from repro.isa import Instruction, NOP, assemble
from repro.uarch import (OCC_BUBBLE, OCC_INSTR, STAGES, GoldenSimulator,
                         OracleOutcomes, collect_oracle, concat_traces,
                         run_program, stage_bit_count)
from repro.uarch.trace import StageOccupancy
from repro.workloads import fibonacci, nop_padded


# ----------------------------------------------------------------------
# StageOccupancy
# ----------------------------------------------------------------------
def test_em_class_labels():
    assert StageOccupancy(OCC_BUBBLE).em_class() == "nop"
    assert StageOccupancy("stall", instr=NOP).em_class() == "stall"
    assert StageOccupancy(OCC_INSTR, instr=NOP).em_class() == "nop"
    add = Instruction("add", rd=1, rs1=2, rs2=3)
    assert StageOccupancy(OCC_INSTR, instr=add).em_class() == "alu"
    mul = Instruction("mul", rd=1, rs1=2, rs2=3)
    assert StageOccupancy(OCC_INSTR, instr=mul,
                          dyn="final").em_class() == "muldiv_final"
    load = Instruction("lw", rd=1, rs1=2)
    assert StageOccupancy(OCC_INSTR, instr=load).em_class() == "load"
    assert StageOccupancy(OCC_INSTR, instr=load,
                          dyn="hit").em_class() == "load_cache"
    assert StageOccupancy(OCC_INSTR, instr=load,
                          dyn="miss").em_class() == "load_mem"


def test_occupancy_labels():
    add = Instruction("add", rd=1, rs1=2, rs2=3)
    assert StageOccupancy(OCC_BUBBLE).label() == "bubble"
    assert StageOccupancy(OCC_INSTR, instr=add).label() == "add"
    assert StageOccupancy("stall", instr=add).label() == "add(stall)"
    load = Instruction("lw", rd=1, rs1=2)
    assert StageOccupancy(OCC_INSTR, instr=load,
                          dyn="miss").label() == "lw+miss"


# ----------------------------------------------------------------------
# trace matrices
# ----------------------------------------------------------------------
def test_transition_matrix_shapes_and_caching():
    trace, _ = run_program(fibonacci(5))
    for stage in STAGES:
        matrix = trace.transition_matrix(stage)
        assert matrix.shape == (trace.num_cycles, stage_bit_count(stage))
        assert matrix.dtype == np.uint8
        assert set(np.unique(matrix)) <= {0, 1}
        # cached: identical object on second call
        assert trace.transition_matrix(stage) is matrix


def test_flip_counts_match_transition_sum():
    trace, _ = run_program(fibonacci(5))
    for stage in STAGES:
        assert np.array_equal(trace.flip_counts(stage),
                              trace.transition_matrix(stage).sum(axis=1))


def test_first_cycle_transitions_vs_reset_state():
    trace, _ = run_program(nop_padded([], before=2, after=2))
    # cycle 0: the first fetch flips the F latches away from all-zero
    assert trace.flip_counts("F")[0] > 0
    # downstream stages start as bubbles over a zero state: near-silent
    assert trace.flip_counts("W")[0] <= 6


def test_concat_traces():
    first, _ = run_program(fibonacci(3))
    second, _ = run_program(fibonacci(4))
    merged = concat_traces([first, second])
    assert merged.num_cycles == first.num_cycles + second.num_cycles
    assert merged.instructions_retired == \
        first.instructions_retired + second.instructions_retired
    joined = np.concatenate([first.flip_counts("E"),
                             second.flip_counts("E")])
    assert np.array_equal(merged.flip_counts("E"), joined)


def test_cycles_of_covers_multicycle_occupancy():
    program = nop_padded([Instruction("mul", rd=5, rs1=8, rs2=9)])
    trace, _ = run_program(program)
    seq = next(index for index, instr in enumerate(program.instructions)
               if instr.name == "mul")
    assert len(trace.cycles_of(seq, "E")) == 3  # default mul latency


# ----------------------------------------------------------------------
# oracle replay
# ----------------------------------------------------------------------
def test_oracle_outcomes_fifo():
    outcomes = OracleOutcomes()
    outcomes.push(0x10, True, 0x40)
    outcomes.push(0x10, False, 0x14)
    assert len(outcomes) == 2
    assert outcomes.pop(0x10) == (True, 0x40)
    assert outcomes.pop(0x10) == (False, 0x14)
    assert outcomes.pop(0x10) is None
    assert outcomes.pop(0x999) is None


def test_collect_oracle_records_every_control_transfer():
    program = assemble("""
    li t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    j end
    nop
end:
    ebreak
    """)
    oracle = collect_oracle(program)
    golden = GoldenSimulator(program)
    golden.run()
    # 3 dynamic branches + 1 jump
    assert len(oracle) == 4


def test_oracle_replay_eliminates_flushes_but_not_correctness():
    program = fibonacci(9)
    oracle = collect_oracle(program)
    trace, core = run_program(program, oracle=oracle)
    assert trace.mispredictions == 0
    assert core.regfile.peek(10) == 34  # fib(9)
