"""Tests for model serialization (repro.core.persistence).

The paper envisions trained parameters shipped "as a library"; a model
must survive a save/load round trip bit-for-bit in its predictions.
"""

import numpy as np
import pytest

from repro.core import (EMSim, load_model, model_from_dict, model_to_dict,
                        save_model, train_emsim)
from repro.hardware import HardwareDevice
from repro.workloads import dot_product, fibonacci


@pytest.fixture(scope="module")
def trained():
    device = HardwareDevice()
    return device, train_emsim(device)


def test_round_trip_predictions_identical(trained, tmp_path):
    device, model = trained
    path = str(tmp_path / "model.json")
    save_model(model, path)
    restored = load_model(path)

    simulator = EMSim(model, core_config=device.core_config)
    restored_simulator = EMSim(restored,
                               core_config=device.core_config)
    for program in (dot_product(6), fibonacci(8)):
        original = simulator.simulate(program)
        loaded = restored_simulator.simulate(program)
        assert np.allclose(original.amplitudes, loaded.amplitudes)
        assert np.allclose(original.signal, loaded.signal)


def test_round_trip_preserves_parameters(trained):
    _, model = trained
    restored = model_from_dict(model_to_dict(model))
    assert restored.amplitudes == model.amplitudes
    assert restored.floors == model.floors
    assert restored.miso == model.miso
    assert restored.intercept == model.intercept
    assert restored.nop_level == model.nop_level
    assert restored.trained_on == model.trained_on
    assert restored.config.kernel == model.config.kernel
    for stage, linear in model.regression_activity.models.items():
        other = restored.regression_activity.models[stage]
        assert other.intercept == linear.intercept
        assert np.array_equal(other.coefficients, linear.coefficients)
        assert np.array_equal(other.features, linear.features)


def test_serialized_form_is_plain_json(trained, tmp_path):
    import json
    _, model = trained
    path = str(tmp_path / "model.json")
    save_model(model, path)
    with open(path) as handle:
        data = json.load(handle)
    assert data["format_version"] == 1
    assert data["trained_on"] == "de0-cv#0"
    assert isinstance(data["amplitudes"], list)


def test_unknown_format_rejected(trained):
    _, model = trained
    data = model_to_dict(model)
    data["format_version"] = 999
    with pytest.raises(ValueError):
        model_from_dict(data)
