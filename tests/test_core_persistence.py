"""Tests for model serialization (repro.core.persistence).

The paper envisions trained parameters shipped "as a library"; a model
must survive a save/load round trip bit-for-bit in its predictions.
"""

import numpy as np
import pytest

from repro.core import (EMSim, load_model, model_from_dict, model_to_dict,
                        save_model, train_emsim)
from repro.hardware import HardwareDevice
from repro.workloads import dot_product, fibonacci


@pytest.fixture(scope="module")
def trained():
    device = HardwareDevice()
    return device, train_emsim(device)


def test_round_trip_predictions_identical(trained, tmp_path):
    device, model = trained
    path = str(tmp_path / "model.json")
    save_model(model, path)
    restored = load_model(path)

    simulator = EMSim(model, core_config=device.core_config)
    restored_simulator = EMSim(restored,
                               core_config=device.core_config)
    for program in (dot_product(6), fibonacci(8)):
        original = simulator.simulate(program)
        loaded = restored_simulator.simulate(program)
        assert np.allclose(original.amplitudes, loaded.amplitudes)
        assert np.allclose(original.signal, loaded.signal)


def test_round_trip_preserves_parameters(trained):
    _, model = trained
    restored = model_from_dict(model_to_dict(model))
    assert restored.amplitudes == model.amplitudes
    assert restored.floors == model.floors
    assert restored.miso == model.miso
    assert restored.intercept == model.intercept
    assert restored.nop_level == model.nop_level
    assert restored.trained_on == model.trained_on
    assert restored.config.kernel == model.config.kernel
    for stage, linear in model.regression_activity.models.items():
        other = restored.regression_activity.models[stage]
        assert other.intercept == linear.intercept
        assert np.array_equal(other.coefficients, linear.coefficients)
        assert np.array_equal(other.features, linear.features)


def test_serialized_form_is_plain_json(trained, tmp_path):
    import json
    _, model = trained
    path = str(tmp_path / "model.json")
    save_model(model, path)
    with open(path) as handle:
        data = json.load(handle)
    assert data["format_version"] == 2
    assert data["trained_on"] == "de0-cv#0"
    assert isinstance(data["amplitudes"], list)


def test_unknown_format_rejected(trained):
    _, model = trained
    data = model_to_dict(model)
    data["format_version"] = 999
    with pytest.raises(ValueError):
        model_from_dict(data)


# ----------------------------------------------------------------------
# integrity + atomicity (format version 2)
# ----------------------------------------------------------------------

def test_checksum_round_trip(trained):
    """The serialized checksum verifies against the payload."""
    from repro.core.persistence import payload_checksum
    _, model = trained
    data = model_to_dict(model)
    assert data["checksum"] == payload_checksum(data)
    # and key ordering / whitespace doesn't matter
    import json
    reordered = json.loads(json.dumps(data, sort_keys=True, indent=4))
    assert payload_checksum(reordered) == data["checksum"]


def test_tampered_payload_rejected(trained):
    from repro.robustness import ModelFormatError
    _, model = trained
    data = model_to_dict(model)
    data["nop_level"] = float(data["nop_level"]) + 1e-6
    with pytest.raises(ModelFormatError, match="checksum"):
        model_from_dict(data)


def test_truncated_file_rejected(trained, tmp_path):
    from repro.robustness import ModelFormatError
    _, model = trained
    path = str(tmp_path / "model.json")
    save_model(model, path)
    raw = open(path).read()
    truncated = str(tmp_path / "truncated.json")
    with open(truncated, "w") as handle:
        handle.write(raw[:len(raw) // 2])
    with pytest.raises(ModelFormatError) as info:
        load_model(truncated)
    assert truncated in str(info.value)


def test_garbage_file_rejected(tmp_path):
    from repro.robustness import ModelFormatError
    for name, content in (("empty.json", ""),
                          ("garbage.json", "not json at all"),
                          ("wrong.json", "[1, 2, 3]")):
        path = str(tmp_path / name)
        with open(path, "w") as handle:
            handle.write(content)
        with pytest.raises(ModelFormatError):
            load_model(path)


def test_missing_file_rejected(tmp_path):
    from repro.robustness import ModelFormatError
    with pytest.raises(ModelFormatError, match="cannot read"):
        load_model(str(tmp_path / "does-not-exist.json"))


def test_missing_checksum_on_v2_rejected(trained):
    from repro.robustness import ModelFormatError
    _, model = trained
    data = model_to_dict(model)
    del data["checksum"]
    with pytest.raises(ModelFormatError, match="checksum"):
        model_from_dict(data)


def test_version1_without_checksum_accepted(trained):
    """Legacy v1 documents (no checksum field) still load."""
    _, model = trained
    data = model_to_dict(model)
    del data["checksum"]
    data["format_version"] = 1
    restored = model_from_dict(data)
    assert restored.intercept == model.intercept


def test_save_is_atomic_on_crash(trained, tmp_path, monkeypatch):
    """A crash mid-write must leave the previous file intact and no
    temporary droppings behind."""
    import json
    import os
    _, model = trained
    path = str(tmp_path / "model.json")
    save_model(model, path)
    before = open(path).read()

    real_dump = json.dump

    def exploding_dump(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(json, "dump", exploding_dump)
    with pytest.raises(OSError):
        save_model(model, path)
    monkeypatch.setattr(json, "dump", real_dump)

    assert open(path).read() == before          # old file untouched
    leftovers = [name for name in os.listdir(tmp_path)
                 if name != "model.json"]
    assert leftovers == []                      # temp file cleaned up
    load_model(path)                            # and still loadable
