"""Tests for TVLA and SAVAT (repro.leakage.tvla / savat)."""

import numpy as np
import pytest

from repro.leakage.savat import (SAVAT_INSTRUCTIONS, format_matrix,
                                 savat_program, savat_value)
from repro.leakage.tvla import (TVLAResult, collect_tvla_traces, tvla,
                                welch_t_statistic)
from repro.uarch import GoldenSimulator, run_program


# ----------------------------------------------------------------------
# Welch t / TVLA
# ----------------------------------------------------------------------
def test_welch_t_zero_for_identical_groups(rng):
    traces = rng.normal(0, 1, size=(20, 50))
    t_values = welch_t_statistic(traces, traces)
    assert np.allclose(t_values, 0.0)


def test_welch_t_detects_mean_shift(rng):
    group_a = rng.normal(0, 1, size=(200, 30))
    group_b = rng.normal(0, 1, size=(200, 30))
    group_b[:, 10] += 2.0
    t_values = welch_t_statistic(group_a, group_b)
    assert abs(t_values[10]) > 4.5
    assert np.abs(np.delete(t_values, 10)).max() < 4.5


def test_welch_t_matches_scipy(rng):
    from scipy import stats
    group_a = rng.normal(0, 1, size=(40, 8))
    group_b = rng.normal(0.3, 1.4, size=(55, 8))
    ours = welch_t_statistic(group_a, group_b)
    theirs = stats.ttest_ind(group_a, group_b, equal_var=False, axis=0)
    assert np.allclose(ours, theirs.statistic, atol=1e-9)


def test_welch_t_validation():
    with pytest.raises(ValueError):
        welch_t_statistic(np.ones((5, 3)), np.ones((5, 4)))
    with pytest.raises(ValueError):
        welch_t_statistic(np.ones((1, 3)), np.ones((5, 3)))


def test_welch_t_zero_variance_points():
    group_a = np.ones((5, 4))
    group_b = np.ones((5, 4))
    assert np.allclose(welch_t_statistic(group_a, group_b), 0.0)


def test_tvla_result_properties(rng):
    fixed = [rng.normal(0, 1, 100) for _ in range(30)]
    leaky = [rng.normal(0, 1, 100) for _ in range(30)]
    for trace in leaky:
        trace[40:45] += 3.0
    result = tvla(fixed, leaky)
    assert result.leaks
    assert result.max_abs_t > 4.5
    assert 0 < result.leaky_fraction < 1
    per_cycle = result.per_cycle_max(samples_per_cycle=10)
    assert per_cycle.argmax() == 4
    profile = result.phase_profile(samples_per_cycle=10, segments=5)
    assert len(profile) == 5
    assert max(profile) == profile[2]


def test_tvla_no_leak_for_identical_distributions(rng):
    fixed = [rng.normal(0, 1, 60) for _ in range(40)]
    rand = [rng.normal(0, 1, 60) for _ in range(40)]
    result = tvla(fixed, rand)
    assert result.max_abs_t < 6.0  # rarely flags; surely no huge t


def test_collect_tvla_traces_shapes(rng):
    def source(data):
        return np.asarray(data, dtype=float)

    fixed, random_traces = collect_tvla_traces(source, [1, 2, 3, 4],
                                               num_traces=5, rng=rng)
    assert len(fixed) == len(random_traces) == 5
    assert all(np.array_equal(trace, [1, 2, 3, 4]) for trace in fixed)
    assert not all(np.array_equal(random_traces[0], trace)
                   for trace in random_traces[1:])


# ----------------------------------------------------------------------
# SAVAT
# ----------------------------------------------------------------------
def test_savat_program_halts_for_all_pairs():
    for kind_a in SAVAT_INSTRUCTIONS:
        program = savat_program(kind_a, "NOP", repeats=3)
        golden = GoldenSimulator(program)
        golden.run(max_steps=200_000)
        assert golden.halted, kind_a


def test_savat_ldm_always_misses_ldc_always_hits():
    trace, _ = run_program(savat_program("LDM", "LDC", repeats=4))
    events = trace.cache_events
    assert events, "no cache activity recorded"
    # after the warming access, LDC hits and LDM misses
    ldm = [event for event in events if not event.hit]
    ldc = [event for event in events if event.hit]
    assert len(ldm) >= 4 and len(ldc) >= 4


def test_savat_value_zero_for_identical_halves(device):
    program = savat_program("NOP", "NOP", repeats=8)
    measurement = device.capture_ideal(program)
    value = savat_value(measurement.signal, device.samples_per_cycle,
                        measurement.num_cycles, repeats=8)
    program_ab = savat_program("MUL", "NOP", repeats=8)
    measurement_ab = device.capture_ideal(program_ab)
    value_ab = savat_value(measurement_ab.signal,
                           device.samples_per_cycle,
                           measurement_ab.num_cycles, repeats=8)
    assert value_ab > 10 * max(value, 1e-9)


def test_format_matrix_layout():
    matrix = {(a, b): 1.0 for a in SAVAT_INSTRUCTIONS
              for b in SAVAT_INSTRUCTIONS}
    text = format_matrix(matrix)
    lines = text.splitlines()
    assert len(lines) == 7
    assert "LDM" in lines[0] and lines[1].startswith("LDM")


def test_unknown_savat_instruction_rejected():
    with pytest.raises(ValueError):
        savat_program("FMA", "NOP")
