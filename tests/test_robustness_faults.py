"""Tests for fault injection and health gating (repro.robustness).

Everything here is seeded: the same plan + seed must produce the same
fault stream, the same corrupted samples, and the same screening
decisions run after run.
"""

import numpy as np
import pytest

from repro.hardware import HardwareDevice
from repro.robustness import (AcquisitionError, CaptureQualityError,
                              FAULT_KINDS, FaultInjector, FaultPlan,
                              HealthPolicy, assess_capture, clipping_ratio,
                              screen_repetitions)
from repro.signal.acquisition import Oscilloscope, ScopeConfig


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------

def test_default_plan_is_clean():
    plan = FaultPlan()
    assert not plan.any_active
    injector = FaultInjector(plan)
    times = np.arange(100.0)
    samples = np.ones(100)
    injector.begin_capture()          # never raises on a clean plan
    out_t, out_s = injector.corrupt(times, samples)
    assert np.array_equal(out_t, times)
    assert np.array_equal(out_s, samples)
    assert injector.total_faults() == 0


def test_preset_scales_with_rate():
    plan = FaultPlan.preset(0.2, seed=5)
    assert plan.any_active
    assert plan.trigger_loss_prob == pytest.approx(0.2)
    assert plan.brownout_prob == pytest.approx(0.02)
    assert plan.jitter_spike_prob == pytest.approx(0.1)
    assert "trigger_loss_prob" in plan.describe()
    with pytest.raises(ValueError):
        FaultPlan.preset(1.5)


def test_fault_stream_is_deterministic():
    def run():
        injector = FaultInjector(FaultPlan.preset(0.3, seed=42))
        kills = 0
        collected = []
        rng = np.random.default_rng(0)
        for _ in range(50):
            try:
                injector.begin_capture()
            except AcquisitionError:
                kills += 1
                continue
            times = np.arange(200.0)
            samples = rng.normal(0, 1, 200)
            out_t, out_s = injector.corrupt(times, samples)
            collected.append((out_t.copy(), out_s.copy()))
        return kills, collected, dict(injector.counters)

    kills_a, captures_a, counters_a = run()
    kills_b, captures_b, counters_b = run()
    assert kills_a == kills_b
    assert counters_a == counters_b
    assert len(captures_a) == len(captures_b)
    for (ta, sa), (tb, sb) in zip(captures_a, captures_b):
        assert np.array_equal(ta, tb)
        assert np.array_equal(sa, sb)


def test_all_fault_kinds_fire_at_high_rate():
    injector = FaultInjector(FaultPlan.preset(0.9, seed=7))
    rng = np.random.default_rng(1)
    for _ in range(300):
        try:
            injector.begin_capture()
        except AcquisitionError:
            continue
        injector.corrupt(np.arange(100.0), rng.normal(0, 1, 100))
    for kind in FAULT_KINDS:
        assert injector.counters[kind] > 0, f"{kind} never fired"


def test_brownout_kills_consecutive_captures():
    plan = FaultPlan(brownout_prob=1.0, brownout_captures=3, seed=0)
    injector = FaultInjector(plan)
    for _ in range(3):
        with pytest.raises(AcquisitionError, match="brown-out"):
            injector.begin_capture()
    assert injector.counters["brownout"] == 3


def test_drop_shortens_arrays():
    plan = FaultPlan(drop_rate=0.5, seed=3)
    injector = FaultInjector(plan)
    times, samples = injector.corrupt(np.arange(1000.0), np.ones(1000))
    assert len(times) == len(samples)
    assert 300 < len(samples) < 700


def test_saturation_rails_the_adc():
    plan = FaultPlan(saturation_prob=1.0, saturation_gain=50.0, seed=0)
    config = ScopeConfig()
    scope = Oscilloscope(config, np.random.default_rng(0),
                         injector=FaultInjector(plan))
    times, samples = scope.capture(lambda t: np.sin(t), 20.0)
    ratio = clipping_ratio(samples, config.adc_range, config.adc_bits)
    assert ratio > 0.5


# ----------------------------------------------------------------------
# scope integration
# ----------------------------------------------------------------------

def test_trigger_loss_raises_from_capture():
    plan = FaultPlan(trigger_loss_prob=1.0, seed=0)
    scope = Oscilloscope(ScopeConfig(), np.random.default_rng(0),
                         injector=FaultInjector(plan))
    with pytest.raises(AcquisitionError, match="trigger"):
        scope.capture(lambda t: np.zeros_like(t), 10.0)


def test_repetition_list_tallies_losses_without_raising():
    plan = FaultPlan(trigger_loss_prob=0.5, seed=11)
    scope = Oscilloscope(ScopeConfig(), np.random.default_rng(0),
                         injector=FaultInjector(plan))
    times_list, samples_list = scope.capture_repetition_list(
        lambda t: np.sin(t), 10.0, 40)
    stats = scope.last_repetition_stats
    assert stats.requested == 40
    assert stats.lost == 40 - len(samples_list)
    assert 0 < stats.lost < 40


def test_repetition_run_fails_when_mostly_lost():
    plan = FaultPlan(trigger_loss_prob=0.95, seed=2)
    scope = Oscilloscope(ScopeConfig(), np.random.default_rng(0),
                         injector=FaultInjector(plan))
    with pytest.raises(AcquisitionError, match="lost"):
        scope.capture_repetitions(lambda t: np.sin(t), 10.0, 40)


# ----------------------------------------------------------------------
# health metrics + screening
# ----------------------------------------------------------------------

def _clean_repetitions(count=12, cycles=30, seed=0):
    """Synthesize a repetition stream the screen should fully accept."""
    config = ScopeConfig()
    scope = Oscilloscope(config, np.random.default_rng(seed))
    signal = lambda t: np.sin(2 * np.pi * t) + 0.3 * np.sin(4 * np.pi * t)
    return scope.capture_repetition_list(signal, float(cycles), count), \
        float(cycles), cycles * 20, config


def test_clean_repetitions_all_pass_screen():
    (times_list, samples_list), period, bins, config = _clean_repetitions()
    screen = screen_repetitions(times_list, samples_list, period=period,
                                num_bins=bins,
                                adc_range=config.adc_range,
                                adc_bits=config.adc_bits)
    assert screen.keep.all()
    assert screen.rejected == 0


def test_screen_rejects_saturated_repetition():
    (times_list, samples_list), period, bins, config = _clean_repetitions()
    samples_list[4] = samples_list[4] * 40.0     # gain surge
    screen = screen_repetitions(times_list, samples_list, period=period,
                                num_bins=bins,
                                adc_range=config.adc_range,
                                adc_bits=config.adc_bits)
    assert not screen.keep[4]
    assert screen.keep.sum() == len(samples_list) - 1
    assert any("rep 4" in reason for reason in screen.reasons)


def test_screen_rejects_misaligned_repetition():
    (times_list, samples_list), period, bins, config = _clean_repetitions()
    times_list[7] = times_list[7] + 0.37          # clock-jitter walk
    screen = screen_repetitions(times_list, samples_list, period=period,
                                num_bins=bins,
                                adc_range=config.adc_range,
                                adc_bits=config.adc_bits)
    assert not screen.keep[7]


def test_assess_capture_scores_clean_stream_as_healthy():
    (times_list, samples_list), period, bins, config = _clean_repetitions()
    quality = assess_capture(np.concatenate(samples_list),
                             np.concatenate(times_list),
                             period=period, num_bins=bins,
                             adc_range=config.adc_range,
                             adc_bits=config.adc_bits,
                             total_repetitions=len(samples_list))
    assert quality.clipping_ratio < 0.01
    assert quality.snr_db > 10.0
    assert quality.alignment_residual < 0.2
    assert HealthPolicy().violations(quality) == []


def test_health_policy_flags_violations():
    quality = assess_capture(np.array([]), np.array([]), period=1.0,
                             num_bins=10, adc_range=4.0, adc_bits=10)
    policy = HealthPolicy()
    violations = policy.violations(quality)
    assert violations
    with pytest.raises(CaptureQualityError) as info:
        policy.check(quality, context="probe_x")
    assert "probe_x" in str(info.value)
    assert info.value.violations == violations


# ----------------------------------------------------------------------
# device integration
# ----------------------------------------------------------------------

def test_device_reference_capture_attaches_quality():
    from repro.core import coverage_groups
    device = HardwareDevice(seed=4)
    group = coverage_groups(group_size=32, seed=9, limit_groups=1)[0]
    measurement = device.capture_reference(group, repetitions=10)
    quality = measurement.quality
    assert quality is not None
    assert quality.total_repetitions == 10
    assert quality.lost_repetitions == 0
    assert HealthPolicy().violations(quality) == []
    # the ideal path stays exact: no quality to gate
    assert device.capture_ideal(group).quality is None


def test_device_with_faults_reports_degraded_capture():
    from repro.core import coverage_groups
    plan = FaultPlan(trigger_loss_prob=0.4, seed=21)
    device = HardwareDevice(seed=4, fault_plan=plan)
    group = coverage_groups(group_size=32, seed=9, limit_groups=1)[0]
    measurement = device.capture_reference(group, repetitions=16)
    assert measurement.quality.lost_repetitions > 0
    assert measurement.quality.clean_repetitions < 16
