"""Tests for register naming (repro.isa.registers)."""

import pytest

from repro.isa.registers import (ABI_NAMES, NUM_REGISTERS, register_index,
                                 register_name)


def test_abi_names_count():
    assert len(ABI_NAMES) == NUM_REGISTERS == 32


def test_x_names_round_trip():
    for index in range(32):
        assert register_index(f"x{index}") == index


def test_abi_names_round_trip():
    for index, name in enumerate(ABI_NAMES):
        assert register_index(name) == index
        assert register_name(index) == name


def test_fp_aliases_s0():
    assert register_index("fp") == register_index("s0") == 8


def test_case_insensitive_and_whitespace():
    assert register_index(" T0 ") == 5
    assert register_index("A0") == 10


def test_known_registers():
    assert register_index("zero") == 0
    assert register_index("ra") == 1
    assert register_index("sp") == 2
    assert register_index("gp") == 3
    assert register_index("t6") == 31


def test_unknown_register_raises():
    with pytest.raises(ValueError):
        register_index("x32")
    with pytest.raises(ValueError):
        register_index("r5")


def test_register_name_range_check():
    with pytest.raises(ValueError):
        register_name(-1)
    with pytest.raises(ValueError):
        register_name(32)
