"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "model.json")
    assert main(["train", "--out", path, "--probes", "8"]) == 0
    return path


def test_train_writes_valid_model(model_path):
    with open(model_path) as handle:
        data = json.load(handle)
    assert data["format_version"] == 2
    assert data["trained_on"].startswith("de0-cv")


def test_simulate_program(model_path, tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("li t0, 3\nmul t1, t0, t0\nebreak\n")
    csv_path = tmp_path / "out.csv"
    assert main(["simulate", "--model", model_path, str(source),
                 "--csv", str(csv_path)]) == 0
    output = capsys.readouterr().out
    assert "instructions" in output
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "cycle,execute_stage,amplitude"
    assert len(lines) > 5


def test_savat_command(model_path, capsys):
    assert main(["savat", "--model", model_path,
                 "--pairs", "ADD/NOP,NOP/NOP"]) == 0
    output = capsys.readouterr().out
    assert "SAVAT ADD/NOP" in output
    assert "SAVAT NOP/NOP" in output


def test_balance_command(tmp_path, capsys):
    source = tmp_path / "leaky.s"
    source.write_text("""
    li t0, 5
    li t1, 3
    beqz t1, skip
    mul t2, t0, t1
skip:
    ebreak
""")
    out = tmp_path / "balanced.s"
    assert main(["balance", str(source), "--out", str(out)]) == 0
    text = out.read_text()
    assert "mul zero" in text  # the dummy clone
    # the balanced file is itself valid assembly
    from repro.isa import assemble
    assemble(text)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bad_board_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["train", "--out", str(tmp_path / "m.json"),
              "--board", "nexys"])


def test_corrupt_model_exit_code(tmp_path, capsys):
    """A corrupt model file exits with the ModelFormatError code (14)
    and a one-line message, not a traceback."""
    from repro.robustness import ModelFormatError
    bad = tmp_path / "bad.json"
    bad.write_text("{ this is not json")
    assert main(["savat", "--model", str(bad)]) == \
        ModelFormatError("x", path="y").exit_code
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert str(bad) in err


def test_tampered_model_exit_code(model_path, tmp_path, capsys):
    data = json.loads(open(model_path).read())
    data["intercept"] = float(data["intercept"]) + 0.5
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(data))
    assert main(["savat", "--model", str(tampered)]) == 14
    assert "checksum" in capsys.readouterr().err
