"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "model.json")
    assert main(["train", "--out", path, "--probes", "8"]) == 0
    return path


def test_train_writes_valid_model(model_path):
    with open(model_path) as handle:
        data = json.load(handle)
    assert data["format_version"] == 2
    assert data["trained_on"].startswith("de0-cv")


def test_simulate_program(model_path, tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text("li t0, 3\nmul t1, t0, t0\nebreak\n")
    csv_path = tmp_path / "out.csv"
    assert main(["simulate", "--model", model_path, str(source),
                 "--csv", str(csv_path)]) == 0
    output = capsys.readouterr().out
    assert "instructions" in output
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "cycle,execute_stage,amplitude"
    assert len(lines) > 5


def test_savat_command(model_path, capsys):
    assert main(["savat", "--model", model_path,
                 "--pairs", "ADD/NOP,NOP/NOP"]) == 0
    output = capsys.readouterr().out
    assert "SAVAT ADD/NOP" in output
    assert "SAVAT NOP/NOP" in output


def test_balance_command(tmp_path, capsys):
    source = tmp_path / "leaky.s"
    source.write_text("""
    li t0, 5
    li t1, 3
    beqz t1, skip
    mul t2, t0, t1
skip:
    ebreak
""")
    out = tmp_path / "balanced.s"
    assert main(["balance", str(source), "--out", str(out)]) == 0
    text = out.read_text()
    assert "mul zero" in text  # the dummy clone
    # the balanced file is itself valid assembly
    from repro.isa import assemble
    assemble(text)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bad_board_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["train", "--out", str(tmp_path / "m.json"),
              "--board", "nexys"])


def test_corrupt_model_exit_code(tmp_path, capsys):
    """A corrupt model file exits with the ModelFormatError code (14)
    and a one-line message, not a traceback."""
    from repro.robustness import ModelFormatError
    bad = tmp_path / "bad.json"
    bad.write_text("{ this is not json")
    assert main(["savat", "--model", str(bad)]) == \
        ModelFormatError("x", path="y").exit_code
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert str(bad) in err


def test_tampered_model_exit_code(model_path, tmp_path, capsys):
    data = json.loads(open(model_path).read())
    data["intercept"] = float(data["intercept"]) + 0.5
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(data))
    assert main(["savat", "--model", str(tampered)]) == 14
    assert "checksum" in capsys.readouterr().err


def test_non_numeric_workers_exit_code(tmp_path, capsys):
    """``--workers fast`` exits with the ConfigurationError code (16)
    and names the offending value — not argparse's usage error (2)."""
    from repro.robustness import ConfigurationError
    assert main(["bench", "--workers", "fast", "--programs", "2"]) == \
        ConfigurationError("x").exit_code
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "'fast'" in err


def test_non_numeric_workers_all_commands(model_path, tmp_path, capsys):
    """Every --workers-bearing subcommand validates through
    resolve_workers (exit 16), before doing any campaign work."""
    commands = [
        ["train", "--out", str(tmp_path / "m.json"), "--workers", "soon"],
        ["accuracy", "--model", model_path, "--workers", "many"],
        ["savat", "--model", model_path, "--workers", "½"],
    ]
    for argv in commands:
        assert main(argv) == 16, argv
        assert "worker count" in capsys.readouterr().err


def test_workers_auto_accepted(model_path, capsys):
    """``--workers auto`` still resolves (satellite regression guard)."""
    assert main(["savat", "--model", model_path,
                 "--pairs", "NOP/NOP", "--workers", "auto"]) == 0
    assert "SAVAT NOP/NOP" in capsys.readouterr().out


def test_train_checkpoint_resume_identical_model(tmp_path):
    """CLI train with --checkpoint-dir then --resume yields the same
    model bytes as a plain run."""
    plain = tmp_path / "plain.json"
    assert main(["train", "--out", str(plain), "--probes", "4"]) == 0
    ckpt_dir = str(tmp_path / "ckpt")
    first = tmp_path / "first.json"
    assert main(["train", "--out", str(first), "--probes", "4",
                 "--checkpoint-dir", ckpt_dir]) == 0
    resumed = tmp_path / "resumed.json"
    assert main(["train", "--out", str(resumed), "--probes", "4",
                 "--checkpoint-dir", ckpt_dir, "--resume"]) == 0
    assert first.read_text() == resumed.read_text()
