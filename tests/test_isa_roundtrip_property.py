"""Property-based round trips: Instruction -> asm text -> assembler.

Complements the encode/decode property tests: any instruction the
generators can build must survive rendering to assembly text and
re-assembly bit-for-bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, assemble
from repro.isa.spec import ALL_MNEMONICS, OPCODES, InstrFormat

_REG = st.integers(0, 31)


@st.composite
def renderable_instructions(draw):
    name = draw(st.sampled_from(ALL_MNEMONICS))
    spec = OPCODES[name]
    if name in ("ecall", "ebreak", "fence"):
        return Instruction(name)
    if name in ("slli", "srli", "srai"):
        return Instruction(name, rd=draw(_REG), rs1=draw(_REG),
                           imm=draw(st.integers(0, 31)))
    if spec.fmt is InstrFormat.R:
        return Instruction(name, rd=draw(_REG), rs1=draw(_REG),
                           rs2=draw(_REG))
    if spec.fmt is InstrFormat.I:
        return Instruction(name, rd=draw(_REG), rs1=draw(_REG),
                           imm=draw(st.integers(-2048, 2047)))
    if spec.fmt is InstrFormat.S:
        return Instruction(name, rs1=draw(_REG), rs2=draw(_REG),
                           imm=draw(st.integers(-2048, 2047)))
    if spec.fmt is InstrFormat.B:
        # bare integer branch targets are pc-relative offsets
        return Instruction(name, rs1=draw(_REG), rs2=draw(_REG),
                           imm=draw(st.integers(-2000, 2000)) * 2)
    if spec.fmt is InstrFormat.U:
        return Instruction(name, rd=draw(_REG),
                           imm=draw(st.integers(0, (1 << 20) - 1)))
    return Instruction(name, rd=draw(_REG),
                       imm=draw(st.integers(-2000, 2000)) * 2)  # J


@given(renderable_instructions())
@settings(max_examples=300, deadline=None)
def test_single_instruction_round_trip(instr):
    program = assemble(instr.to_asm())
    assert program.instructions[0].encode() == instr.encode()


@given(st.lists(renderable_instructions(), min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_program_round_trip(instructions):
    source = "\n".join(instr.to_asm() for instr in instructions)
    program = assemble(source)
    assert [i.encode() for i in program.instructions] == \
        [i.encode() for i in instructions]
    again = assemble(program.to_asm())
    assert again.machine_code == program.machine_code
