"""Tests for the modulo operation, scope model and filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robustness import AcquisitionError
from repro.signal import (DampedSineKernel, Oscilloscope, ScopeConfig,
                          fold_repetitions, gaussian_smooth,
                          modular_offsets, modulo_average, moving_average,
                          reconstruct, reconstruct_at,
                          simulation_accuracy)

KERNEL = DampedSineKernel()
SPC = 20


def test_modular_offsets_eq1():
    times = np.array([0.0, 1.5, 10.0, 10.25])
    offsets = modular_offsets(times, period=10.0)
    assert np.allclose(offsets, [0.0, 1.5, 0.0, 0.25])


def test_modulo_average_folds_periodic_signal():
    period, bins = 8.0, 64
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, 20 * period, 40000))
    clean = np.sin(2 * np.pi * times / period)
    noisy = clean + rng.normal(0, 0.3, size=times.shape)
    reference, counts = modulo_average(noisy, times, period, bins)
    grid = (np.arange(bins) / bins) * period
    expected = np.sin(2 * np.pi * grid / period)
    assert counts.sum() == len(times)
    assert np.max(np.abs(reference - expected)) < 0.1


def test_modulo_average_interpolates_empty_bins():
    # integer sampling: only a few distinct offsets land in bins
    times = np.arange(0, 400, 1.0)
    samples = np.cos(2 * np.pi * times / 4.0)
    reference, counts = modulo_average(samples, times, period=4.0,
                                       num_bins=32)
    assert (counts == 0).any()
    assert np.isfinite(reference).all()


def test_modulo_average_requires_samples():
    with pytest.raises(AcquisitionError):
        modulo_average(np.array([]), np.array([]), 4.0, 8)


def test_scope_capture_shapes_and_quantization():
    scope = Oscilloscope(ScopeConfig(samples_per_cycle=8.0,
                                     noise_rms=0.0, adc_bits=6,
                                     trigger_jitter_cycles=0.0),
                         np.random.default_rng(0))
    times, samples = scope.capture(lambda t: np.sin(t), 10.0)
    assert len(times) == len(samples) == int(10 * 8.0 * (1 + 1.37e-3))
    step = 4.0 / 2 ** 6
    assert np.allclose(np.round(samples / step), samples / step)


def test_scope_noise_statistics():
    scope = Oscilloscope(ScopeConfig(samples_per_cycle=50.0,
                                     noise_rms=0.1, adc_bits=14),
                         np.random.default_rng(1))
    _, samples = scope.capture(lambda t: np.zeros_like(t), 200.0)
    assert 0.08 < samples.std() < 0.12


def test_full_capture_chain_recovers_reference(rng):
    amplitudes = rng.uniform(0.2, 1.5, 30)
    ideal = reconstruct(amplitudes, KERNEL, SPC)
    scope = Oscilloscope(ScopeConfig(samples_per_cycle=7.0,
                                     noise_rms=0.05),
                         np.random.default_rng(2))
    times, samples = scope.capture_repetitions(
        lambda t: reconstruct_at(amplitudes, KERNEL, t), 30.0, 300)
    reference = fold_repetitions(samples, times, clock_period=1.0,
                                 num_cycles=30, samples_per_cycle=SPC)
    assert simulation_accuracy(ideal, reference, SPC) > 0.95


def test_moving_average_preserves_mean():
    signal = np.arange(100, dtype=float)
    smoothed = moving_average(signal, 5)
    assert abs(smoothed.mean() - signal.mean()) < 0.5
    assert len(smoothed) == len(signal)


def test_moving_average_rejects_bad_window():
    with pytest.raises(ValueError):
        moving_average(np.ones(10), 0)


def test_gaussian_smooth_reduces_noise_keeps_dc():
    rng = np.random.default_rng(3)
    signal = 1.0 + rng.normal(0, 0.5, 500)
    smoothed = gaussian_smooth(signal, sigma=4.0)
    assert smoothed.std() < signal.std() / 2
    assert abs(smoothed.mean() - 1.0) < 0.1
    assert len(smoothed) == len(signal)


def test_gaussian_smooth_rejects_bad_sigma():
    with pytest.raises(ValueError):
        gaussian_smooth(np.ones(10), 0.0)


@given(st.floats(2.0, 50.0), st.integers(8, 128))
@settings(max_examples=30, deadline=None)
def test_modulo_offsets_within_period(period, bins):
    times = np.linspace(0, 1000, 777)
    offsets = modular_offsets(times, period)
    assert np.all(offsets >= 0)
    assert np.all(offsets < period)
