"""Tests for the Instruction value object (repro.isa.instructions)."""

import pytest

from repro.isa import NOP, Instruction
from repro.isa.spec import ALL_MNEMONICS, InstrClass


def test_nop_identity():
    assert NOP.is_nop
    assert NOP.name == "addi"
    assert NOP.encode() == 0x00000013
    assert not Instruction("addi", rd=1, rs1=0, imm=0).is_nop
    assert not Instruction("addi", rd=0, rs1=0, imm=4).is_nop


def test_unknown_mnemonic_rejected():
    with pytest.raises(ValueError):
        Instruction("madd", rd=1)


def test_class_predicates():
    assert Instruction("lw", rd=1, rs1=2).is_load
    assert Instruction("sw", rs1=1, rs2=2).is_store
    assert Instruction("beq", rs1=1, rs2=2, imm=8).is_branch
    assert Instruction("jal", rd=1, imm=8).is_jump
    assert Instruction("jalr", rd=1, rs1=2).is_jump
    assert Instruction("mul", rd=1, rs1=2, rs2=3).is_muldiv
    assert Instruction("beq", rs1=1, rs2=2, imm=8).is_control_flow
    assert not Instruction("add", rd=1, rs1=2, rs2=3).is_control_flow


def test_source_registers_by_format():
    assert Instruction("add", rd=1, rs1=2, rs2=3).source_registers == (2, 3)
    assert Instruction("addi", rd=1, rs1=2, imm=5).source_registers == (2,)
    assert Instruction("sw", rs1=4, rs2=5).source_registers == (4, 5)
    assert Instruction("beq", rs1=6, rs2=7, imm=8).source_registers == (6, 7)
    assert Instruction("lui", rd=1, imm=1).source_registers == ()
    assert Instruction("jal", rd=1, imm=8).source_registers == ()
    assert Instruction("jalr", rd=1, rs1=2).source_registers == (2,)
    assert Instruction("ecall").source_registers == ()


def test_destination_register():
    assert Instruction("add", rd=5, rs1=1, rs2=2).destination_register == 5
    # x0 destination reported as None (write dropped)
    assert Instruction("add", rd=0, rs1=1, rs2=2).destination_register \
        is None
    assert Instruction("sw", rs1=1, rs2=2).destination_register is None
    assert Instruction("beq", rs1=1, rs2=2, imm=8).destination_register \
        is None
    assert Instruction("fence").destination_register is None


def test_to_asm_round_trips_through_assembler():
    from repro.isa import assemble
    samples = [
        Instruction("add", rd=1, rs1=2, rs2=3),
        Instruction("addi", rd=1, rs1=2, imm=-7),
        Instruction("slli", rd=4, rs1=5, imm=12),
        Instruction("lw", rd=6, rs1=7, imm=16),
        Instruction("sw", rs1=8, rs2=9, imm=-4),
        Instruction("lui", rd=10, imm=0xABCDE),
        Instruction("mul", rd=11, rs1=12, rs2=13),
        Instruction("jalr", rd=1, rs1=2, imm=8),
        Instruction("ecall"),
    ]
    source = "\n".join(instr.to_asm() for instr in samples)
    program = assemble(source)
    assert program.instructions == samples


def _sample_instruction(name):
    if name in ("ecall", "ebreak", "fence"):
        return Instruction(name)
    if name in ("slli", "srli", "srai"):
        return Instruction(name, rd=1, rs1=2, imm=3)
    probe = Instruction(name, rd=1, rs1=2, rs2=3)
    if probe.is_branch:
        return Instruction(name, rs1=2, rs2=3, imm=8)
    if probe.fmt.value == "J":
        return Instruction(name, rd=1, imm=8)
    return probe


def test_decode_every_mnemonic():
    for name in ALL_MNEMONICS:
        instr = _sample_instruction(name)
        assert Instruction.decode(instr.encode()).name == name


def test_instruction_classes_cover_table_one():
    """The static classes match the paper's Table I family sizes."""
    by_class = {}
    for name in ALL_MNEMONICS:
        cls = Instruction(name, rs1=1, rs2=2, imm=8
                          if name in ("beq", "bne", "blt", "bge", "bltu",
                                      "bgeu", "jal") else 0).cls
        by_class.setdefault(cls, []).append(name)
    assert len(by_class[InstrClass.MULDIV]) == 8    # Table I row 3
    assert len(by_class[InstrClass.LOAD]) == 5      # Table I rows 4/6
    assert len(by_class[InstrClass.STORE]) == 3     # Table I row 5
    assert len(by_class[InstrClass.BRANCH]) == 6    # Table I row 7
