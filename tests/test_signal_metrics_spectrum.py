"""Tests for accuracy metrics and spectral utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal import (DampedSineKernel, amplitude_correlation,
                          cross_correlation, normalize_energy,
                          normalized_rmse, per_cycle_correlations,
                          per_cycle_similarities, power_spectrum,
                          reconstruct, rms_error, simulation_accuracy,
                          spike_energy)

SPC = 20
KERNEL = DampedSineKernel()


def test_identical_signals_score_one():
    rng = np.random.default_rng(0)
    signal = reconstruct(rng.uniform(0, 2, 25), KERNEL, SPC)
    assert simulation_accuracy(signal, signal, SPC) == pytest.approx(1.0)
    assert cross_correlation(signal, signal) == pytest.approx(1.0)


def test_scaled_signal_still_perfect_after_normalization():
    rng = np.random.default_rng(1)
    signal = reconstruct(rng.uniform(0, 2, 25), KERNEL, SPC)
    assert simulation_accuracy(signal, 3.0 * signal, SPC) == \
        pytest.approx(1.0)


def test_amplitude_mismatch_penalized():
    """The headline metric must punish per-cycle amplitude errors even
    when the waveform shape is identical (paper Figs. 2/3/5/6)."""
    rng = np.random.default_rng(2)
    amplitudes = rng.uniform(0.5, 2.0, 30)
    wrong = amplitudes.copy()
    wrong[::2] *= 3.0  # distort half the cycles
    good = reconstruct(amplitudes, KERNEL, SPC)
    bad = reconstruct(wrong, KERNEL, SPC)
    accuracy = simulation_accuracy(bad, good, SPC)
    assert accuracy < 0.9
    # shape-only correlation barely notices
    shape_only = np.clip(per_cycle_correlations(bad, good, SPC), 0,
                         1).mean()
    assert shape_only > accuracy


def test_silent_cycles_count_as_match():
    silent = np.zeros(5 * SPC)
    scores = per_cycle_similarities(silent, silent, SPC)
    assert np.all(scores == 1.0)


def test_anti_phase_clipped_to_zero():
    rng = np.random.default_rng(3)
    signal = reconstruct(rng.uniform(0.5, 2, 20), KERNEL, SPC)
    assert simulation_accuracy(signal, -signal, SPC) == 0.0


def test_cross_correlation_range_and_errors():
    a = np.sin(np.linspace(0, 10, 100))
    b = np.cos(np.linspace(0, 10, 100))
    value = cross_correlation(a, b)
    assert -1.0 <= value <= 1.0
    with pytest.raises(ValueError):
        cross_correlation(a, b[:50])


def test_rmse_and_normalized_rmse():
    a = np.ones(100)
    b = np.zeros(100)
    assert rms_error(a, b) == pytest.approx(1.0)
    assert normalized_rmse(a + 1, a) == pytest.approx(1.0)
    assert normalized_rmse(b, b) == 0.0


def test_amplitude_correlation():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    assert amplitude_correlation(x, 2 * x + 1) == pytest.approx(1.0)
    assert amplitude_correlation(x, -x) == pytest.approx(-1.0)


@given(st.lists(st.floats(0.1, 3.0), min_size=4, max_size=30))
@settings(max_examples=40, deadline=None)
def test_accuracy_symmetric_and_bounded(amplitudes):
    signal = reconstruct(np.asarray(amplitudes), KERNEL, SPC)
    other = reconstruct(np.asarray(amplitudes[::-1]), KERNEL, SPC)
    forward = simulation_accuracy(signal, other, SPC)
    backward = simulation_accuracy(other, signal, SPC)
    assert forward == pytest.approx(backward)
    assert 0.0 <= forward <= 1.0


def test_power_spectrum_peak_location():
    fs = 100.0
    t = np.arange(4096) / fs
    signal = np.sin(2 * np.pi * 12.5 * t)
    frequencies, power = power_spectrum(signal, fs)
    assert abs(frequencies[np.argmax(power)] - 12.5) < 0.1


def test_spike_energy_detects_alternation():
    fs = 20.0
    t = np.arange(8000) / fs
    carrier = 0.2 * np.sin(2 * np.pi * 4.0 * t)
    alternation = np.sign(np.sin(2 * np.pi * 0.125 * t))
    with_spike = carrier * (1.5 + alternation)
    without = carrier * 1.5
    assert spike_energy(with_spike, fs, 0.125) > \
        10 * spike_energy(without, fs, 0.125)


def test_spike_energy_out_of_band_rejected():
    with pytest.raises(ValueError):
        spike_energy(np.ones(100), 10.0, 20.0)
