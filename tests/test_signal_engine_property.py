"""Property-based oracle agreement for the streaming signal engine.

The signal fast path (docs/architecture.md, "Signal fast path") keeps
every seed path alive as an oracle: direct ``np.convolve`` synthesis,
the sparse-LU deconvolver, the pickle/codec result transport, and the
batch Welch t-test.  These properties pin the engine to those oracles
over *generated* inputs — arbitrary amplitude vectors and kernel
geometries, fault-corrupted captures, shuffled trace arrival orders —
not just the canned shapes the unit tests use.  Transport identity
runs through a real supervised pool (a timeout forces pool mode even
on a single-CPU box) so the shared-memory arena actually carries the
results it is asserted against.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signalbench import run_signal_bench
from repro.ipc import (SHARED_MEMORY_THRESHOLD_BYTES, SharedArrayArena,
                       SharedArrayRef, export_value,
                       shared_memory_available)
from repro.leakage.streaming import (StreamingTTest, WelfordAccumulator,
                                     streaming_tvla)
from repro.leakage.tvla import tvla, welch_t_statistic
from repro.parallel import supervised_map
from repro.robustness import CampaignError, ConfigurationError
from repro.robustness.errors import AcquisitionError
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.signal.kernels import DampedSineKernel, ExpKernel
from repro.signal.reconstruction import (batch_estimate_cycle_amplitudes,
                                         batch_reconstruct,
                                         clear_plan_caches,
                                         estimate_cycle_amplitudes,
                                         reconstruct)

TOLERANCE = 1e-9

_AMPLITUDES = st.lists(
    st.floats(min_value=-100.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=96).map(np.asarray)

_KERNELS = st.one_of(
    st.builds(DampedSineKernel,
              t0=st.floats(0.05, 0.9),
              theta=st.floats(0.5, 8.0)),
    st.builds(ExpKernel, theta=st.floats(0.5, 8.0)))

_SPC = st.integers(2, 24)


# ---------------------------------------------------------------------------
# synthesis: planned engine vs the direct np.convolve oracle
# ---------------------------------------------------------------------------
@given(amplitudes=_AMPLITUDES, kernel=_KERNELS, spc=_SPC)
@settings(max_examples=60, deadline=None)
def test_planned_synthesis_matches_direct_oracle(amplitudes, kernel, spc):
    oracle = reconstruct(amplitudes, kernel, spc, method="direct")
    planned = reconstruct(amplitudes, kernel, spc)
    spectral = reconstruct(amplitudes, kernel, spc, method="fft")
    assert np.max(np.abs(planned - oracle)) <= TOLERANCE
    assert np.max(np.abs(spectral - oracle)) <= TOLERANCE


@given(amplitudes=_AMPLITUDES, kernel=_KERNELS, spc=_SPC)
@settings(max_examples=25, deadline=None)
def test_batch_synthesis_is_bit_identical_to_sequential(amplitudes,
                                                        kernel, spc):
    batch = batch_reconstruct([amplitudes, amplitudes * 2.0], kernel, spc)
    assert np.array_equal(batch[0], reconstruct(amplitudes, kernel, spc))
    assert np.array_equal(batch[1],
                          reconstruct(amplitudes * 2.0, kernel, spc))


def test_cold_plans_agree_with_warm_plans():
    # a freshly built plan and a cache hit must synthesize identically
    kernel = DampedSineKernel(t0=0.25, theta=4.0)
    amplitudes = np.linspace(-1.0, 1.0, 48)
    clear_plan_caches()
    cold = reconstruct(amplitudes, kernel, 10)
    warm = reconstruct(amplitudes, kernel, 10)
    assert np.array_equal(cold, warm)


def test_unknown_synthesis_method_is_a_configuration_error():
    kernel = DampedSineKernel(t0=0.25, theta=4.0)
    with pytest.raises(ConfigurationError):
        reconstruct(np.ones(4), kernel, 5, method="wavelet")


# ---------------------------------------------------------------------------
# deconvolution: banded Cholesky vs the legacy sparse-LU oracle
# ---------------------------------------------------------------------------
@given(amplitudes=_AMPLITUDES, kernel=_KERNELS, spc=_SPC,
       noise_seed=st.integers(0, 2**16 - 1))
@settings(max_examples=40, deadline=None)
def test_banded_deconvolution_matches_lu_oracle(amplitudes, kernel, spc,
                                                noise_seed):
    rng = np.random.default_rng(noise_seed)
    signal = reconstruct(amplitudes, kernel, spc, method="direct")
    signal = signal + 0.01 * rng.standard_normal(len(signal))
    banded = estimate_cycle_amplitudes(signal, kernel, spc)
    oracle = estimate_cycle_amplitudes(signal, kernel, spc, method="lu")
    assert np.max(np.abs(banded - oracle)) <= TOLERANCE


@given(amplitudes=_AMPLITUDES, kernel=_KERNELS, spc=_SPC,
       fault_seed=st.integers(0, 2**16 - 1))
@settings(max_examples=25, deadline=None)
def test_deconvolution_engines_agree_on_faulted_captures(amplitudes,
                                                         kernel, spc,
                                                         fault_seed):
    # captures mangled by the bench fault injector (drift, saturation,
    # bursts, drops) must still deconvolve identically on both engines:
    # the solvers may not diverge just because the data got ugly
    signal = reconstruct(amplitudes, kernel, spc, method="direct")
    injector = FaultInjector(FaultPlan.preset(0.9, seed=fault_seed))
    # capture-level failures (brown-out, trigger loss) are retried by
    # the acquisition layer; only the signal-level corruption matters
    with contextlib.suppress(AcquisitionError):
        injector.begin_capture()
    times = np.arange(len(signal), dtype=float)
    _, faulted = injector.corrupt(times, signal)
    aligned = np.zeros(len(signal))
    aligned[:len(faulted)] = faulted[:len(signal)]
    banded = batch_estimate_cycle_amplitudes([aligned], kernel, spc)
    oracle = batch_estimate_cycle_amplitudes([aligned], kernel, spc,
                                             method="lu")
    assert np.max(np.abs(banded[0] - oracle[0])) <= TOLERANCE


@given(kernel=_KERNELS, spc=_SPC,
       lengths=st.lists(st.integers(1, 40), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_batch_deconvolution_handles_mixed_lengths(kernel, spc, lengths):
    # the batch path groups by geometry; per-trace results must match
    # the sequential single-trace solves in the original input order
    rng = np.random.default_rng(7)
    signals = [rng.standard_normal(cycles * spc) for cycles in lengths]
    batch = batch_estimate_cycle_amplitudes(signals, kernel, spc)
    for signal, estimate in zip(signals, batch):
        single = estimate_cycle_amplitudes(signal, kernel, spc)
        assert np.max(np.abs(estimate - single)) <= TOLERANCE


def test_misaligned_batch_raises_configuration_error():
    kernel = DampedSineKernel(t0=0.25, theta=4.0)
    with pytest.raises(ConfigurationError):
        batch_estimate_cycle_amplitudes([np.ones(7)], kernel, 5)
    # ConfigurationError subclasses ValueError, so pre-engine callers'
    # except ValueError handlers keep catching the misalignment
    assert issubclass(ConfigurationError, ValueError)


def test_unknown_deconvolution_method_is_a_configuration_error():
    kernel = DampedSineKernel(t0=0.25, theta=4.0)
    with pytest.raises(ConfigurationError):
        estimate_cycle_amplitudes(np.ones(10), kernel, 5,
                                  method="cholesky")


# ---------------------------------------------------------------------------
# transport: shared-memory arena vs the codec/pickle pipe
# ---------------------------------------------------------------------------
# generous deadline: forces pool mode (deadline enforcement needs a
# worker process) without ever tripping on a slow machine
SAFE_TIMEOUT = 60.0

#: 4096 float64s = 32 KiB, comfortably over the 16 KiB export threshold
_TRACE_SAMPLES = 4096


def trace_worker(seed):
    """Deterministic worker returning an export-sized trace array."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(_TRACE_SAMPLES)


def record_worker(seed):
    """Worker returning a (scalar, large array, small array) record."""
    rng = np.random.default_rng(seed)
    return (seed, rng.standard_normal(_TRACE_SAMPLES), np.ones(4))


@pytest.mark.parametrize("workers", [1, 4])
def test_shared_transport_is_identical_to_codec(workers):
    if not shared_memory_available():
        pytest.skip("no usable shared memory on this platform")
    items = list(range(8))
    via_codec, ledger_codec = supervised_map(
        trace_worker, items, workers=workers, timeout=SAFE_TIMEOUT,
        transport="codec")
    via_shm, ledger_shm = supervised_map(
        trace_worker, items, workers=workers, timeout=SAFE_TIMEOUT,
        transport="shared")
    assert ledger_codec.complete and ledger_shm.complete
    for codec_trace, shm_trace in zip(via_codec, via_shm):
        assert isinstance(shm_trace, np.ndarray)
        assert np.array_equal(codec_trace, shm_trace)


@pytest.mark.parametrize("workers", [1, 4])
def test_shared_transport_handles_structured_results(workers):
    if not shared_memory_available():
        pytest.skip("no usable shared memory on this platform")
    items = list(range(5))
    via_codec, _ = supervised_map(
        record_worker, items, workers=workers, timeout=SAFE_TIMEOUT,
        transport="codec")
    via_shm, _ = supervised_map(
        record_worker, items, workers=workers, timeout=SAFE_TIMEOUT,
        transport="shared")
    for codec_rec, shm_rec in zip(via_codec, via_shm):
        assert codec_rec[0] == shm_rec[0]
        assert np.array_equal(codec_rec[1], shm_rec[1])
        assert np.array_equal(codec_rec[2], shm_rec[2])


def test_export_claim_round_trip_preserves_bytes():
    if not shared_memory_available():
        pytest.skip("no usable shared memory on this platform")
    rng = np.random.default_rng(3)
    payload = rng.standard_normal(_TRACE_SAMPLES)
    with SharedArrayArena() as arena:
        exported = export_value(payload.copy(), arena.prefix)
        assert isinstance(exported, SharedArrayRef)
        claimed = arena.claim(exported)
    assert np.array_equal(claimed, payload)


def test_small_arrays_stay_on_the_pipe():
    small = np.ones(8)
    assert small.nbytes < SHARED_MEMORY_THRESHOLD_BYTES
    exported = export_value(small, "repro-test-noexport")
    assert exported is small


def test_kill_switch_disables_shared_memory(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SHM", "1")
    assert not shared_memory_available()
    assert SharedArrayArena.create_if_available() is None


def test_arena_sweep_collects_unclaimed_segments():
    if not shared_memory_available():
        pytest.skip("no usable shared memory on this platform")
    rng = np.random.default_rng(5)
    with SharedArrayArena() as arena:
        exported = export_value(rng.standard_normal(_TRACE_SAMPLES),
                                arena.prefix)
        assert isinstance(exported, SharedArrayRef)
        # never claimed — close() must sweep the stray segment
        assert arena.sweep() == 1
        assert arena.sweep() == 0


# ---------------------------------------------------------------------------
# statistics: streaming Welford vs the batch Welch oracle
# ---------------------------------------------------------------------------
_TRACE_GROUPS = st.tuples(
    st.integers(2, 12), st.integers(2, 12), st.integers(4, 64),
    st.integers(0, 2**16 - 1))


@given(shape=_TRACE_GROUPS)
@settings(max_examples=60, deadline=None)
def test_streaming_tvla_matches_batch(shape):
    fixed_count, random_count, samples, seed = shape
    rng = np.random.default_rng(seed)
    fixed = [rng.standard_normal(samples) for _ in range(fixed_count)]
    random = [rng.standard_normal(samples) + 0.5
              for _ in range(random_count)]
    batch = tvla(fixed, random)
    streamed = streaming_tvla(iter(fixed), iter(random))
    assert np.max(np.abs(streamed.t_values - batch.t_values)) <= TOLERANCE
    assert streamed.leaks == batch.leaks


@given(shape=_TRACE_GROUPS, order_seed=st.integers(0, 2**16 - 1))
@settings(max_examples=30, deadline=None)
def test_streaming_tvla_is_arrival_order_invariant(shape, order_seed):
    fixed_count, random_count, samples, seed = shape
    rng = np.random.default_rng(seed)
    fixed = [rng.standard_normal(samples) for _ in range(fixed_count)]
    random = [rng.standard_normal(samples) for _ in range(random_count)]
    reference = streaming_tvla(fixed, random).t_values
    # interleave the two groups in a shuffled arrival order
    arrivals = [("f", trace) for trace in fixed]
    arrivals += [("r", trace) for trace in random]
    np.random.default_rng(order_seed).shuffle(arrivals)
    accumulator = StreamingTTest()
    for group, trace in arrivals:
        if group == "f":
            accumulator.add_fixed(trace)
        else:
            accumulator.add_random(trace)
    assert np.max(np.abs(accumulator.t_values() - reference)) <= TOLERANCE


@given(shape=_TRACE_GROUPS, split=st.integers(1, 11))
@settings(max_examples=30, deadline=None)
def test_welford_merge_matches_sequential_accumulation(shape, split):
    count, _, samples, seed = shape
    rng = np.random.default_rng(seed)
    traces = [rng.standard_normal(samples) for _ in range(count)]
    sequential = WelfordAccumulator()
    for trace in traces:
        sequential.add(trace)
    pivot = min(split, count)
    left, right = WelfordAccumulator(), WelfordAccumulator()
    for trace in traces[:pivot]:
        left.add(trace)
    for trace in traces[pivot:]:
        right.add(trace)
    left.merge(right)
    assert left.count == sequential.count
    assert np.max(np.abs(left.mean - sequential.mean)) <= TOLERANCE
    assert np.max(np.abs(left.variance() -
                         sequential.variance())) <= TOLERANCE


@given(shape=_TRACE_GROUPS, trim=st.integers(1, 16))
@settings(max_examples=25, deadline=None)
def test_streaming_truncation_matches_batch_min_length(shape, trim):
    # one late short trace must truncate the assessment exactly the way
    # the batch path's up-front min-length cut does
    fixed_count, random_count, samples, seed = shape
    rng = np.random.default_rng(seed)
    short = max(1, samples - trim)
    fixed = [rng.standard_normal(samples) for _ in range(fixed_count)]
    random = [rng.standard_normal(samples)
              for _ in range(random_count - 1)]
    random.append(rng.standard_normal(short))
    batch = tvla(fixed, random)
    streamed = streaming_tvla(fixed, random)
    assert len(streamed.t_values) == short
    assert np.max(np.abs(streamed.t_values - batch.t_values)) <= TOLERANCE


def test_empty_group_raises_typed_campaign_error():
    trace = np.ones(8)
    for runner in (tvla, streaming_tvla):
        with pytest.raises(CampaignError, match="fixed trace group"):
            runner([], [trace, trace])
        with pytest.raises(CampaignError, match="random trace group"):
            runner([trace, trace], [])


def test_welch_contract_violations_are_configuration_errors():
    with pytest.raises(ConfigurationError):
        welch_t_statistic(np.ones((3, 5)), np.ones((3, 6)))
    with pytest.raises(ConfigurationError):
        welch_t_statistic(np.ones((1, 5)), np.ones((3, 5)))
    accumulator = StreamingTTest()
    accumulator.add_fixed(np.ones(5))
    accumulator.add_random(np.ones(5))
    with pytest.raises(ConfigurationError):
        accumulator.t_values()


# ---------------------------------------------------------------------------
# the bench measurement core itself
# ---------------------------------------------------------------------------
def test_signal_bench_reports_gated_ratios():
    doc = run_signal_bench(cycles=256, deconv_traces=4, deconv_cycles=64,
                           tvla_traces=32, tvla_cycles=16, reps=1)
    assert doc["benchmark"] == "signal_engine"
    assert doc["oracle_agreement"] is True
    assert doc["synthesis_max_error"] <= TOLERANCE
    assert doc["deconv_max_error"] <= TOLERANCE
    assert doc["tvla_max_error"] <= TOLERANCE
    for ratio in ("synthesis_speedup", "batch_deconv_speedup",
                  "tvla_rss_ratio"):
        assert doc[ratio] > 0.0
