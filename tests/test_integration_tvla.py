"""End-to-end TVLA integration: real-vs-simulated leakage assessment.

A scaled-down version of the paper's Fig. 10 experiment (reduced-round AES,
few traces) checking the essential claim: the TVLA verdict computed on
EMSim's simulated signals agrees with the verdict on the hardware's
signals.
"""

import numpy as np
import pytest

from repro.core import EMSim, train_emsim
from repro.hardware import HardwareDevice
from repro.leakage import DEFAULT_KEY, aes_program, tvla

NUM_TRACES = 12
ROUNDS = 1
NOISE = 0.08


@pytest.fixture(scope="module")
def tvla_setup():
    device = HardwareDevice()
    model = train_emsim(device)
    simulator = EMSim(model, core_config=device.core_config)
    return device, simulator


def _traces(source, rng, fixed):
    plaintexts = ([list(range(16))] * NUM_TRACES if fixed else
                  [list(rng.integers(0, 256, 16)) for _ in
                   range(NUM_TRACES)])
    return [source(plaintext) for plaintext in plaintexts]


def test_real_and_simulated_tvla_agree(tvla_setup):
    device, simulator = tvla_setup
    rng_inputs = np.random.default_rng(7)
    noise_rng = np.random.default_rng(8)

    def real_source(plaintext):
        program = aes_program(DEFAULT_KEY, plaintext, rounds=ROUNDS)
        return device.capture_single(program, noise_rms=NOISE).signal

    def sim_source(plaintext):
        program = aes_program(DEFAULT_KEY, plaintext, rounds=ROUNDS)
        signal = simulator.simulate(program).signal
        return signal + noise_rng.normal(0, NOISE, size=signal.shape)

    results = {}
    for label, source in (("real", real_source), ("sim", sim_source)):
        rng_inputs = np.random.default_rng(7)  # same inputs for both
        fixed = _traces(source, rng_inputs, fixed=True)
        rand = _traces(source, rng_inputs, fixed=False)
        results[label] = tvla(fixed, rand)

    # AES on this core leaks blatantly; both assessments must say so
    assert results["real"].leaks
    assert results["sim"].leaks
    # and the leakage profiles must correlate over time
    spc = device.samples_per_cycle
    real_profile = results["real"].per_cycle_max(spc)
    sim_profile = results["sim"].per_cycle_max(spc)
    length = min(len(real_profile), len(sim_profile))
    correlation = np.corrcoef(real_profile[:length],
                              sim_profile[:length])[0, 1]
    assert correlation > 0.5
