"""Tests for modexp, SPA key recovery, and leakage-capacity tools."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.leakage import (InstructionProfiler, capacity_per_cycle,
                           duration_separation, mutual_information,
                           recover_exponent)
from repro.uarch import GoldenSimulator, run_program
from repro.workloads import modexp_program, modexp_reference


# ----------------------------------------------------------------------
# modular exponentiation workload
# ----------------------------------------------------------------------
@given(st.integers(2, 60000), st.integers(0, 65535),
       st.integers(3, 60000))
@settings(max_examples=40, deadline=None)
def test_modexp_reference_matches_pow(base, exponent, modulus):
    assert modexp_reference(base, exponent, modulus) == \
        pow(base % modulus, exponent, modulus) % modulus \
        if exponent else modexp_reference(base, exponent, modulus) == \
        1 % modulus


@pytest.mark.parametrize("constant_time", [False, True])
@pytest.mark.parametrize("exponent", [1, 0x8000, 0xBEEF, 0xFFFF])
def test_modexp_program_computes_correctly(constant_time, exponent):
    program = modexp_program(7, exponent, 40961,
                             constant_time=constant_time)
    golden = GoldenSimulator(program)
    golden.run(max_steps=100_000)
    assert golden.halted
    assert golden.registers[13] == modexp_reference(7, exponent, 40961)
    # result also stored to memory
    assert golden._read(0x10000, 4, False) == \
        modexp_reference(7, exponent, 40961)


def test_modexp_validation():
    with pytest.raises(ValueError):
        modexp_program(7, 5, 1 << 17)   # modulus too wide
    with pytest.raises(ValueError):
        modexp_program(7, 1 << 16, 40961)  # exponent too wide


def test_leaky_timing_depends_on_key_weight():
    heavy, _ = run_program(modexp_program(7, 0xFFFF, 40961))
    light, _ = run_program(modexp_program(7, 0x0001, 40961))
    assert heavy.num_cycles > light.num_cycles + 50


def test_constant_time_timing_is_flat():
    heavy, _ = run_program(modexp_program(7, 0xFFFF, 40961,
                                          constant_time=True))
    light, _ = run_program(modexp_program(7, 0x0001, 40961,
                                          constant_time=True))
    assert abs(heavy.num_cycles - light.num_cycles) <= 2


# ----------------------------------------------------------------------
# SPA recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exponent", [0xDEAD, 0xB00F, 0x5555, 0x8001])
def test_spa_recovers_leaky_exponent(exponent):
    program = modexp_program(7, exponent, 40961)
    trace, _ = run_program(program)
    result = recover_exponent(trace, program)
    assert result.exponent() == exponent
    assert len(result.recovered_bits) == 16


def test_spa_fails_against_constant_time():
    exponent = 0xDEAD
    program = modexp_program(7, exponent, 40961, constant_time=True)
    trace, _ = run_program(program)
    result = recover_exponent(trace, program)
    assert result.exponent() != exponent


def test_duration_separation_quantifies_the_countermeasure():
    leaky = modexp_program(7, 0xCAFE, 40961)
    hardened = modexp_program(7, 0xCAFE, 40961, constant_time=True)
    leaky_trace, _ = run_program(leaky)
    hardened_trace, _ = run_program(hardened)
    leaky_sep = duration_separation(
        recover_exponent(leaky_trace, leaky).durations)
    hardened_sep = duration_separation(
        recover_exponent(hardened_trace, hardened).durations)
    assert leaky_sep > hardened_sep + 3.0


# ----------------------------------------------------------------------
# mutual information
# ----------------------------------------------------------------------
def test_mutual_information_bounds(rng):
    secrets = rng.integers(0, 2, 2000)
    independent = rng.normal(size=2000)
    dependent = secrets.astype(float)
    assert mutual_information(secrets, independent) < 0.05
    assert mutual_information(secrets, dependent) > 0.8
    assert mutual_information(secrets, dependent) <= 1.0 + 1e-6


def test_mutual_information_validation(rng):
    with pytest.raises(ValueError):
        mutual_information([1, 0], [0.5, 0.7, 0.9])
    with pytest.raises(ValueError):
        mutual_information([1, 0], [0.5, 0.7])


def test_capacity_per_cycle_localizes_leak(rng):
    spc = 4
    secrets = rng.integers(0, 2, 300)
    traces = []
    for secret in secrets:
        trace = rng.normal(0, 0.05, 10 * spc)
        trace[5 * spc:6 * spc] += secret  # cycle 5 carries the secret
        traces.append(trace)
    capacity = capacity_per_cycle(secrets, traces, spc)
    assert capacity.argmax() == 5
    assert capacity[5] > 0.5
    assert np.delete(capacity, 5).max() < 0.2


# ----------------------------------------------------------------------
# instruction profiling
# ----------------------------------------------------------------------
def test_profiler_recognizes_instruction_classes(device):
    from repro.core import isolation_probe, probe_instruction_seq

    def examples(name, values):
        cases = []
        for rs1, rs2 in values:
            probe = isolation_probe(name, rs1_value=rs1, rs2_value=rs2)
            measurement = device.capture_ideal(probe)
            seq = probe_instruction_seq(probe)
            start = min(measurement.trace.cycles_of(seq, "F"))
            cases.append((measurement.signal, start))
        return cases

    classes = ("mul", "lw", "sw")
    train = {name: examples(name, [(3, 5), (17, 9), (250, 97)])
             for name in classes}
    test = {name: examples(name, [(7, 2), (1000, 13)])
            for name in classes}
    profiler = InstructionProfiler(samples_per_cycle=20).fit(train)
    assert profiler.accuracy(test) >= 0.8


def test_profiler_requires_fit():
    profiler = InstructionProfiler(samples_per_cycle=20)
    with pytest.raises(ValueError):
        profiler.classify(np.zeros(200), 0)
