"""Tests for the hardware latch model (repro.uarch.latches)."""

import pytest

from repro.isa import NOP
from repro.uarch.latches import (HardwareLatches, STAGE_REGISTERS, STAGES,
                                 TOTAL_BITS, bubble_pattern, control_word,
                                 stage_bit_count, stage_register_offsets)


def test_stage_schema_consistency():
    assert STAGES == ("F", "D", "E", "M", "W")
    assert set(STAGE_REGISTERS) == set(STAGES)
    assert TOTAL_BITS == sum(stage_bit_count(stage) for stage in STAGES)


def test_register_offsets_are_contiguous():
    for stage in STAGES:
        offsets = stage_register_offsets(stage)
        position = 0
        for name, width in STAGE_REGISTERS[stage]:
            assert offsets[name] == (position, width)
            position += width
        assert position == stage_bit_count(stage)


def test_latch_write_masks_to_width():
    latches = HardwareLatches()
    latches.write("W", wb_rd=0xFF)  # wb_rd is 5 bits
    assert latches.value("W", "wb_rd") == 0x1F
    latches.write("D", dec_ctrl=0xFFFF)  # 12 bits
    assert latches.value("D", "dec_ctrl") == 0xFFF


def test_latch_values_in_schema_order():
    latches = HardwareLatches()
    latches.write("F", pc=4, fetch_instr=0x13, pred_state=1)
    assert latches.values("F") == (4, 0x13, 1)


def test_unwritten_latches_hold_zero():
    latches = HardwareLatches()
    assert all(value == 0 for stage in STAGES
               for value in latches.values(stage))


def test_unknown_register_rejected():
    latches = HardwareLatches()
    with pytest.raises(KeyError):
        latches.write("F", bogus=1)


def test_bubble_pattern_is_noplike():
    assert bubble_pattern("D")["dec_instr"] == NOP.encode()
    assert bubble_pattern("F")["fetch_instr"] == NOP.encode()
    assert bubble_pattern("E")["alu_out"] == 0
    for stage in STAGES:
        pattern = bubble_pattern(stage)
        names = {name for name, _ in STAGE_REGISTERS[stage]}
        assert set(pattern) <= names


def test_write_bubble_idempotent():
    """Writing a bubble twice produces no further transitions."""
    latches = HardwareLatches()
    latches.write("D", rs1_val=0xDEAD, dec_instr=0x123)
    latches.write_bubble("D")
    first = latches.values("D")
    latches.write_bubble("D")
    assert latches.values("D") == first


def test_control_word_differs_by_instruction_kind():
    from repro.isa import Instruction
    words = {control_word(Instruction(name, rs1=1, rs2=2,
                                      imm=8 if name in ("beq", "jal")
                                      else 0), 12)
             for name in ("add", "sub", "lw", "sw", "beq", "mul", "jal")}
    assert len(words) >= 6  # near-unique control signatures


def test_control_word_stable_for_same_op_different_operands():
    from repro.isa import Instruction
    a = Instruction("add", rd=1, rs1=2, rs2=3)
    b = Instruction("add", rd=4, rs1=5, rs2=6)
    assert control_word(a, 12) == control_word(b, 12)
