"""Tests for retry, backoff, degradation, and robust fitting.

The supervisor tests use a stub device so each ladder rung (retry on
acquisition failure, escalation on quality rejection, ideal-grid
degradation, strict mode) can be exercised deterministically.
"""

import numpy as np
import pytest

from repro.core import irls_solve, mad_outlier_mask
from repro.robustness import (AcquisitionError, CaptureQuality,
                              CaptureQualityError, CaptureSupervisor,
                              HealthPolicy, RetryPolicy)
from repro.robustness.errors import (ConvergenceError, ModelFormatError,
                                     ProbeError, ReproError, exit_code_for)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

def test_backoff_schedule_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=6, base_delay=0.01, backoff=2.0,
                         jitter=0.25, max_delay=0.05, seed=3)
    schedule = policy.schedule()
    assert schedule == policy.schedule()          # reproducible
    assert len(schedule) == 5
    assert all(delay >= 0.0 for delay in schedule)
    # exponential up to the cap, +/- 25% jitter
    for index, delay in enumerate(schedule):
        raw = min(0.05, 0.01 * 2.0 ** index)
        assert raw * 0.75 <= delay <= raw * 1.25
    # a different seed gives a different (desynchronized) schedule
    other = RetryPolicy(max_attempts=6, base_delay=0.01, backoff=2.0,
                        jitter=0.25, max_delay=0.05, seed=4)
    assert other.schedule() != schedule


# ----------------------------------------------------------------------
# CaptureSupervisor against a stub device
# ----------------------------------------------------------------------

class _Probe:
    name = "stub_probe"


GOOD_QUALITY = CaptureQuality(clipping_ratio=0.0, snr_db=30.0,
                              alignment_residual=0.05,
                              total_repetitions=16, num_samples=640)
BAD_QUALITY = CaptureQuality(clipping_ratio=0.5, snr_db=-3.0,
                             alignment_residual=2.0,
                             total_repetitions=16, num_samples=640)


class _Meas:
    def __init__(self, quality, method="reference"):
        self.quality = quality
        self.method = method
        self.signal = np.zeros(8)


class _StubDevice:
    """Scripted bench: a list of per-attempt behaviours."""

    def __init__(self, script):
        self.script = list(script)   # "fail" | "bad" | "good"
        self.calls = []              # (method, repetitions)
        self.ideal_captures = 0

    def measure(self, program, method="reference", repetitions=100,
                max_cycles=None):
        self.calls.append((method, repetitions))
        action = self.script.pop(0) if self.script else "good"
        if action == "fail":
            raise AcquisitionError("trigger loss: scope did not fire")
        quality = BAD_QUALITY if action == "bad" else GOOD_QUALITY
        return _Meas(quality, method=method)

    def capture_ideal(self, program, max_cycles=None):
        self.ideal_captures += 1
        return _Meas(None, method="ideal")


def _supervisor(device, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, seed=1))
    return CaptureSupervisor(device, health=HealthPolicy(), **kwargs)


def test_clean_capture_first_try():
    device = _StubDevice(["good"])
    supervisor = _supervisor(device)
    measurement, outcome = supervisor.measure(_Probe(), method="reference",
                                              repetitions=16)
    assert measurement.quality is GOOD_QUALITY
    assert outcome.attempts == 1 and outcome.retries == 0
    assert not outcome.degraded
    assert supervisor.stats.probes == 1
    assert supervisor.stats.probes_retried == 0


def test_retry_recovers_from_acquisition_failure():
    device = _StubDevice(["fail", "good"])
    supervisor = _supervisor(device)
    _, outcome = supervisor.measure(_Probe(), method="reference",
                                    repetitions=16)
    assert outcome.attempts == 2
    assert outcome.capture_failures == 1
    assert not outcome.degraded
    # delivery failures don't escalate the repetition budget
    assert [reps for _, reps in device.calls] == [16, 16]


def test_quality_rejection_escalates_repetitions():
    device = _StubDevice(["bad", "bad", "good"])
    supervisor = _supervisor(device)
    _, outcome = supervisor.measure(_Probe(), method="reference",
                                    repetitions=16)
    assert outcome.quality_rejects == 2
    assert outcome.escalations == 2
    assert [reps for _, reps in device.calls] == [16, 32, 64]
    assert outcome.final_repetitions == 64


def test_degrades_to_ideal_after_budget():
    device = _StubDevice(["bad", "bad", "bad"])
    warnings = []
    supervisor = _supervisor(device, log=warnings.append)
    measurement, outcome = supervisor.measure(_Probe(), method="reference",
                                              repetitions=16)
    assert outcome.degraded
    assert outcome.final_method == "ideal"
    assert device.ideal_captures == 1
    assert measurement.method == "ideal"
    assert supervisor.stats.probes_degraded == 1
    assert any("degraded" in line for line in warnings)


def test_strict_mode_raises_instead_of_degrading():
    device = _StubDevice(["bad", "bad", "bad"])
    supervisor = _supervisor(device, allow_degradation=False)
    with pytest.raises(CaptureQualityError):
        supervisor.measure(_Probe(), method="reference", repetitions=16)
    assert device.ideal_captures == 0


def test_all_failures_exhaust_and_degrade():
    device = _StubDevice(["fail", "fail", "fail"])
    supervisor = _supervisor(device)
    _, outcome = supervisor.measure(_Probe(), method="reference",
                                    repetitions=16)
    assert outcome.degraded
    assert outcome.capture_failures == 3


def test_backoff_is_recorded_and_sleep_called():
    device = _StubDevice(["fail", "fail", "good"])
    slept = []
    supervisor = _supervisor(device, sleep=slept.append)
    _, outcome = supervisor.measure(_Probe(), method="reference",
                                    repetitions=16)
    assert len(slept) == 2
    assert outcome.waited == pytest.approx(sum(slept))
    assert slept == RetryPolicy(max_attempts=3, seed=1).schedule()


def test_stats_summary_mentions_all_counters():
    device = _StubDevice(["bad", "fail", "good"])
    supervisor = _supervisor(device)
    supervisor.measure(_Probe(), method="reference", repetitions=16)
    summary = supervisor.stats.summary()
    for token in ("probes=1", "retried=1", "rejected=1", "lost=1",
                  "escalated=1", "degraded=0"):
        assert token in summary


# ----------------------------------------------------------------------
# error hierarchy
# ----------------------------------------------------------------------

def test_error_hierarchy_and_exit_codes():
    assert issubclass(AcquisitionError, ReproError)
    assert issubclass(CaptureQualityError, AcquisitionError)
    assert issubclass(ConvergenceError, ReproError)
    # dual inheritance keeps legacy ValueError call sites working
    assert issubclass(ModelFormatError, ValueError)
    assert issubclass(ProbeError, ValueError)
    codes = {exit_code_for(cls("x")) for cls in (
        ReproError, AcquisitionError, ConvergenceError, ProbeError)}
    codes.add(exit_code_for(ModelFormatError("x", path="p")))
    assert len(codes) == 5                    # all distinct
    assert all(code >= 10 for code in codes)
    assert exit_code_for(RuntimeError("x")) == 1


def test_model_format_error_names_path_and_reason():
    error = ModelFormatError("checksum mismatch", path="/tmp/m.json")
    assert "/tmp/m.json" in str(error)
    assert "checksum mismatch" in str(error)


# ----------------------------------------------------------------------
# robust fitting
# ----------------------------------------------------------------------

def test_irls_matches_lstsq_on_clean_data(rng):
    matrix = np.column_stack([np.ones(60), rng.normal(0, 1, (60, 3))])
    truth = np.array([1.0, 2.0, -0.5, 0.25])
    target = matrix @ truth + rng.normal(0, 0.01, 60)
    solution, info = irls_solve(matrix, target)
    assert info.converged
    assert np.allclose(solution, truth, atol=0.02)
    # a tightly-scaled Huber may down-weight a tail point or two, but
    # clean Gaussian data should not look contaminated
    assert info.outliers_rejected <= 3


def test_irls_resists_gross_outliers(rng):
    matrix = np.column_stack([np.ones(80), rng.normal(0, 1, (80, 2))])
    truth = np.array([0.5, 3.0, -1.0])
    target = matrix @ truth + rng.normal(0, 0.02, 80)
    corrupted = target.copy()
    corrupted[::10] += 50.0                       # 8 gross outliers

    plain = np.linalg.lstsq(matrix, corrupted, rcond=None)[0]
    robust, info = irls_solve(matrix, corrupted)
    assert info.outliers_rejected >= 6
    plain_err = np.linalg.norm(plain - truth)
    robust_err = np.linalg.norm(robust - truth)
    assert robust_err < plain_err / 5
    assert robust_err < 0.1


def test_irls_rejects_nonfinite_input():
    matrix = np.ones((4, 2))
    target = np.array([1.0, np.nan, 3.0, 4.0])
    with pytest.raises(ConvergenceError):
        irls_solve(matrix, target)


def test_mad_outlier_mask_flags_only_outliers(rng):
    values = rng.normal(0.0, 1.0, 200)
    values[17] = 40.0
    values[91] = -35.0
    mask = mad_outlier_mask(values, threshold=6.0)   # True = outlier
    assert mask[17] and mask[91]
    assert mask.sum() <= 10
