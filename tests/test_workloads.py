"""Tests for workload generators and canned kernels."""

import pytest

from repro.isa import Instruction
from repro.uarch import GoldenSimulator, run_program
from repro.workloads import (ALL_KERNELS, RandomProgramBuilder,
                             SCRATCH_BASE, nop_padded, wrap_program)


def test_wrap_program_appends_ebreak_and_scratch():
    program = wrap_program([Instruction("add", rd=5, rs1=6, rs2=7)])
    assert program.instructions[-1].name == "ebreak"
    assert program.data  # scratch region initialized
    assert min(program.data) == SCRATCH_BASE


def test_wrap_program_sets_gp():
    program = wrap_program([])
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[3] == SCRATCH_BASE


def test_nop_padded_layout():
    instr = Instruction("mul", rd=5, rs1=6, rs2=7)
    program = nop_padded([instr], before=4, after=3)
    names = [i.name for i in program.instructions]
    assert names.count("mul") == 1
    index = names.index("mul")
    assert all(program.instructions[i].is_nop
               for i in range(index - 4, index))
    assert all(program.instructions[i].is_nop
               for i in range(index + 1, index + 4))


@pytest.mark.parametrize("seed", range(6))
def test_random_programs_terminate(seed):
    program = RandomProgramBuilder(seed=seed).program(100)
    golden = GoldenSimulator(program)
    golden.run(max_steps=500_000)
    assert golden.halted


def test_random_builder_feature_toggles():
    builder = RandomProgramBuilder(seed=1, include_muldiv=False,
                                   include_memory=False,
                                   include_branches=False)
    instructions = builder.instructions(120)
    names = {instr.name for instr in instructions}
    assert not names & {"mul", "div", "lw", "sw", "beq", "bne"}


def test_random_builder_memory_stays_in_scratch():
    builder = RandomProgramBuilder(seed=2)
    for _ in range(100):
        load = builder.random_load()
        assert load.rs1 == 3
        assert 0 <= load.imm <= 2047
        store = builder.random_store()
        assert 0 <= store.imm <= 2047


def test_counted_loop_terminates_with_exact_iterations():
    builder = RandomProgramBuilder(seed=3)
    loop = builder.counted_loop(body_length=2, iterations=5)
    program = wrap_program(loop)
    golden = GoldenSimulator(program)
    golden.run(max_steps=10_000)
    assert golden.halted


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_kernels_run_on_pipeline(name):
    trace, core = run_program(ALL_KERNELS[name]())
    assert core.halted
    assert trace.instructions_retired > 10


def test_dot_product_result():
    from repro.workloads import dot_product
    golden = GoldenSimulator(dot_product(4))
    golden.run()
    expected = sum((3 * i + 1) * (7 * i + 2) for i in range(4))
    assert golden.registers[10] == expected


def test_bubble_sort_sorts():
    from repro.workloads import bubble_sort
    golden = GoldenSimulator(bubble_sort(6))
    golden.run(max_steps=100_000)
    values = [golden._read(0x10000 + 4 * i, 4, False) for i in range(6)]
    assert values == sorted(values)


def test_crc32_matches_zlib():
    import zlib
    from repro.workloads import crc32
    golden = GoldenSimulator(crc32(8))
    golden.run(max_steps=300_000)
    data = b"".join(((0xC0FFEE00 + 37 * i) & 0xFFFFFFFF)
                    .to_bytes(4, "little") for i in range(8))
    assert golden.registers[10] == zlib.crc32(data)


def test_matmul_matches_reference():
    from repro.workloads import matmul
    size = 3
    golden = GoldenSimulator(matmul(size))
    golden.run(max_steps=300_000)
    a = [(2 * i + 1) & 0xFF for i in range(size * size)]
    b = [(3 * i + 2) & 0xFF for i in range(size * size)]
    expected = [sum(a[i * size + k] * b[k * size + j]
                    for k in range(size))
                for i in range(size) for j in range(size)]
    got = [golden._read(0x10800 + 4 * index, 4, False)
           for index in range(size * size)]
    assert got == expected


def test_fibonacci_value():
    from repro.workloads import fibonacci
    golden = GoldenSimulator(fibonacci(10))
    golden.run()
    assert golden.registers[10] == 55
