"""Tests for the two-pass assembler (repro.isa.assembler)."""

import pytest

from repro.isa import (AssemblerError, Instruction, TEXT_BASE, assemble)


def test_basic_r_type():
    program = assemble("add t0, t1, t2")
    assert program.instructions == [Instruction("add", rd=5, rs1=6, rs2=7)]


def test_comments_and_blank_lines():
    program = assemble("""
    # a comment
    add t0, t1, t2   ; trailing comment

    """)
    assert len(program) == 1


def test_labels_and_backward_branch():
    program = assemble("""
loop:
    addi t0, t0, -1
    bnez t0, loop
    """)
    branch = program.instructions[1]
    assert branch.name == "bne"
    assert branch.imm == -4  # from the branch back to loop


def test_forward_branch():
    program = assemble("""
    beq t0, t1, done
    addi t2, t2, 1
done:
    nop
    """)
    assert program.instructions[0].imm == 8


def test_jal_and_pseudo_jump():
    program = assemble("""
    j target
    nop
target:
    ret
    """)
    jal = program.instructions[0]
    assert jal.name == "jal" and jal.rd == 0 and jal.imm == 8
    ret = program.instructions[2]
    assert ret.name == "jalr" and ret.rs1 == 1 and ret.rd == 0


def test_li_small_and_large():
    program = assemble("""
    li t0, 42
    li t1, -1
    li t2, 0x12345678
    """)
    assert program.instructions[0] == Instruction("addi", rd=5, rs1=0,
                                                  imm=42)
    assert program.instructions[1] == Instruction("addi", rd=6, rs1=0,
                                                  imm=-1)
    # large li expands to lui+addi reproducing the value
    lui, addi = program.instructions[2:4]
    assert lui.name == "lui" and addi.name == "addi"
    value = ((lui.imm << 12) + addi.imm) & 0xFFFFFFFF
    assert value == 0x12345678


def test_la_loads_symbol_address():
    program = assemble("""
.data
.org 0x10000
var: .word 7
.text
    la t0, var
    lw t1, 0(t0)
    """)
    lui, addi = program.instructions[0:2]
    address = ((lui.imm << 12) + addi.imm) & 0xFFFFFFFF
    assert address == 0x10000


def test_data_directives():
    program = assemble("""
.data
.org 0x10000
bytes: .byte 1, 2, 255
halves: .half 0x1234
words: .word 0xdeadbeef
    """)
    assert program.data[0x10000] == 1
    assert program.data[0x10002] == 255
    assert program.data[0x10003] == 0x34
    assert program.data[0x10004] == 0x12
    assert program.data[0x10005] == 0xEF
    assert program.data[0x10008] == 0xDE


def test_space_and_align():
    program = assemble("""
.data
.org 0x10001
.align 2
aligned: .word 5
    """)
    assert program.symbols["aligned"] == 0x10004


def test_equ_constants():
    program = assemble("""
.equ SIZE, 16
    li t0, SIZE
    addi t1, t0, SIZE-1
    """)
    assert program.instructions[0].imm == 16
    assert program.instructions[1].imm == 15


def test_hi_lo_relocations():
    program = assemble("""
.equ ADDR, 0x12345678
    lui t0, %hi(ADDR)
    addi t0, t0, %lo(ADDR)
    """)
    lui, addi = program.instructions
    assert ((lui.imm << 12) + addi.imm) & 0xFFFFFFFF == 0x12345678


def test_memory_operand_forms():
    program = assemble("""
    lw t0, 8(sp)
    sw t1, -4(s0)
    jalr ra, 0(t2)
    """)
    assert program.instructions[0].imm == 8
    assert program.instructions[1].imm == -4
    assert program.instructions[2].rs1 == 7


def test_zero_branch_pseudos():
    program = assemble("""
top:
    beqz t0, top
    bnez t1, top
    bltz t2, top
    bgez t3, top
    blez t4, top
    bgtz t5, top
    """)
    names = [instr.name for instr in program.instructions]
    assert names == ["beq", "bne", "blt", "bge", "bge", "blt"]
    # blez swaps operands: 0 >= t4
    assert program.instructions[4].rs1 == 0
    assert program.instructions[4].rs2 == 29


def test_swapped_compare_pseudos():
    program = assemble("""
t:
    bgt t0, t1, t
    ble t0, t1, t
    """)
    assert program.instructions[0].name == "blt"
    assert program.instructions[0].rs1 == 6  # operands swapped
    assert program.instructions[1].name == "bge"


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\nnop\na:\nnop")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("j nowhere")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate t0, t1")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("add t0, t1")


def test_org_in_text_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n.org 0x100\nnop")


def test_instruction_in_data_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\nadd t0, t1, t2")


def test_addresses_are_contiguous():
    program = assemble("nop\nnop\nnop")
    assert [program.address_of(i) for i in range(3)] == \
        [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]


def test_error_reports_line_number():
    try:
        assemble("nop\nbogus t0\nnop")
    except AssemblerError as error:
        assert error.line_number == 2
    else:
        pytest.fail("expected AssemblerError")
