"""Architectural-correctness tests: pipeline vs golden interpreter.

The pipelined core must compute exactly the same registers and memory as
the sequential reference, for every hazard/forwarding/flush interleaving.
"""

import pytest

from repro.isa import assemble
from repro.uarch import CoreConfig, GoldenSimulator, Pipeline, run_program
from repro.workloads import ALL_KERNELS, RandomProgramBuilder


def _assert_matches_golden(program, config=None, max_steps=500_000):
    golden = GoldenSimulator(program)
    golden.run(max_steps=max_steps)
    assert golden.halted, "golden model did not halt"
    trace, core = run_program(program, config=config or CoreConfig())
    assert core.halted, "pipeline did not halt"
    for index in range(32):
        assert golden.registers[index] == core.regfile.peek(index), \
            f"x{index} mismatch"
    golden_memory = golden.memory
    pipe_memory = core.memory.snapshot()
    for address, value in golden_memory.items():
        assert pipe_memory.get(address, 0) == value, hex(address)
    for address, value in pipe_memory.items():
        assert golden_memory.get(address, 0) == value, hex(address)
    assert golden.retired == trace.instructions_retired
    return trace, core


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_kernels_match_golden(name):
    _assert_matches_golden(ALL_KERNELS[name]())


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_match_golden(seed):
    program = RandomProgramBuilder(seed=seed).program(120)
    _assert_matches_golden(program)


@pytest.mark.parametrize("forwarding", [True, False])
def test_forwarding_configs_match_golden(forwarding):
    program = RandomProgramBuilder(seed=99).program(100)
    _assert_matches_golden(program,
                           config=CoreConfig(forwarding=forwarding))


@pytest.mark.parametrize("predictor", ["not-taken", "two-level", "gshare"])
def test_predictors_match_golden(predictor):
    program = RandomProgramBuilder(seed=7).program(100)
    _assert_matches_golden(program, config=CoreConfig(predictor=predictor))


def test_back_to_back_raw_dependency():
    program = assemble("""
    li t0, 5
    addi t1, t0, 1
    addi t2, t1, 1
    addi t3, t2, 1
    ebreak
    """)
    _, core = _assert_matches_golden(program)
    assert core.regfile.peek(28) == 8


def test_load_use_hazard():
    program = assemble("""
    li t1, 0x10000
    li t2, 1234
    sw t2, 0(t1)
    lw t0, 0(t1)
    addi t3, t0, 1
    ebreak
    """)
    trace, core = _assert_matches_golden(program)
    assert core.regfile.peek(28) == 1235
    # the dependent addi must have stalled on the load
    from repro.uarch import StallCause
    causes = {stall.cause for stall in trace.stalls}
    assert StallCause.LOAD_USE in causes


def test_store_load_same_address():
    program = assemble("""
    li t1, 0x10100
    li t2, 0xABC
    sw t2, 0(t1)
    lw t3, 0(t1)
    ebreak
    """)
    _, core = _assert_matches_golden(program)
    assert core.regfile.peek(28) == 0xABC


def test_taken_loop_with_misprediction_recovery():
    program = assemble("""
    li t0, 6
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    ebreak
    """)
    trace, core = _assert_matches_golden(program)
    assert core.regfile.peek(6) == 21  # 6+5+4+3+2+1
    assert trace.mispredictions >= 1  # at least the final not-taken


def test_jalr_indirect_call_and_return():
    program = assemble("""
    la t0, callee
    jalr ra, 0(t0)
    li t2, 7
    ebreak
callee:
    li t1, 5
    ret
    """)
    _, core = _assert_matches_golden(program)
    assert core.regfile.peek(6) == 5
    assert core.regfile.peek(7) == 7


def test_mispredicted_wrong_path_side_effect_free():
    """A wrong-path store must never reach memory."""
    program = assemble("""
    li t0, 1
    li t1, 0x10200
    beqz t0, never        # not taken, but predictor may guess taken later
    j skip
    sw t0, 0(t1)          # wrong-path / dead code
never:
    sw t0, 4(t1)
skip:
    ebreak
    """)
    _, core = _assert_matches_golden(program)
    assert core.memory.load_word(0x10200) == 0
    assert core.memory.load_word(0x10204) == 0


def test_x0_writes_dropped_in_pipeline():
    program = assemble("""
    addi zero, zero, 7
    add t0, zero, zero
    ebreak
    """)
    _, core = _assert_matches_golden(program)
    assert core.regfile.peek(0) == 0


def test_muldiv_latencies_preserve_correctness():
    program = assemble("""
    li t0, 77
    li t1, 13
    mul t2, t0, t1
    div t3, t2, t1
    rem t4, t0, t1
    ebreak
    """)
    for mul_lat, div_lat in ((1, 1), (3, 8), (8, 20)):
        config = CoreConfig(mul_latency=mul_lat, div_latency=div_lat)
        golden = GoldenSimulator(program)
        golden.run()
        _, core = run_program(program, config=config)
        assert core.regfile.peek(7) == 77 * 13
        assert core.regfile.peek(28) == 77
        assert core.regfile.peek(29) == 77 % 13


def test_retirement_is_in_program_order():
    program = RandomProgramBuilder(seed=3).program(80)
    trace, _ = run_program(program)
    golden = GoldenSimulator(program)
    golden_order = []
    while True:
        instr = golden.step()
        if instr is None:
            break
        golden_order.append(instr)
    retired = [entry.instr for entry in trace.retired]
    assert retired == golden_order
    # retirement cycles strictly increase
    cycles = [entry.cycle for entry in trace.retired]
    assert all(a < b for a, b in zip(cycles, cycles[1:]))


def test_oracle_run_has_no_mispredictions():
    from repro.uarch import collect_oracle
    program = RandomProgramBuilder(seed=11).program(100)
    oracle = collect_oracle(program)
    trace, core = run_program(program, oracle=oracle)
    assert trace.mispredictions == 0
    assert not trace.flushes
    golden = GoldenSimulator(program)
    golden.run()
    for index in range(32):
        assert golden.registers[index] == core.regfile.peek(index)


def test_oracle_run_is_never_slower():
    from repro.uarch import collect_oracle
    program = RandomProgramBuilder(seed=13).program(100)
    normal, _ = run_program(program)
    oracle_trace, _ = run_program(program,
                                  oracle=collect_oracle(program))
    assert oracle_trace.num_cycles <= normal.num_cycles
