"""Tests for the hardware-debugging use case (repro.leakage.debugging)."""

import numpy as np
import pytest

from repro.isa import Instruction
from repro.leakage.debugging import (buggy_multiplier, calibrated_deficit,
                                     compare_to_reference,
                                     multiplier_stress_program,
                                     unit_relative_check)
from repro.uarch import GoldenSimulator, run_program


def test_buggy_multiplier_semantics():
    mul = Instruction("mul", rd=1, rs1=2, rs2=3)
    # only the low bytes participate
    assert buggy_multiplier(mul, 0x1234_5603, 0xABCD_EF05) == 15
    assert buggy_multiplier(mul, 0xFF, 0xFF) == 0xFF * 0xFF
    # other instructions pass through untouched
    add = Instruction("add", rd=1, rs1=2, rs2=3)
    assert buggy_multiplier(add, 5, 6) is None


def test_buggy_core_computes_wrong_products():
    program = multiplier_stress_program(4, seed=1)
    healthy_trace, healthy = run_program(program)
    buggy_trace, buggy = run_program(program, alu_bug=buggy_multiplier)
    assert healthy.regfile.peek(5) != buggy.regfile.peek(5)
    # timing is unchanged: the bug is silent architecturally-in-time
    assert healthy_trace.num_cycles == buggy_trace.num_cycles


def test_stress_program_structure():
    program = multiplier_stress_program(8, seed=2)
    muls = [instr for instr in program.instructions
            if instr.name == "mul"]
    assert len(muls) == 8
    golden = GoldenSimulator(program)
    golden.run(max_steps=100_000)
    assert golden.halted


def test_unit_relative_check_self_consistency(device):
    """A device checked against its own (trained) reference shows the
    same unit/global ratio — no false positive."""
    from repro.core import EMSim, train_emsim
    from repro.signal import estimate_cycle_amplitudes

    model = train_emsim(device)
    simulator = EMSim(model, core_config=device.core_config)
    program = multiplier_stress_program(16)
    reference = simulator.simulate(program)

    def check(dut):
        measurement = dut.capture_ideal(program)
        amplitudes = estimate_cycle_amplitudes(
            measurement.signal, model.config.kernel,
            device.samples_per_cycle)
        return unit_relative_check(reference.amplitudes, amplitudes,
                                   reference.trace)

    from repro.hardware import HardwareDevice
    calibration = check(device)
    assert calibration.cycles_checked == 16
    healthy = check(HardwareDevice())
    buggy = check(HardwareDevice(alu_bug=buggy_multiplier))
    assert abs(calibrated_deficit(healthy, calibration)) < 0.03
    assert calibrated_deficit(buggy, calibration) > 0.05  # Fig. 11


def test_unit_relative_check_requires_unit_cycles(device):
    from repro.workloads import fibonacci
    trace, _ = run_program(fibonacci(4))
    fake = np.ones(trace.num_cycles)
    with pytest.raises(ValueError):
        unit_relative_check(fake, fake, trace, em_class="muldiv_final")


def test_compare_to_reference_flags_low_similarity():
    from repro.signal import DampedSineKernel, reconstruct
    from repro.workloads import nop_padded

    program = nop_padded([Instruction("add", rd=5, rs1=8, rs2=9)])
    trace, _ = run_program(program)
    kernel = DampedSineKernel()
    amplitudes = np.ones(trace.num_cycles)
    reference = reconstruct(amplitudes, kernel, 20)
    corrupted = reference.copy()
    corrupted[8 * 20:9 * 20] *= -1.0  # cycle 8 anti-phased
    report = compare_to_reference(reference, corrupted, trace, 20,
                                  threshold=0.5)
    assert report.suspicious
    assert [dev.cycle for dev in report.deviations] == [8]
    assert len(report.implicated_instructions()) == 1
    assert "cycle 8" in str(report.deviations[0])


def test_compare_to_reference_clean_match():
    from repro.signal import DampedSineKernel, reconstruct
    from repro.workloads import fibonacci

    trace, _ = run_program(fibonacci(5))
    signal = reconstruct(np.ones(trace.num_cycles), DampedSineKernel(), 20)
    report = compare_to_reference(signal, signal, trace, 20)
    assert not report.suspicious
    assert report.mean_similarity == pytest.approx(1.0)
