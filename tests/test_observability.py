"""Tests for the run-record observability layer (repro.observability).

Covers the span tracer (nesting, attributes, disabled no-op), the
deterministic metrics registry (delta/merge transport, the profiler
counter shim, fixed histogram edges), run manifests (schema
``repro-manifest/1``, event stream, atomic finalize), the Markdown
report renderer against a golden file, the cross-process span/metric
merge through the supervised pool at workers=1 and workers=4, the CLI
``--trace-dir`` / ``report`` path, and the journal digest used by
``repro report --journal``.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.observability import (MANIFEST_SCHEMA, Histogram,
                                 MetricsRegistry, config_hash,
                                 current_manifest_path, disable_metrics,
                                 disable_tracing, enable_metrics,
                                 enable_tracing, finish_run, get_metrics,
                                 get_recorder, get_tracer,
                                 record_campaign, render_report,
                                 set_spool_root, start_run,
                                 validate_manifest)
from repro.parallel import spawn_seed, supervised_map
from repro.profiling import get_profiler
from repro.robustness import CheckpointError, ConfigurationError
from repro.robustness.checkpoint import JOURNAL_SCHEMA, journal_summary

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


@pytest.fixture(autouse=True)
def _pristine_observability():
    """Every test starts and ends with recording fully torn down."""
    yield
    finish_run()
    disable_tracing()
    disable_metrics()
    get_tracer().reset()
    get_metrics().reset()
    set_spool_root(None)


# ---------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------

def test_tracer_disabled_records_nothing():
    tracer = get_tracer()
    with tracer.span("should.not_record"):
        pass
    assert tracer.spans == []


def test_tracer_nesting_paths_and_attributes():
    tracer = enable_tracing()
    with tracer.span("outer.scope", campaign="demo"):
        with tracer.span("inner.scope", index=3):
            pass
    # spans append on exit: children complete before their parent
    assert [span.name for span in tracer.spans] == \
        ["inner.scope", "outer.scope"]
    inner, outer = tracer.spans
    assert inner.path == "outer.scope/inner.scope"
    assert outer.path == "outer.scope"
    assert inner.attributes == {"index": 3}
    assert outer.attributes == {"campaign": "demo"}
    assert inner.pid == os.getpid()
    assert inner.seconds >= 0.0


def test_tracer_by_name_aggregates_and_sorts():
    tracer = enable_tracing()
    for _ in range(3):
        with tracer.span("repeat.name"):
            pass
    with tracer.span("another.name"):
        pass
    summary = tracer.by_name()
    assert list(summary) == ["another.name", "repeat.name"]
    assert summary["repeat.name"]["calls"] == 3
    assert summary["another.name"]["calls"] == 1


def test_tracer_reset_drops_spans():
    tracer = enable_tracing()
    with tracer.span("gone.soon"):
        pass
    tracer.reset()
    assert tracer.spans == []
    assert tracer.by_name() == {}


# ---------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------

def test_metrics_disabled_is_noop():
    registry = MetricsRegistry()
    registry.increment("quiet.counter")
    registry.set_gauge("quiet.gauge", 1.0)
    registry.observe("quiet.histogram", 0.5)
    assert registry.to_dict() == \
        {"counters": {}, "gauges": {}, "histograms": {}}


def test_metrics_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.enabled = True
    registry.increment("demo.items")
    registry.increment("demo.items", 4)
    registry.set_gauge("demo.workers", 2)
    registry.set_gauge("demo.workers", 8)  # last write wins
    registry.observe("demo.seconds", 0.5, edges=(1.0, 2.0))
    registry.observe("demo.seconds", 3.0, edges=(1.0, 2.0))
    exported = registry.to_dict()
    assert exported["counters"] == {"demo.items": 5}
    assert exported["gauges"] == {"demo.workers": 8.0}
    histogram = exported["histograms"]["demo.seconds"]
    assert histogram["edges"] == [1.0, 2.0]
    assert histogram["counts"] == [1, 0, 1]  # 0.5 low, 3.0 overflow
    assert histogram["count"] == 2
    assert histogram["total"] == pytest.approx(3.5)


def test_histogram_edges_are_fixed():
    registry = MetricsRegistry()
    registry.enabled = True
    registry.observe("demo.seconds", 0.1, edges=(1.0, 2.0))
    with pytest.raises(ConfigurationError):
        registry.observe("demo.seconds", 0.1, edges=(5.0,))


def test_metrics_delta_and_merge_round_trip():
    source = MetricsRegistry()
    source.enabled = True
    source.increment("demo.before", 2)
    baseline = source.snapshot()
    source.increment("demo.before", 3)
    source.increment("demo.after")
    source.set_gauge("demo.gauge", 7.0)
    source.observe("demo.seconds", 0.3, edges=(1.0,))
    delta = source.delta(baseline)
    # only the changes travel
    assert delta["counters"] == {"demo.after": 1, "demo.before": 3}
    target = MetricsRegistry()
    target.merge(delta)
    assert target.counters == {"demo.after": 1, "demo.before": 3}
    assert target.gauges == {"demo.gauge": 7.0}
    assert target.histograms["demo.seconds"].count == 1


def test_metrics_delta_empty_when_quiet():
    registry = MetricsRegistry()
    registry.enabled = True
    registry.increment("demo.items")
    assert registry.delta(registry.snapshot()) == {}


def test_histogram_add_counts_folds_buckets():
    histogram = Histogram(edges=(1.0,))
    histogram.observe(0.5)
    histogram.add_counts([2, 1], 3, 4.5)
    assert histogram.counts == [3, 1]
    assert histogram.count == 4
    assert histogram.total == pytest.approx(5.0)


def test_profiler_counter_shim_feeds_registry():
    registry = enable_metrics()
    profiler = get_profiler()
    assert not profiler.enabled  # shim works with the profiler off
    profiler.count("shim.test_items", 3)
    assert registry.counters["shim.test_items"] == 3
    disable_metrics()
    profiler.count("shim.test_items", 5)
    assert registry.counters["shim.test_items"] == 3


# ---------------------------------------------------------------------
# run manifests
# ---------------------------------------------------------------------

def test_record_campaign_without_recorder_is_noop(tmp_path):
    assert get_recorder() is None
    assert current_manifest_path() is None
    with record_campaign("demo", {"seed": 1}) as record:
        record.ledger_like = None  # the null handle tolerates anything
        record.set("items", 4)
        record.checkpoint(str(tmp_path / "none.jsonl"))
    assert get_recorder() is None


def test_start_run_twice_raises(tmp_path):
    start_run(str(tmp_path / "run"))
    with pytest.raises(ConfigurationError):
        start_run(str(tmp_path / "other"))


def test_run_writes_manifest_and_events(tmp_path):
    trace_dir = tmp_path / "run"
    start_run(str(trace_dir), command="test-campaign")
    assert current_manifest_path() == str(trace_dir / "manifest.json")
    with record_campaign("demo", {"seed": 5, "workers": 2}) as record:
        record.set("items", 4)
    path = finish_run()
    assert path == str(trace_dir / "manifest.json")
    assert current_manifest_path() is None

    with open(path) as handle:
        document = json.load(handle)
    validate_manifest(document)
    assert document["schema"] == MANIFEST_SCHEMA
    assert document["command"] == "test-campaign"
    assert document["seeds"] == [5]
    assert document["workers"] == 2
    campaign = document["campaigns"][0]
    assert campaign["name"] == "demo"
    assert campaign["items"] == 4
    assert campaign["config_hash"] == \
        config_hash({"seed": 5, "workers": 2})

    events = [json.loads(line) for line in
              (trace_dir / "events.jsonl").read_text().splitlines()]
    assert [event["event"] for event in events] == \
        ["start", "campaign_start", "campaign_end", "finish"]
    assert [event["seq"] for event in events] == [0, 1, 2, 3]
    assert events[0]["schema"] == MANIFEST_SCHEMA
    assert all(event["elapsed"] >= 0.0 for event in events)
    # the spool directory is cleaned up after the run
    assert not (trace_dir / "spool").exists()


def test_no_manifest_keeps_events_only(tmp_path):
    trace_dir = tmp_path / "run"
    start_run(str(trace_dir), manifest=False)
    assert current_manifest_path() is None
    assert finish_run() is None
    assert not (trace_dir / "manifest.json").exists()
    assert (trace_dir / "events.jsonl").exists()


def test_config_hash_is_order_independent():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


# ---------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------

def _synthetic_manifest():
    """A fixed, timing-free manifest document for renderer tests."""
    return {
        "schema": MANIFEST_SCHEMA,
        "version": "1.0",
        "command": "train",
        "seeds": [0, 7],
        "workers": 4,
        "campaigns": [
            {"name": "measurement", "meta": {"seed": 0, "workers": 4},
             "config_hash": "a" * 64, "seconds": 12.5, "items": 8,
             "ledger": {"ok": 7, "retried": 1, "timeout": 0,
                        "quarantined": 1},
             "pool_rebuilds": 1, "resumed": 2, "complete": False,
             "checkpoint": "ckpt/train_de0-cv.jsonl"},
            {"name": "tvla", "meta": {"seed": 7},
             "config_hash": "b" * 64, "seconds": 3.25},
        ],
        "cache": {"hits": 10, "misses": 4, "evictions": 1,
                  "disk_hits": 2},
        "metrics": {
            "counters": {"supervise.retries": 1,
                         "trace_cache.device.hits": 10},
            "gauges": {"campaign.workers": 4.0},
            "histograms": {"campaign.capture_seconds": {
                "edges": [0.1, 1.0], "counts": [3, 4, 1],
                "count": 8, "total": 4.2}},
        },
        "spans": {"count": 3, "total_seconds": 15.75,
                  "by_name": {
                      "batch.simulate_many": {"calls": 2,
                                              "seconds": 12.0},
                      "train.pipeline": {"calls": 1, "seconds": 3.75}}},
        "events": "events.jsonl",
    }


def test_validate_manifest_accepts_synthetic():
    document = _synthetic_manifest()
    assert validate_manifest(document) is document


def test_validate_manifest_rejects_non_object():
    with pytest.raises(ConfigurationError, match="JSON object"):
        validate_manifest([1, 2, 3])


def test_validate_manifest_rejects_wrong_schema():
    document = _synthetic_manifest()
    document["schema"] = "repro-manifest/99"
    with pytest.raises(ConfigurationError, match="schema must be"):
        validate_manifest(document)


def test_validate_manifest_collects_every_problem():
    document = _synthetic_manifest()
    del document["cache"]
    del document["spans"]
    with pytest.raises(ConfigurationError) as excinfo:
        validate_manifest(document)
    message = str(excinfo.value)
    assert "'cache'" in message and "'spans'" in message


def test_validate_manifest_rejects_bad_campaigns():
    document = _synthetic_manifest()
    document["campaigns"] = "not-a-list"
    with pytest.raises(ConfigurationError, match="must be a list"):
        validate_manifest(document)
    document["campaigns"] = [{"name": "x"}, 42]
    with pytest.raises(ConfigurationError) as excinfo:
        validate_manifest(document)
    message = str(excinfo.value)
    assert "campaigns[0] missing 'config_hash'" in message
    assert "campaigns[1] must be an object" in message


def test_validate_manifest_rejects_non_object_sections():
    document = _synthetic_manifest()
    document["metrics"] = []
    with pytest.raises(ConfigurationError, match="'metrics'"):
        validate_manifest(document)


# ---------------------------------------------------------------------
# report rendering (golden file)
# ---------------------------------------------------------------------

def _synthetic_journal():
    return {"path": "ckpt/train_de0-cv.jsonl", "schema": JOURNAL_SCHEMA,
            "meta": {"campaign": "measurement", "seed": 0},
            "records": 7, "malformed": 0, "torn_tail": True}


def test_report_matches_golden_file():
    rendered = render_report(_synthetic_manifest(),
                             journal=_synthetic_journal())
    with open(os.path.join(DATA_DIR, "report_golden.md")) as handle:
        assert rendered == handle.read()


def test_report_minimal_manifest():
    document = {"schema": MANIFEST_SCHEMA, "version": "1.0",
                "command": None, "seeds": [], "workers": None,
                "campaigns": [], "cache": {}, "metrics": {},
                "spans": {}, "events": "events.jsonl"}
    rendered = render_report(validate_manifest(document))
    assert rendered.startswith("# Run report: campaign\n")
    assert "## Trace cache" in rendered
    assert "## Counters" not in rendered  # empty sections are omitted


# ---------------------------------------------------------------------
# cross-process span/metric merge through the supervised pool
# ---------------------------------------------------------------------

def _traced_item(index):
    with get_tracer().span("test.item", index=index):
        get_metrics().increment("test.items_done")
        get_profiler().count("test.shim_items")
    return index * 2


def _seeded_item(index):
    rng = np.random.default_rng(spawn_seed(3, index))
    return rng.normal(size=64)


@pytest.mark.parametrize("workers", [1, 4])
def test_cross_process_merge(tmp_path, workers):
    """Worker spans and counters survive the process boundary.

    ``timeout`` forces the pooled path even at workers=1, so both
    parametrizations exercise the spool/merge protocol rather than the
    in-process serial path.
    """
    start_run(str(tmp_path / "run"), command="merge-test")
    try:
        results, ledger = supervised_map(
            _traced_item, list(range(8)), workers=workers, timeout=120.0)
    finally:
        path = finish_run()
    assert results == [index * 2 for index in range(8)]
    assert ledger.complete
    with open(path) as handle:
        document = json.load(handle)
    validate_manifest(document)
    assert document["spans"]["by_name"]["test.item"]["calls"] == 8
    assert document["metrics"]["counters"]["test.items_done"] == 8
    assert document["metrics"]["counters"]["test.shim_items"] == 8


def test_serial_path_records_in_process(tmp_path):
    start_run(str(tmp_path / "run"))
    try:
        supervised_map(_traced_item, list(range(4)), workers=1)
        spans = list(get_tracer().spans)
    finally:
        finish_run()
    assert len(spans) == 4
    assert all(span.pid == os.getpid() for span in spans)


def test_recording_does_not_change_results(tmp_path):
    """Bit-identity: the same campaign with and without recording."""
    plain, _ = supervised_map(_seeded_item, list(range(6)),
                              workers=2, timeout=120.0)
    start_run(str(tmp_path / "run"))
    try:
        recorded, _ = supervised_map(_seeded_item, list(range(6)),
                                     workers=2, timeout=120.0)
    finally:
        finish_run()
    for before, after in zip(plain, recorded):
        assert np.array_equal(before, after)


# ---------------------------------------------------------------------
# CLI: --trace-dir and `repro report`
# ---------------------------------------------------------------------

BALANCE_SOURCE = """
    li t0, 5
    li t1, 3
    beqz t1, skip
    mul t2, t0, t1
skip:
    ebreak
"""


def _run_traced_balance(tmp_path, *extra):
    source = tmp_path / "leaky.s"
    source.write_text(BALANCE_SOURCE)
    trace_dir = tmp_path / "traces"
    arguments = ["--trace-dir", str(trace_dir), *extra,
                 "balance", str(source),
                 "--out", str(tmp_path / "balanced.s")]
    assert main(arguments) == 0
    return trace_dir


def test_cli_trace_dir_writes_manifest(tmp_path, capsys):
    trace_dir = _run_traced_balance(tmp_path)
    output = capsys.readouterr().out
    manifest_path = trace_dir / "manifest.json"
    assert f"run manifest written to {manifest_path}" in output
    with open(manifest_path) as handle:
        document = json.load(handle)
    validate_manifest(document)
    assert document["command"] == "balance"
    assert (trace_dir / "events.jsonl").exists()


def test_cli_no_manifest_flag(tmp_path, capsys):
    trace_dir = _run_traced_balance(tmp_path, "--no-manifest")
    output = capsys.readouterr().out
    assert "run manifest written" not in output
    assert not (trace_dir / "manifest.json").exists()
    assert (trace_dir / "events.jsonl").exists()


def test_cli_report_renders_manifest(tmp_path, capsys):
    trace_dir = _run_traced_balance(tmp_path)
    capsys.readouterr()
    assert main(["report", str(trace_dir / "manifest.json")]) == 0
    output = capsys.readouterr().out
    assert output.startswith("# Run report: balance")
    assert "## Trace cache" in output


def test_cli_report_out_file_and_journal(tmp_path, capsys):
    trace_dir = _run_traced_balance(tmp_path)
    journal = tmp_path / "journal.jsonl"
    journal.write_text(
        json.dumps({"schema": JOURNAL_SCHEMA, "meta": {"seed": 0}})
        + "\n" + json.dumps({"key": "abc", "payload": "…"}) + "\n")
    report_path = tmp_path / "report.md"
    capsys.readouterr()
    assert main(["report", str(trace_dir / "manifest.json"),
                 "--journal", str(journal),
                 "--out", str(report_path)]) == 0
    assert f"report written to {report_path}" in capsys.readouterr().out
    text = report_path.read_text()
    assert "## Checkpoint journal" in text
    assert "- records: 1" in text


def test_cli_report_rejects_bad_json(tmp_path, capsys):
    bad = tmp_path / "manifest.json"
    bad.write_text("{ not json")
    assert main(["report", str(bad)]) == 16
    assert "not valid JSON" in capsys.readouterr().err


def test_cli_report_rejects_bad_schema(tmp_path, capsys):
    bad = tmp_path / "manifest.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    assert main(["report", str(bad)]) == 16
    assert "invalid run manifest" in capsys.readouterr().err


def test_cli_report_rejects_missing_file(tmp_path, capsys):
    assert main(["report", str(tmp_path / "absent.json")]) == 16
    assert "cannot read run manifest" in capsys.readouterr().err


# ---------------------------------------------------------------------
# journal_summary
# ---------------------------------------------------------------------

def _write_journal(path, lines, torn_tail=""):
    path.write_text("\n".join(lines) + "\n" + torn_tail)


def test_journal_summary_counts_records(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_journal(path, [
        json.dumps({"schema": JOURNAL_SCHEMA, "meta": {"seed": 4}}),
        json.dumps({"key": "k1", "payload": "…", "check": "…"}),
        json.dumps({"key": "k2", "payload": "…", "check": "…"}),
    ])
    summary = journal_summary(str(path))
    assert summary["records"] == 2
    assert summary["malformed"] == 0
    assert summary["meta"] == {"seed": 4}
    assert summary["torn_tail"] is False


def test_journal_summary_flags_torn_tail_and_malformed(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_journal(path, [
        json.dumps({"schema": JOURNAL_SCHEMA, "meta": {}}),
        "{ corrupt line",
        json.dumps({"key": "k1"}),
    ], torn_tail='{"key": "k2", "payl')
    summary = journal_summary(str(path))
    assert summary["records"] == 1
    assert summary["malformed"] == 1
    assert summary["torn_tail"] is True


def test_journal_summary_rejects_missing_and_empty(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        journal_summary(str(tmp_path / "absent.jsonl"))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(CheckpointError, match="no header"):
        journal_summary(str(empty))


def test_journal_summary_rejects_wrong_schema(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_journal(path, [json.dumps({"schema": "other/1"})])
    with pytest.raises(CheckpointError, match="unsupported journal"):
        journal_summary(str(path))
