"""Tests for the whole-program analysis layer (``tools/analysis``).

Covers the :class:`ProjectIndex` (module resolution, re-export and
star-import chasing, import cycles), the :class:`CallGraph` (including
the name-based dynamic-call fallback), the three interprocedural rule
families (``D201`` seed provenance, ``E601`` exit-code contracts,
``X701`` IPC hygiene) over fixture trees, the incremental cache
(cold/warm/tampered runs must render byte-identical reports), the
``E000`` syntax-error contract, the ``--changed-only`` scoping, and the
SARIF renderer.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from dataclasses import replace

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.analysis import (AnalysisConfig, Analyzer,  # noqa: E402
                            check_source)
from tools.analysis.baseline import apply_baseline  # noqa: E402
from tools.analysis.callgraph import (CallGraph,  # noqa: E402
                                      ExceptionHierarchy)
from tools.analysis.cli import EXIT_CONFIG  # noqa: E402
from tools.analysis.cli import _git_changed_files  # noqa: E402
from tools.analysis.cli import main as lint_main  # noqa: E402
from tools.analysis.core import (Finding, ScanResult,  # noqa: E402
                                 SyntaxErrorRule, UnusedSuppressionRule)
from tools.analysis.project import (ModuleRecord,  # noqa: E402
                                    ProjectIndex, module_name_for)
from tools.analysis.report import render_json, render_sarif  # noqa: E402
from tools.analysis.rules import all_rules  # noqa: E402
from tools.analysis.rules.contracts import ExitCodeTableRule  # noqa: E402
from tools.analysis.rules.determinism import UnseededRngRule  # noqa: E402
from tools.analysis.rules.wholeprogram import (  # noqa: E402
    ExitContractRule, IpcHygieneRule, SeedProvenanceRule)


def write_tree(root, files):
    """Materialize ``{relative path: dedented source}`` under ``root``."""
    for relative, source in files.items():
        path = os.path.join(str(root), relative)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(textwrap.dedent(source))


def fixture_config(**overrides):
    """Config aimed at a fixture tree: scan everything from its root."""
    base = replace(AnalysisConfig(), paths=["."], source_roots=["."],
                   cli_modules=["cli.py"])
    return replace(base, **overrides) if overrides else base


def build_index(root, config, rules=()):
    """The ProjectIndex an Analyzer would build over ``root``."""
    analyzer = Analyzer(list(rules), config, root=str(root))
    files = analyzer.python_files(None)
    records = analyzer._collect_records(files, needs_index=True)
    return ProjectIndex(records, config, str(root))


# ---------------------------------------------------------------------------
# ProjectIndex: module naming, resolution, import graph
# ---------------------------------------------------------------------------
class TestProjectIndex:
    def test_module_name_for_source_roots(self):
        roots = ["src", "."]
        assert module_name_for("src/repro/cli.py", roots) == \
            ("repro.cli", False)
        assert module_name_for("tools/analysis/__init__.py", roots) == \
            ("tools.analysis", True)
        assert module_name_for("README.md", roots) is None
        assert module_name_for("src/bad-name/x.py", roots) is None

    def test_resolve_through_init_reexport(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "from .impl import thing\n",
            "pkg/impl.py": "def thing():\n    return 1\n",
        })
        index = build_index(tmp_path, fixture_config())
        assert index.resolve("pkg.thing") == \
            ("function", "pkg.impl", "thing")
        assert index.resolve("pkg.impl.thing") == \
            ("function", "pkg.impl", "thing")
        assert index.resolve("pkg.missing") is None
        assert index.resolve("numpy.random.normal") is None

    def test_resolve_through_star_import(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "from .impl import *\n",
            "pkg/impl.py": "class Thing:\n    pass\n",
        })
        index = build_index(tmp_path, fixture_config())
        assert index.resolve("pkg.Thing") == \
            ("class", "pkg.impl", "Thing")

    def test_import_cycle_terminates(self, tmp_path):
        write_tree(tmp_path, {
            "a.py": "import b\n\ndef fa():\n    return b.fb()\n",
            "b.py": "import a\n\ndef fb():\n    return a.fa()\n",
        })
        index = build_index(tmp_path, fixture_config())
        graph = index.import_graph()
        assert graph["a"] == {"b"} and graph["b"] == {"a"}
        # resolution across the cycle still terminates (visited set)
        assert index.resolve("a.fa") == ("function", "a", "fa")
        assert index.dependents_closure(["a"]) == {"a", "b"}

    def test_dependents_closure_is_transitive(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": "X = 1\n",
            "mid.py": "import base\n",
            "top.py": "import mid\n",
            "other.py": "Y = 2\n",
        })
        index = build_index(tmp_path, fixture_config())
        assert index.dependents_closure(["base"]) == \
            {"base", "mid", "top"}
        assert index.dependents_closure(["other"]) == {"other"}


# ---------------------------------------------------------------------------
# CallGraph: dynamic-call fallback, exception hierarchy
# ---------------------------------------------------------------------------
class TestCallGraph:
    def test_dynamic_call_name_fallback(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": """\
                def double(x):
                    return 2 * x

                def apply(fn, x):
                    return fn(x)
                """,
        })
        index = build_index(tmp_path, fixture_config())
        graph = CallGraph(index)
        assert list(graph.resolve_callable(
            "dyn", "double", cls=None, module="m")) == [("m", "double")]
        assert list(graph.resolve_callable(
            "dyn", "nonesuch", cls=None, module="m")) == []

    def test_dynamic_fallback_respects_fanout_cap(self, tmp_path):
        write_tree(tmp_path, {
            "a.py": "def work(x):\n    return x\n",
            "b.py": "def work(x):\n    return -x\n",
        })
        config = fixture_config(dynamic_call_fanout=1)
        graph = CallGraph(build_index(tmp_path, config))
        # two candidates over the cap of one: opaque, no edges
        assert list(graph.resolve_callable(
            "dyn", "work", cls=None, module="a")) == []

    def test_exception_hierarchy_crosses_modules(self, tmp_path):
        write_tree(tmp_path, {
            "errors.py": """\
                class ReproError(Exception):
                    pass
                """,
            "lib.py": """\
                from errors import ReproError

                class ProbeError(ReproError, ValueError):
                    pass
                """,
        })
        hierarchy = ExceptionHierarchy(
            build_index(tmp_path, fixture_config()))
        assert "ReproError" in hierarchy.ancestors("ProbeError")
        assert "ValueError" in hierarchy.ancestors("ProbeError")
        assert hierarchy.catches("ProbeError", ["ReproError"])
        assert not hierarchy.catches("ReproError", ["ProbeError"])
        # unknown names are assumed Exception descendants, so a broad
        # handler still counts as catching them
        assert hierarchy.catches("MysteryError", ["Exception"])


# ---------------------------------------------------------------------------
# D201 seed provenance
# ---------------------------------------------------------------------------
def run_fixture(root, config, rules):
    return Analyzer(list(rules), config, root=str(root)).run()


class TestSeedProvenance:
    CONFIG = dict(seed_entry_points=["run_campaign", "Sim.simulate"])

    def test_reachable_unseeded_rng_is_found(self, tmp_path):
        write_tree(tmp_path, {
            "sim.py": """\
                import numpy as np

                def helper():
                    return np.random.normal()

                def run_campaign(n):
                    return [helper() for _ in range(n)]
                """,
        })
        config = fixture_config(**self.CONFIG)
        result = run_fixture(tmp_path, config, [SeedProvenanceRule()])
        assert [f.rule for f in result.findings] == ["D201"]
        finding = result.findings[0]
        assert finding.path == "sim.py" and finding.line == 4
        assert "run_campaign -> helper" in finding.message

    def test_unreachable_rng_is_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "sim.py": """\
                import numpy as np

                def orphan():
                    return np.random.normal()

                def run_campaign(rng, n):
                    return [rng.normal() for _ in range(n)]
                """,
        })
        config = fixture_config(**self.CONFIG)
        result = run_fixture(tmp_path, config, [SeedProvenanceRule()])
        assert result.findings == []

    def test_method_entry_and_cross_module_reach(self, tmp_path):
        write_tree(tmp_path, {
            "noise.py": """\
                import random

                def jitter():
                    return random.random()
                """,
            "sim.py": """\
                from noise import jitter

                class Sim:
                    def simulate(self):
                        return jitter()
                """,
        })
        config = fixture_config(**self.CONFIG)
        result = run_fixture(tmp_path, config, [SeedProvenanceRule()])
        assert [(f.path, f.rule) for f in result.findings] == \
            [("noise.py", "D201")]
        assert "Sim.simulate" in result.findings[0].message

    def test_suppression_tag_routes_to_suppressed(self, tmp_path):
        write_tree(tmp_path, {
            "sim.py": """\
                import numpy as np

                def run_campaign(n):
                    # repro: allow[D201] fixture exercises routing
                    return np.random.normal()
                """,
        })
        config = fixture_config(**self.CONFIG)
        result = run_fixture(tmp_path, config, [SeedProvenanceRule()])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["D201"]


# ---------------------------------------------------------------------------
# E601 exit-code contracts
# ---------------------------------------------------------------------------
class TestExitContract:
    def test_escaping_exception_is_flagged_at_raise_site(self, tmp_path):
        write_tree(tmp_path, {
            "cli.py": """\
                from lib import work

                def _cmd_go(args):
                    return work(args)
                """,
            "lib.py": """\
                def work(args):
                    if not args:
                        raise ValueError("empty")
                    return 0
                """,
        })
        result = run_fixture(tmp_path, fixture_config(),
                             [ExitContractRule()])
        assert [(f.path, f.line, f.rule) for f in result.findings] == \
            [("lib.py", 3, "E601")]
        assert "_cmd_go" in result.findings[0].message

    def test_handled_hierarchy_is_covered(self, tmp_path):
        write_tree(tmp_path, {
            "errors.py": """\
                class ReproError(Exception):
                    exit_code = 10
                """,
            "cli.py": """\
                from lib import work

                def _cmd_go(args):
                    return work(args)
                """,
            "lib.py": """\
                from errors import ReproError

                class ProbeError(ReproError, ValueError):
                    pass

                def work(args):
                    if not args:
                        raise ProbeError("empty")
                    return 0
                """,
        })
        result = run_fixture(tmp_path, fixture_config(),
                             [ExitContractRule()])
        assert result.findings == []

    def test_caught_exception_does_not_escape(self, tmp_path):
        write_tree(tmp_path, {
            "cli.py": """\
                from lib import work

                def _cmd_go(args):
                    try:
                        return work(args)
                    except ValueError:
                        return 1
                """,
            "lib.py": """\
                def work(args):
                    if not args:
                        raise ValueError("empty")
                    return 0
                """,
        })
        result = run_fixture(tmp_path, fixture_config(),
                             [ExitContractRule()])
        assert result.findings == []

    def test_exempt_names_never_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "cli.py": """\
                def _cmd_go(args):
                    raise SystemExit(2)
                """,
        })
        result = run_fixture(tmp_path, fixture_config(),
                             [ExitContractRule()])
        assert result.findings == []


# ---------------------------------------------------------------------------
# X701 IPC hygiene
# ---------------------------------------------------------------------------
class TestIpcHygiene:
    def test_custom_class_across_boundary_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "work.py": """\
                class Payload:
                    pass

                def item(x):
                    return Payload()

                def run(xs):
                    return parallel_map(item, xs)
                """,
        })
        config = fixture_config(ipc_allowlist=[])
        result = run_fixture(tmp_path, config, [IpcHygieneRule()])
        assert [(f.path, f.line, f.rule) for f in result.findings] == \
            [("work.py", 5, "X701")]
        assert "Payload" in result.findings[0].message

    def test_allowlisted_class_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "work.py": """\
                class Payload:
                    pass

                def item(x):
                    return Payload()

                def run(xs):
                    return parallel_map(item, xs)
                """,
        })
        config = fixture_config(ipc_allowlist=["Payload"])
        result = run_fixture(tmp_path, config, [IpcHygieneRule()])
        assert result.findings == []

    def test_transitive_return_chain_is_chased(self, tmp_path):
        write_tree(tmp_path, {
            "work.py": """\
                class Payload:
                    pass

                def build():
                    return Payload()

                def item(x):
                    return build()

                def run(xs):
                    return supervised_map(item, xs)
                """,
        })
        config = fixture_config(ipc_allowlist=[])
        result = run_fixture(tmp_path, config, [IpcHygieneRule()])
        assert [(f.path, f.line) for f in result.findings] == \
            [("work.py", 5)]

    def test_json_able_returns_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "work.py": """\
                def item(x):
                    return {"value": x, "twice": 2 * x}

                def run(xs):
                    return parallel_map(item, xs)
                """,
        })
        config = fixture_config(ipc_allowlist=[])
        result = run_fixture(tmp_path, config, [IpcHygieneRule()])
        assert result.findings == []


# ---------------------------------------------------------------------------
# E000 syntax-error contract
# ---------------------------------------------------------------------------
class TestSyntaxErrorContract:
    BROKEN = "def broken(:\n    pass\n"

    def test_check_source_reports_e000(self):
        result = check_source(self.BROKEN, [SyntaxErrorRule()])
        assert [f.rule for f in result.findings] == ["E000"]
        again = check_source(self.BROKEN, [SyntaxErrorRule()])
        assert result.findings == again.findings  # deterministic

    def test_check_source_without_rule_raises(self):
        with pytest.raises(SyntaxError):
            check_source(self.BROKEN, [UnseededRngRule()])

    def test_broken_file_does_not_abort_the_run(self, tmp_path):
        write_tree(tmp_path, {
            "bad.py": self.BROKEN,
            "good.py": "import numpy as np\nx = np.random.normal()\n",
        })
        result = run_fixture(tmp_path, fixture_config(),
                             [SyntaxErrorRule(), UnseededRngRule()])
        rules = [(f.path, f.rule) for f in result.findings]
        assert ("bad.py", "E000") in rules
        assert ("good.py", "D101") in rules  # the rest still ran
        assert result.checked_files == 2

    def test_e000_position_is_stable(self, tmp_path):
        write_tree(tmp_path, {"bad.py": self.BROKEN})
        first = run_fixture(tmp_path, fixture_config(),
                            [SyntaxErrorRule()])
        second = run_fixture(tmp_path, fixture_config(),
                             [SyntaxErrorRule()])
        assert first.findings == second.findings
        assert first.findings[0].line == 1


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------
FIXTURE_TREE = {
    "pkg/__init__.py": "from .noise import jitter\n",
    "pkg/noise.py": """\
        import random

        def jitter():
            return random.random()
        """,
    "pkg/campaign.py": """\
        from pkg import jitter

        def run_campaign(n):
            return [jitter() for _ in range(n)]
        """,
}


def render_run(root, config, rules, cache_dir=None):
    analyzer = Analyzer(list(rules), config, root=str(root),
                        cache_dir=cache_dir)
    result = analyzer.run()
    new, stale = apply_baseline(result.findings, [])
    return render_json(result, new, stale), result


class TestIncrementalCache:
    CONFIG = dict(seed_entry_points=["run_campaign"])

    def rules(self):
        return [SeedProvenanceRule(), UnseededRngRule(),
                SyntaxErrorRule()]

    def test_cold_warm_and_uncached_are_byte_identical(self, tmp_path):
        write_tree(tmp_path, FIXTURE_TREE)
        config = fixture_config(**self.CONFIG)
        cache = str(tmp_path / ".cache")
        cold, _ = render_run(tmp_path, config, self.rules(), cache)
        warm, _ = render_run(tmp_path, config, self.rules(), cache)
        bare, _ = render_run(tmp_path, config, self.rules(), None)
        assert cold == warm == bare
        assert os.listdir(cache)  # the cache was actually populated

    def test_edit_invalidates_dependents(self, tmp_path):
        write_tree(tmp_path, FIXTURE_TREE)
        config = fixture_config(**self.CONFIG)
        cache = str(tmp_path / ".cache")
        _, before = render_run(tmp_path, config, self.rules(), cache)
        assert any(f.rule == "D201" for f in before.findings)
        # fix the provenance leak in the *imported* module; the cached
        # records of its dependents must not mask the change
        write_tree(tmp_path, {"pkg/noise.py": """\
            def jitter(rng=None):
                return 0.5 if rng is None else rng.random()
            """})
        warm, after = render_run(tmp_path, config, self.rules(), cache)
        cold, again = render_run(tmp_path, config, self.rules(), None)
        assert warm == cold
        assert not any(f.rule == "D201" for f in after.findings)

    def test_tampered_cache_entry_is_a_miss(self, tmp_path):
        write_tree(tmp_path, FIXTURE_TREE)
        config = fixture_config(**self.CONFIG)
        cache = str(tmp_path / ".cache")
        cold, _ = render_run(tmp_path, config, self.rules(), cache)
        for name in os.listdir(cache):
            with open(os.path.join(cache, name), "w") as handle:
                handle.write("{not json")
        warm, _ = render_run(tmp_path, config, self.rules(), cache)
        assert cold == warm

    def test_config_change_invalidates_the_cache(self, tmp_path):
        write_tree(tmp_path, FIXTURE_TREE)
        config = fixture_config(**self.CONFIG)
        cache = str(tmp_path / ".cache")
        _, before = render_run(tmp_path, config, self.rules(), cache)
        assert any(f.rule == "D201" for f in before.findings)
        retuned = fixture_config(seed_entry_points=["nonesuch"])
        _, after = render_run(tmp_path, retuned, self.rules(), cache)
        assert not any(f.rule == "D201" for f in after.findings)


# ---------------------------------------------------------------------------
# --changed-only scoping
# ---------------------------------------------------------------------------
class TestChangedOnly:
    def test_changed_scope_includes_dependents(self, tmp_path):
        write_tree(tmp_path, FIXTURE_TREE)
        config = fixture_config()
        analyzer = Analyzer([UnseededRngRule()], config,
                            root=str(tmp_path))
        scope = analyzer.changed_scope(["pkg/noise.py"])
        assert scope == ["pkg/__init__.py", "pkg/campaign.py",
                         "pkg/noise.py"]
        assert analyzer.changed_scope(["pkg/campaign.py"]) == \
            ["pkg/campaign.py"]
        assert analyzer.changed_scope(["README.md"]) == []

    def test_cli_rejects_changed_only_with_paths(self, capsys):
        assert lint_main(["--changed-only", "src"]) == EXIT_CONFIG
        assert "positional paths" in capsys.readouterr().err

    def test_cli_exits_16_without_git(self, monkeypatch, capsys):
        monkeypatch.setattr(shutil, "which", lambda name: None)
        assert lint_main(["--changed-only"]) == EXIT_CONFIG
        assert "git" in capsys.readouterr().err

    @pytest.mark.skipif(shutil.which("git") is None,
                        reason="git not installed")
    def test_git_changed_files_in_temp_repo(self, tmp_path):
        def git(*argv):
            subprocess.run(["git", *argv], cwd=str(tmp_path), check=True,
                           capture_output=True)

        write_tree(tmp_path, {"a.py": "A = 1\n", "b.py": "B = 2\n"})
        git("init", "-q")
        git("-c", "user.email=t@t", "-c", "user.name=t", "add", ".")
        git("-c", "user.email=t@t", "-c", "user.name=t",
            "commit", "-q", "-m", "seed")
        with pytest.raises(ValueError):  # no origin/main yet
            _git_changed_files(str(tmp_path))
        git("update-ref", "refs/remotes/origin/main", "HEAD")
        assert _git_changed_files(str(tmp_path)) == []
        write_tree(tmp_path, {"b.py": "B = 3\n"})
        assert _git_changed_files(str(tmp_path)) == ["b.py"]


# ---------------------------------------------------------------------------
# SARIF renderer
# ---------------------------------------------------------------------------
class TestSarif:
    def sample(self):
        finding = Finding(path="src/x.py", line=3, col=4, rule="D101",
                          message="unseeded")
        stale = Finding(path="src/y.py", line=0, col=0, rule="E304",
                        message="gone")
        result = ScanResult(findings=[finding], suppressed=[],
                            checked_files=2)
        rules = [UnseededRngRule(), ExitCodeTableRule()]
        return render_sarif(result, [finding], [stale], rules)

    def test_required_properties_and_levels(self):
        document = json.loads(self.sample())
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-2.1.0.json")
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert ids == ["D101", "E304"]
        levels = [entry["level"] for entry in run["results"]]
        assert levels == ["error", "note"]
        region = run["results"][1]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] == 1  # clamped to 1-based
        assert region["startColumn"] == 1

    def test_render_is_byte_stable(self):
        assert self.sample() == self.sample()

    def test_cli_emits_valid_sarif(self, tmp_path, capsys):
        out = str(tmp_path / "report.sarif")
        code = lint_main(["--format", "sarif", "--select", "D101",
                          "--out", out, "src"])
        assert code == 0
        with open(out) as handle:
            document = json.load(handle)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# A405 stale suppressions
# ---------------------------------------------------------------------------
class TestUnusedSuppression:
    def test_stale_tag_is_flagged(self):
        result = check_source(
            "x = 1  # repro: allow[E304] nothing to suppress here\n",
            [ExitCodeTableRule(), UnusedSuppressionRule()])
        assert [f.rule for f in result.findings] == ["A405"]
        assert "E304" in result.findings[0].message

    def test_working_tag_is_not_stale(self):
        result = check_source(
            "import sys\n"
            "sys.exit(99)  # repro: allow[E304] fixture\n",
            [ExitCodeTableRule(), UnusedSuppressionRule()])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["E304"]

    def test_tag_for_inactive_rule_is_ignored(self):
        result = check_source(
            "x = 1  # repro: allow[D101] rule not in this run\n",
            [ExitCodeTableRule(), UnusedSuppressionRule()])
        assert result.findings == []

    def test_a405_is_itself_suppressible(self):
        result = check_source(
            "x = 1  # repro: allow[E304, A405] stale kept on purpose\n",
            [ExitCodeTableRule(), UnusedSuppressionRule()])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["A405"]

    def test_program_rule_suppressions_count_as_used(self, tmp_path):
        write_tree(tmp_path, {
            "sim.py": """\
                import numpy as np

                def run_campaign(n):
                    # repro: allow[D201] routed via the program pass
                    return np.random.normal()
                """,
        })
        config = fixture_config(seed_entry_points=["run_campaign"])
        result = run_fixture(
            tmp_path, config,
            [SeedProvenanceRule(), UnusedSuppressionRule()])
        assert result.findings == []  # no A405: the tag did suppress
        assert [f.rule for f in result.suppressed] == ["D201"]


# ---------------------------------------------------------------------------
# repo-level contracts
# ---------------------------------------------------------------------------
class TestRepoContracts:
    def test_new_error_classes_carry_documented_exit_codes(self):
        source = os.path.join(REPO_ROOT, "src")
        if source not in sys.path:
            sys.path.insert(0, source)
        from repro.robustness import (AssemblerError, MitigationError,
                                      ReproError, TraceCodecError)
        assert issubclass(AssemblerError, ReproError)
        assert issubclass(AssemblerError, ValueError)
        assert AssemblerError.exit_code == 20
        assert TraceCodecError.exit_code == 21
        assert MitigationError.exit_code == 22
        # the historical homes still export the same classes
        from repro.isa.assembler import AssemblerError as FromIsa
        from repro.leakage.mitigation import MitigationError as FromLeak
        from repro.uarch.tracecodec import TraceCodecError as FromCodec
        assert FromIsa is AssemblerError
        assert FromCodec is TraceCodecError
        assert FromLeak is MitigationError

    def test_repo_cold_and_cached_runs_are_byte_identical(self, tmp_path):
        from tools.analysis.config import load_config
        config = load_config(REPO_ROOT)
        cache = str(tmp_path / "cache")
        cold, _ = render_run(REPO_ROOT, config, all_rules(), None)
        warm, _ = render_run(REPO_ROOT, config, all_rules(), cache)
        again, _ = render_run(REPO_ROOT, config, all_rules(), cache)
        assert cold == warm == again


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
