"""Direct tests for the trainer's fitting functions (repro.core.training)."""

import numpy as np
import pytest

from repro.core import fit_beta, fit_kernel, train_emsim
from repro.core.microbench import isolation_probe
from repro.hardware import HardwareDevice, ProbePosition
from repro.signal import DampedSineKernel, reconstruct


def test_fit_kernel_recovers_parameters(rng):
    true_kernel = DampedSineKernel(t0=0.30, theta=3.5)
    amplitudes = rng.uniform(0.3, 1.5, 40)
    signal = reconstruct(amplitudes, true_kernel, 20)
    fitted = fit_kernel(signal, 20,
                        t0_grid=np.linspace(0.2, 0.4, 9),
                        theta_grid=np.linspace(2.0, 5.0, 7))
    assert abs(fitted.t0 - 0.30) < 0.04
    assert abs(fitted.theta - 3.5) < 0.6


def test_fit_kernel_prefers_true_shape_over_neighbors(rng):
    true_kernel = DampedSineKernel(t0=0.25, theta=4.0)
    signal = reconstruct(rng.uniform(0.2, 1.2, 30), true_kernel, 20)
    fitted = fit_kernel(signal, 20, t0_grid=[0.15, 0.25, 0.40],
                        theta_grid=[4.0])
    assert fitted.t0 == 0.25


@pytest.mark.parametrize("position", [ProbePosition(2.0, 1.0, 6.0),
                                      ProbePosition(0.0, 0.0, 9.0)])
def test_fit_beta_scales_down_with_distance(position):
    device = HardwareDevice()
    model = train_emsim(device)
    moved = HardwareDevice(probe=position)
    beta = fit_beta(model, moved,
                    [isolation_probe("add", rs1_value=0xF0F0F0F0),
                     isolation_probe("lw", mem_offset=256),
                     isolation_probe("mul", rs1_value=0x12345678,
                                     rs2_value=0x9ABCDEF0)])
    assert set(beta) == {"F", "D", "E", "M", "W"}
    # farther probe -> weaker coupling in the well-excited stages
    for stage in ("F", "D", "E", "W"):
        assert 0.0 < beta[stage] < 1.1, (stage, beta)
    assert np.mean(list(beta.values())) < 1.0


def test_fit_beta_is_identity_at_training_position():
    device = HardwareDevice()
    model = train_emsim(device)
    beta = fit_beta(model, device,
                    [isolation_probe("add", rs1_value=0xF0F0F0F0),
                     isolation_probe("lw", mem_offset=256),
                     isolation_probe("mul", rs1_value=0x12345678,
                                     rs2_value=0x9ABCDEF0)])
    for stage in ("F", "D", "E", "W"):
        assert abs(beta[stage] - 1.0) < 0.6, (stage, beta)
