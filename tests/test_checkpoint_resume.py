"""Checkpoint journal crash-safety and bit-identical campaign resume.

Covers the journal file format (torn-tail recovery, checksum and
metadata validation), the supervised-map resume path, and the
end-to-end claim: an interrupted campaign, resumed from its journal,
produces bit-identical arrays to an uninterrupted run.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import measurement_campaign
from repro.hardware import HardwareDevice
from repro.leakage.tvla import collect_tvla_traces, tvla
from repro.parallel import supervised_map
from repro.robustness import (CheckpointError, CheckpointJournal,
                              ConfigurationError, JOURNAL_SCHEMA,
                              content_key)
from repro.workloads import RandomProgramBuilder

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _programs(count, length=16, seed=5):
    builder = RandomProgramBuilder(seed=seed)
    return [builder.program(length, name=f"prog_{i:03d}")
            for i in range(count)]


def _truncate_journal(path, keep_records):
    """Keep the header plus the first ``keep_records`` records."""
    with open(path, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    with open(path, "wb") as handle:
        handle.writelines(lines[:1 + keep_records])


class TestContentKey:
    def test_deterministic_and_distinct(self):
        assert content_key("a", 1) == content_key("a", 1)
        assert content_key("a", 1) != content_key("a", 2)
        # length prefixing: part boundaries matter
        assert content_key("ab", "c") != content_key("a", "bc")

    def test_bytes_pass_raw(self):
        assert content_key(b"xy") != content_key("xy")
        assert content_key(b"xy") == content_key(b"xy")


class TestJournalRoundTrip:
    def test_record_lookup_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        payload = {"x": np.arange(5.0), "y": "text"}
        with CheckpointJournal(path, meta={"campaign": "t"}) as journal:
            journal.record("k0", 0, payload)
            journal.record("k1", 1, [1, 2, 3])
            assert "k0" in journal and "k2" not in journal
            assert len(journal) == 2
            assert journal.resumed_records == 0
        reopened = CheckpointJournal(path, meta={"campaign": "t"})
        assert reopened.resumed_records == 2
        assert reopened.keys() == ["k0", "k1"]
        restored = reopened.lookup("k0")
        assert np.array_equal(restored["x"], payload["x"])
        assert restored["x"].dtype == payload["x"].dtype
        assert reopened.lookup("k1") == [1, 2, 3]
        reopened.close()

    def test_numpy_bit_exact(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        rng = np.random.default_rng(0)
        array = rng.normal(size=257)
        with CheckpointJournal(path) as journal:
            journal.record("a", 0, array)
        with CheckpointJournal(path) as journal:
            assert journal.lookup("a").tobytes() == array.tobytes()

    def test_resume_false_truncates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as journal:
            journal.record("a", 0, 1)
        with CheckpointJournal(path, resume=False) as journal:
            assert len(journal) == 0
        with CheckpointJournal(path) as journal:
            assert "a" not in journal


class TestJournalRecovery:
    def _journal_with_records(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path, meta={"seed": 7}) as journal:
            journal.record("k0", 0, np.arange(3.0))
            journal.record("k1", 1, np.arange(4.0))
        return path

    def test_torn_tail_truncated(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"key": "k2", "inde')  # crash mid-append
        journal = CheckpointJournal(path, meta={"seed": 7})
        assert journal.resumed_records == 2
        journal.close()
        assert os.path.getsize(path) == intact

    def test_mid_file_corruption_raises(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[1] = b"<<not json>>\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointJournal(path, meta={"seed": 7})

    def test_checksum_mismatch_raises(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["sha256"] = "0" * 64
        lines[1] = (json.dumps(record, sort_keys=True) + "\n").encode()
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(CheckpointError, match="checksum"):
            CheckpointJournal(path, meta={"seed": 7})

    def test_schema_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"schema": "other/9", "meta": {}}\n')
        with pytest.raises(CheckpointError, match="schema"):
            CheckpointJournal(path)
        assert JOURNAL_SCHEMA == "repro-checkpoint/1"

    def test_meta_mismatch_raises(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        with pytest.raises(CheckpointError, match="metadata"):
            CheckpointJournal(path, meta={"seed": 8})
        # an empty campaign meta accepts any journal
        journal = CheckpointJournal(path)
        assert journal.meta == {"seed": 7}
        journal.close()

    def test_missing_header_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write("")
        with pytest.raises(CheckpointError, match="header"):
            CheckpointJournal(path)


def double(value):
    return value * 2


class TestSupervisedMapResume:
    def test_journal_requires_key_for(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(ConfigurationError, match="key_for"):
            supervised_map(double, [1, 2], journal=journal)
        journal.close()

    def test_resume_skips_completed_items(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        key_for = lambda index, item: content_key("d", index, item)
        with CheckpointJournal(path) as journal:
            first, _ = supervised_map(double, [1, 2, 3, 4],
                                      journal=journal, key_for=key_for)
        _truncate_journal(path, keep_records=2)
        with CheckpointJournal(path) as journal:
            assert journal.resumed_records == 2
            second, ledger = supervised_map(double, [1, 2, 3, 4],
                                            journal=journal,
                                            key_for=key_for)
        assert second == first == [2, 4, 6, 8]
        assert ledger.resumed == [0, 1]
        assert [o.attempts for o in ledger.outcomes] == [0, 0, 1, 1]


class TestCampaignResume:
    def test_resume_bit_identical(self, tmp_path):
        """Interrupt at 50%, resume, compare arrays bit-exactly."""
        programs = _programs(6)
        clean = measurement_campaign(HardwareDevice(seed=3), programs,
                                     repetitions=8, workers=1, seed=9)
        path = str(tmp_path / "campaign.jsonl")
        full = measurement_campaign(HardwareDevice(seed=3), programs,
                                    repetitions=8, workers=1, seed=9,
                                    checkpoint=path)
        _truncate_journal(path, keep_records=3)  # "interrupted" at 50%
        resumed = measurement_campaign(HardwareDevice(seed=3), programs,
                                       repetitions=8, workers=1, seed=9,
                                       checkpoint=path, resume=True)
        for a, b, c in zip(clean, full, resumed):
            assert np.array_equal(a.signal, b.signal)
            assert np.array_equal(a.signal, c.signal)
            assert np.array_equal(a.amplitudes, c.amplitudes)

    def test_resume_under_different_config_rejected(self, tmp_path):
        programs = _programs(2)
        path = str(tmp_path / "campaign.jsonl")
        measurement_campaign(HardwareDevice(seed=3), programs,
                             repetitions=8, workers=1, seed=9,
                             checkpoint=path)
        with pytest.raises(CheckpointError, match="metadata"):
            measurement_campaign(HardwareDevice(seed=3), programs,
                                 repetitions=8, workers=1, seed=10,
                                 checkpoint=path, resume=True)

    def test_hard_kill_then_resume(self, tmp_path):
        """A campaign process dying mid-run (os._exit, as a stand-in
        for SIGKILL/power loss) leaves a journal that resumes to the
        same results as a never-interrupted run."""
        path = str(tmp_path / "j.jsonl")
        script = (
            "import os, sys\n"
            "from repro.parallel import supervised_map\n"
            "from repro.robustness import CheckpointJournal, content_key\n"
            "def work(i):\n"
            "    if i == 4:\n"
            "        os._exit(9)\n"
            "    return i * 3\n"
            "key_for = lambda index, item: content_key('kill', item)\n"
            "with CheckpointJournal(sys.argv[1]) as journal:\n"
            "    supervised_map(work, range(8), journal=journal,\n"
            "                   key_for=key_for)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        process = subprocess.run(
            [sys.executable, "-c", script, path],
            env=env, cwd=REPO, timeout=300)
        assert process.returncode == 9
        # items 0..3 must have been fsync'd before the death
        with CheckpointJournal(path) as journal:
            assert journal.resumed_records == 4
            key_for = lambda index, item: content_key("kill", item)
            results, ledger = supervised_map(
                lambda i: i * 3, range(8),
                journal=journal, key_for=key_for)
        assert results == [i * 3 for i in range(8)]
        assert ledger.resumed == [0, 1, 2, 3]


class TestTvlaResume:
    def test_t_trace_bit_identical(self, tmp_path):
        def source(data):
            folded = np.asarray(data, dtype=float)
            return np.concatenate([folded, folded[::-1] * 0.5])

        def collect(checkpoint=None, resume=False):
            return collect_tvla_traces(
                source, [3, 1, 4, 1, 5], num_traces=12,
                rng=np.random.default_rng(21),
                checkpoint=checkpoint, resume=resume)

        clean_fixed, clean_random = collect()
        path = str(tmp_path / "tvla.jsonl")
        collect(checkpoint=path)
        _truncate_journal(path, keep_records=12)  # half of 24 items
        fixed, random_traces = collect(checkpoint=path, resume=True)
        for a, b in zip(clean_fixed + clean_random,
                        fixed + random_traces):
            assert np.array_equal(a, b)
        reference = tvla(clean_fixed, clean_random)
        resumed = tvla(fixed, random_traces)
        assert np.array_equal(reference.t_values, resumed.t_values)
