"""Tests for architectural semantics (repro.uarch.isa_exec)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, assemble
from repro.uarch.isa_exec import (GoldenSimulator, alu_result, branch_taken,
                                  muldiv_result)

MASK32 = 0xFFFFFFFF
u32 = st.integers(0, MASK32)


def _signed(value):
    return value - (1 << 32) if value & (1 << 31) else value


# ----------------------------------------------------------------------
# ALU semantics
# ----------------------------------------------------------------------
@given(u32, u32)
def test_add_sub_wraparound(a, b):
    add = Instruction("add", rd=1, rs1=2, rs2=3)
    sub = Instruction("sub", rd=1, rs1=2, rs2=3)
    assert alu_result(add, a, b, 0) == (a + b) & MASK32
    assert alu_result(sub, a, b, 0) == (a - b) & MASK32


@given(u32, u32)
def test_logic_ops(a, b):
    for name, expected in (("and", a & b), ("or", a | b), ("xor", a ^ b)):
        instr = Instruction(name, rd=1, rs1=2, rs2=3)
        assert alu_result(instr, a, b, 0) == expected


@given(u32, u32)
def test_comparisons(a, b):
    slt = Instruction("slt", rd=1, rs1=2, rs2=3)
    sltu = Instruction("sltu", rd=1, rs1=2, rs2=3)
    assert alu_result(slt, a, b, 0) == int(_signed(a) < _signed(b))
    assert alu_result(sltu, a, b, 0) == int(a < b)


@given(u32, st.integers(0, 31))
def test_shifts(a, shamt):
    sll = Instruction("slli", rd=1, rs1=2, imm=shamt)
    srl = Instruction("srli", rd=1, rs1=2, imm=shamt)
    sra = Instruction("srai", rd=1, rs1=2, imm=shamt)
    assert alu_result(sll, a, 0, 0) == (a << shamt) & MASK32
    assert alu_result(srl, a, 0, 0) == a >> shamt
    assert alu_result(sra, a, 0, 0) == (_signed(a) >> shamt) & MASK32


def test_lui_auipc_jal_link():
    lui = Instruction("lui", rd=1, imm=0xABCDE)
    assert alu_result(lui, 0, 0, 0) == 0xABCDE000
    auipc = Instruction("auipc", rd=1, imm=1)
    assert alu_result(auipc, 0, 0, 0x100) == 0x1100
    jal = Instruction("jal", rd=1, imm=8)
    assert alu_result(jal, 0, 0, 0x200) == 0x204


# ----------------------------------------------------------------------
# M extension
# ----------------------------------------------------------------------
@given(u32, u32)
@settings(max_examples=300)
def test_mul_matches_python(a, b):
    assert muldiv_result("mul", a, b) == (_signed(a) * _signed(b)) & MASK32
    assert muldiv_result("mulhu", a, b) == (a * b) >> 32
    assert muldiv_result("mulh", a, b) == \
        ((_signed(a) * _signed(b)) >> 32) & MASK32
    assert muldiv_result("mulhsu", a, b) == \
        ((_signed(a) * b) >> 32) & MASK32


@given(u32, u32)
@settings(max_examples=300)
def test_div_rem_invariant(a, b):
    """RISC-V invariant: div*b + rem == a (when b != 0, no overflow)."""
    if b == 0:
        assert muldiv_result("div", a, b) == MASK32
        assert muldiv_result("rem", a, b) == a
        assert muldiv_result("divu", a, b) == MASK32
        assert muldiv_result("remu", a, b) == a
        return
    quotient = _signed(muldiv_result("div", a, b))
    remainder = _signed(muldiv_result("rem", a, b))
    if not (_signed(a) == -(1 << 31) and _signed(b) == -1):
        assert quotient * _signed(b) + remainder == _signed(a)
        assert abs(remainder) < abs(_signed(b))
    uq = muldiv_result("divu", a, b)
    ur = muldiv_result("remu", a, b)
    assert uq * b + ur == a


def test_div_overflow_case():
    minimum = 1 << 31  # -2^31 as unsigned
    assert muldiv_result("div", minimum, MASK32) == minimum
    assert muldiv_result("rem", minimum, MASK32) == 0


# ----------------------------------------------------------------------
# branches
# ----------------------------------------------------------------------
@given(u32, u32)
def test_branch_conditions(a, b):
    def taken(name):
        return branch_taken(Instruction(name, rs1=1, rs2=2, imm=8), a, b)

    assert taken("beq") == (a == b)
    assert taken("bne") == (a != b)
    assert taken("blt") == (_signed(a) < _signed(b))
    assert taken("bge") == (_signed(a) >= _signed(b))
    assert taken("bltu") == (a < b)
    assert taken("bgeu") == (a >= b)
    assert taken("blt") != taken("bge")
    assert taken("bltu") != taken("bgeu")


# ----------------------------------------------------------------------
# golden interpreter
# ----------------------------------------------------------------------
def test_golden_fibonacci():
    program = assemble("""
    li t0, 10
    li a0, 0
    li a1, 1
fib:
    beqz t0, done
    add t2, a0, a1
    mv a0, a1
    mv a1, t2
    addi t0, t0, -1
    j fib
done:
    ebreak
    """)
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[10] == 55  # fib(10)
    assert golden.halted


def test_golden_memory_sign_extension():
    program = assemble("""
.data
.org 0x10000
v: .byte 0x80
.text
    la t0, v
    lb t1, 0(t0)
    lbu t2, 0(t0)
    ebreak
    """)
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[6] == 0xFFFFFF80
    assert golden.registers[7] == 0x80


def test_golden_store_load_round_trip():
    program = assemble("""
    li t0, 0x12345678
    li t1, 0x10000
    sw t0, 0(t1)
    lh t2, 0(t1)
    lhu t3, 2(t1)
    ebreak
    """)
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[7] == 0x5678
    assert golden.registers[28] == 0x1234


def test_golden_halts_on_end_of_code():
    program = assemble("nop\nnop")
    golden = GoldenSimulator(program)
    assert golden.run() == 2
    assert golden.halted


def test_golden_x0_never_written():
    program = assemble("""
    addi zero, zero, 5
    add t0, zero, zero
    ebreak
    """)
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[0] == 0
    assert golden.registers[5] == 0
