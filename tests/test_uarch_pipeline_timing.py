"""Timing/event tests: the paper's microarchitectural signatures.

Checks the exact stall/flush/occupancy behaviour that sections II and IV
of the paper specify: cache hit = 1 extra cycle, miss = 2 further cycles,
misprediction flushes 2 instructions, stalls freeze stage latches.
"""

import numpy as np
import pytest

from repro.isa import Instruction, NOP, assemble
from repro.uarch import (CacheConfig, CoreConfig, OCC_BUBBLE, OCC_STALL,
                         StallCause, run_program)
from repro.workloads import nop_padded


def _m_cycles(trace, seq):
    return trace.cycles_of(seq, "M")


def test_nop_probe_flows_one_stage_per_cycle():
    program = nop_padded([Instruction("add", rd=5, rs1=1, rs2=1)])
    trace, _ = run_program(program)
    seq = next(index for index, instr in
               enumerate(program.instructions) if not instr.is_nop)
    cycles = {stage: trace.cycles_of(seq, stage)
              for stage in ("F", "D", "E", "M", "W")}
    # one cycle per stage, consecutive
    flat = [cycles[stage][0] for stage in ("F", "D", "E", "M", "W")]
    assert all(len(cycles[stage]) == 1 for stage in cycles)
    assert flat == list(range(flat[0], flat[0] + 5))


def test_cache_hit_one_extra_cycle():
    """'Cache-hit takes one extra cycle' (paper §II-A)."""
    program = assemble("""
    li t1, 0x10000
    lw t0, 0(t1)      # cold miss, warms the line
    nop
    nop
    nop
    nop
    lw t2, 0(t1)      # hit
    nop
    nop
    nop
    nop
    ebreak
    """)
    trace, _ = run_program(program)
    loads = [event for event in trace.cache_events]
    assert [event.hit for event in loads] == [False, True]
    miss_cycles = _m_cycles(trace, loads[0].seq)
    hit_cycles = _m_cycles(trace, loads[1].seq)
    assert len(hit_cycles) == 2   # 1 access + 1 extra (hit)
    assert len(miss_cycles) == 4  # 1 access + 3 extra (miss: 1 + 2)


def test_miss_stall_cycles_marked():
    """Fig. 6: a miss shows 'total of three' stall cycles."""
    program = assemble("""
    li t1, 0x10000
    lw t0, 0(t1)
    nop
    nop
    nop
    ebreak
    """)
    trace, _ = run_program(program)
    seq = trace.cache_events[0].seq
    kinds = [trace.occupancy["M"][cycle].kind
             for cycle in _m_cycles(trace, seq)]
    assert kinds == ["instr", "stall", "stall", "stall"]
    causes = [stall.cause for stall in trace.stalls
              if stall.stage == "M" and stall.seq == seq]
    assert causes.count(StallCause.CACHE_MISS) == 3


def test_configurable_cache_latencies():
    config = CoreConfig(cache=CacheConfig(hit_extra_cycles=0,
                                          miss_extra_cycles=5))
    program = assemble("""
    li t1, 0x10000
    lw t0, 0(t1)
    lw t2, 0(t1)
    ebreak
    """)
    trace, _ = run_program(program, config=config)
    miss_seq = trace.cache_events[0].seq
    hit_seq = trace.cache_events[1].seq
    assert len(_m_cycles(trace, miss_seq)) == 6
    assert len(_m_cycles(trace, hit_seq)) == 1


def test_mul_occupies_execute_for_latency_cycles():
    config = CoreConfig(mul_latency=8)  # the paper's stretched Fig. 5 MUL
    program = nop_padded([Instruction("mul", rd=5, rs1=1, rs2=1)])
    trace, _ = run_program(program, config=config)
    seq = next(index for index, instr in
               enumerate(program.instructions) if not instr.is_nop)
    e_cycles = trace.cycles_of(seq, "E")
    assert len(e_cycles) == 8
    kinds = [trace.occupancy["E"][cycle].kind for cycle in e_cycles]
    assert kinds[0] == "instr"            # operand latch
    assert kinds[-1] == "instr"           # result write
    assert all(kind == OCC_STALL for kind in kinds[1:-1])
    # upstream NOPs are frozen during the stall
    d_kinds = [trace.occupancy["D"][cycle].kind for cycle in e_cycles[1:-1]]
    assert all(kind == OCC_STALL for kind in d_kinds)


def test_stalled_stage_latches_frozen():
    """'No bit-flips occur in the stalled stages' (paper §IV)."""
    config = CoreConfig(mul_latency=6)
    program = nop_padded(
        [Instruction("addi", rd=6, rs1=6, imm=77),
         Instruction("mul", rd=5, rs1=6, rs2=6)], before=6, after=8)
    trace, _ = run_program(program, config=config)
    mul_seq = next(index for index, instr in
                   enumerate(program.instructions)
                   if instr.name == "mul")
    e_cycles = trace.cycles_of(mul_seq, "E")
    stall_cycles = e_cycles[1:-1]
    for stage in ("F", "D"):
        flips = trace.flip_counts(stage)
        assert all(flips[cycle] == 0 for cycle in stall_cycles[1:]), stage


def test_misprediction_flushes_two_instructions():
    """'the processor has to flush the incorrectly fetched instructions'
    — 2 bubbles with the 2-cycle resolution (paper §IV, Fig. 7)."""
    program = assemble("""
    li t0, 1
    nop
    nop
    nop
    bnez t0, target   # taken; first encounter -> BTB cold -> mispredict
    addi t1, t1, 1
    addi t2, t2, 1
target:
    nop
    nop
    nop
    nop
    ebreak
    """)
    trace, core = run_program(program)
    assert trace.mispredictions == 1
    flush = trace.flushes[0]
    assert flush.flushed == 2
    # the two cycles after the flush inject bubbles into D then E
    assert trace.occupancy["D"][flush.cycle].kind == OCC_BUBBLE
    assert trace.occupancy["E"][flush.cycle + 1].kind == OCC_BUBBLE
    # wrong-path instructions never retire
    assert core.regfile.peek(6) == 0
    assert core.regfile.peek(7) == 0


def test_predictor_learns_loop_branch():
    program = assemble("""
    li t0, 20
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
    """)
    trace, _ = run_program(program, config=CoreConfig(
        predictor="two-level"))
    events = [event for event in trace.branch_events]
    # the loop branch executes 20 times; after warmup the 2-level
    # predictor should stop mispredicting the taken back-edge
    late = events[5:-1]
    assert sum(event.mispredicted for event in late) == 0
    # the final not-taken exit is mispredicted
    assert events[-1].mispredicted


def test_not_taken_predictor_mispredicts_every_taken_branch():
    program = assemble("""
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
    """)
    trace, _ = run_program(program,
                           config=CoreConfig(predictor="not-taken"))
    taken_events = [event for event in trace.branch_events if event.taken]
    assert all(event.mispredicted for event in taken_events)


def test_jal_costs_one_bubble_first_time_then_btb_hits():
    program = assemble("""
    li t0, 2
again:
    jal t1, hop
hop:
    addi t0, t0, -1
    bnez t0, again
    ebreak
    """)
    trace, _ = run_program(program)
    # count F-stage bubbles injected right after each jal decode
    jal_decodes = [cycle for cycle, occ in enumerate(trace.occupancy["D"])
                   if occ.active and occ.instr is not None and
                   occ.instr.name == "jal"]
    assert len(jal_decodes) == 2
    first, second = jal_decodes
    assert trace.occupancy["F"][first].kind == OCC_BUBBLE   # redirect
    assert trace.occupancy["F"][second].kind != OCC_BUBBLE  # BTB hit


def test_forwarding_reduces_stalls():
    source = """
    li t0, 1
    addi t1, t0, 1
    addi t2, t1, 1
    addi t3, t2, 1
    addi t4, t3, 1
    ebreak
    """
    program = assemble(source)
    with_fw, _ = run_program(program, config=CoreConfig(forwarding=True))
    without_fw, _ = run_program(program,
                                config=CoreConfig(forwarding=False))
    assert with_fw.num_cycles < without_fw.num_cycles
    fw_stalls = sum(1 for stall in with_fw.stalls if stall.stage == "D")
    no_fw_stalls = sum(1 for stall in without_fw.stalls
                       if stall.stage == "D")
    assert no_fw_stalls > fw_stalls


def test_bubble_latches_settle_to_nop_pattern():
    program = nop_padded([Instruction("addi", rd=5, rs1=0, imm=0x7FF)],
                         before=3, after=10)
    trace, _ = run_program(program)
    # as the pipeline drains, transitions die down to the few control
    # bits of the trailing ebreak settling into the bubble pattern
    flips = trace.total_flip_counts()
    assert flips.max() > 30          # the real work switched plenty
    assert flips[-1] <= 10           # the drain is nearly silent


def test_ebreak_stops_fetch():
    program = assemble("""
    li t0, 1
    ebreak
    li t0, 2
    """)
    trace, core = run_program(program)
    assert core.regfile.peek(5) == 1  # the instruction after ebreak never
    assert core.halted                # executed


def test_cycle_counts_are_deterministic():
    program = nop_padded([Instruction("mul", rd=5, rs1=1, rs2=1)])
    first, _ = run_program(program)
    second, _ = run_program(program)
    assert first.num_cycles == second.num_cycles
    assert np.array_equal(first.total_flip_counts(),
                          second.total_flip_counts())
