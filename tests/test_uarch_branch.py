"""Tests for branch predictors and the BTB (repro.uarch.branch)."""

import pytest

from repro.uarch.branch import (AlwaysNotTaken, BranchTargetBuffer, GShare,
                                TwoLevelAdaptive, make_predictor)


def test_always_not_taken():
    predictor = AlwaysNotTaken()
    for pc in (0, 4, 0x100):
        assert predictor.predict(pc) is False
        predictor.update(pc, True)
        assert predictor.predict(pc) is False


def test_two_level_learns_always_taken():
    predictor = TwoLevelAdaptive()
    pc = 0x40
    for _ in range(8):
        predictor.update(pc, True)
    assert predictor.predict(pc) is True


def test_two_level_learns_alternating_pattern():
    """The 2-level predictor captures a T/NT alternation via history."""
    predictor = TwoLevelAdaptive(history_bits=4)
    pc = 0x80
    pattern = [True, False] * 40
    for outcome in pattern:
        predictor.update(pc, outcome)
    # after warmup it should predict the alternation correctly
    correct = 0
    for index in range(20):
        outcome = pattern[index % 2]
        if predictor.predict(pc) == outcome:
            correct += 1
        predictor.update(pc, outcome)
    assert correct >= 18


def test_gshare_learns_biased_branch():
    predictor = GShare()
    pc = 0x60
    for _ in range(12):
        predictor.update(pc, True)
    assert predictor.predict(pc) is True


def test_gshare_history_separates_contexts():
    predictor = GShare(history_bits=2, table_bits=12)
    pc = 0x90
    # branch taken iff previous global outcome was taken
    previous = True
    for _ in range(200):
        outcome = previous
        predictor.update(pc, outcome)
        previous = not previous
    correct = 0
    for _ in range(20):
        outcome = previous
        if predictor.predict(pc) == outcome:
            correct += 1
        predictor.update(pc, outcome)
        previous = not previous
    assert correct >= 16


def test_btb_lookup_and_update():
    btb = BranchTargetBuffer(entries=16)
    assert btb.lookup(0x100) is None
    btb.update(0x100, 0x200)
    assert btb.lookup(0x100) == 0x200
    # aliasing pc maps to the same entry but different tag -> miss
    alias = 0x100 + 16 * 4
    assert btb.lookup(alias) is None
    btb.update(alias, 0x300)
    assert btb.lookup(alias) == 0x300
    assert btb.lookup(0x100) is None  # evicted by alias


def test_btb_power_of_two_required():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=12)


def test_make_predictor_kinds():
    assert isinstance(make_predictor("not-taken"), AlwaysNotTaken)
    assert isinstance(make_predictor("two-level"), TwoLevelAdaptive)
    assert isinstance(make_predictor("gshare"), GShare)
    with pytest.raises(ValueError):
        make_predictor("perceptron")


def test_saturating_counter_bounds():
    from repro.uarch.branch import _SaturatingCounter
    counter = _SaturatingCounter()
    for _ in range(10):
        counter.update(False)
    assert counter.value == 0
    for _ in range(10):
        counter.update(True)
    assert counter.value == 3
    assert counter.taken
