"""Tests for the synthetic hardware bench (repro.hardware)."""

import numpy as np
import pytest

from repro.hardware import (ARTY, BOARDS, DE0_CV, DE1, DeviceInstance,
                            HardwareDevice, ProbePosition, UNIT_NAMES,
                            coupling, stage_couplings)
from repro.hardware.probe import CENTER
from repro.isa import Instruction
from repro.signal import simulation_accuracy
from repro.workloads import dot_product, nop_padded


def test_units_cover_all_stages():
    units = DE0_CV.build_units()
    assert {unit.stage for unit in units} == {"F", "D", "E", "M", "W"}
    assert {unit.name for unit in units} == set(UNIT_NAMES)


def test_units_deterministic_per_board():
    first = DE0_CV.build_units()
    second = DE0_CV.build_units()
    for a, b in zip(first, second):
        assert np.array_equal(a.bit_weights, b.bit_weights)
        assert a.kernel == b.kernel


def test_boards_differ():
    de0 = DE0_CV.build_units()
    de1 = DE1.build_units()
    assert not np.allclose(de0[0].bit_weights[:5], de1[0].bit_weights[:5])
    assert set(BOARDS) == {"de0-cv", "de1", "arty"}


def test_unit_static_activity_fallbacks():
    unit = DE0_CV.build_units()[0]
    assert unit.static_activity("nop") >= 0
    assert unit.static_activity("muldiv_final") == pytest.approx(
        1.4 * unit.static_activity("muldiv"))
    assert unit.static_activity("load") > 0


def test_coupling_normalized_at_center():
    for unit in DE0_CV.build_units():
        assert coupling(unit, CENTER) == pytest.approx(1.0)


def test_coupling_decreases_with_distance():
    unit = DE0_CV.build_units()[0]
    near = coupling(unit, ProbePosition(0, 0, 5.0))
    far = coupling(unit, ProbePosition(0, 0, 10.0))
    assert far < near


def test_off_center_probe_reweights_units():
    units = DE0_CV.build_units()
    offset = ProbePosition(x=3.0, y=0.0, height=5.0)
    ratios = [coupling(unit, offset) for unit in units]
    assert max(ratios) / min(ratios) > 1.05  # units reweighted unequally
    per_stage = stage_couplings(units, offset)
    assert set(per_stage) == {"F", "D", "E", "M", "W"}


def test_instance_properties():
    base = DeviceInstance(board=DE0_CV, instance_id=0)
    other = DeviceInstance(board=DE0_CV, instance_id=2)
    assert base.clock_ppm == 0.0
    assert base.gain_jitter == 1.0
    assert other.clock_ppm != 0.0
    assert abs(other.clock_ppm) <= 80.0
    assert 0.97 <= other.gain_jitter <= 1.03


def test_device_rejects_conflicting_board_and_instance():
    with pytest.raises(ValueError):
        HardwareDevice(instance=DeviceInstance(board=DE1), board=ARTY)


def test_capture_ideal_deterministic(device):
    program = dot_product(4)
    first = device.capture_ideal(program)
    second = device.capture_ideal(program)
    assert np.array_equal(first.signal, second.signal)
    assert first.num_cycles == second.num_cycles
    assert first.method == "ideal"


def test_capture_reference_approaches_ideal(device):
    program = nop_padded([Instruction("add", rd=5, rs1=8, rs2=9)])
    ideal = device.capture_ideal(program)
    reference = device.capture_reference(program, repetitions=200)
    accuracy = simulation_accuracy(ideal.signal, reference.signal,
                                   device.samples_per_cycle)
    assert accuracy > 0.9


def test_capture_single_is_noisy(device):
    program = dot_product(4)
    ideal = device.capture_ideal(program)
    single = device.capture_single(program, noise_rms=0.1)
    residual = single.signal - ideal.signal
    assert 0.05 < residual.std() < 0.2
    assert single.method == "single"


def test_unknown_capture_method_rejected(device):
    with pytest.raises(ValueError):
        device.measure(dot_product(4), method="quantum")


def test_activity_drives_signal(device):
    """More switching -> more emission: a MUL-heavy probe radiates more
    than an all-NOP stretch."""
    quiet = nop_padded([], before=6, after=6)
    loud = nop_padded([Instruction("mul", rd=5, rs1=8, rs2=9)] * 4,
                      before=6, after=6)
    quiet_rms = float(np.sqrt((device.capture_ideal(quiet).signal ** 2)
                              .mean()))
    loud_rms = float(np.sqrt((device.capture_ideal(loud).signal ** 2)
                             .mean()))
    assert loud_rms > quiet_rms


def test_stall_quiets_the_signal(device):
    """Fig. 5/6: stalled cycles show a clear amplitude drop."""
    program = nop_padded([Instruction("lw", rd=5, rs1=8, imm=0)],
                         before=8, after=8)
    measurement = device.capture_ideal(program)
    trace = measurement.trace
    spc = device.samples_per_cycle
    peaks = np.abs(measurement.signal).reshape(-1, spc).max(axis=1)
    miss_seq = trace.cache_events[0].seq
    stall_cycles = [cycle for cycle in trace.cycles_of(miss_seq, "M")
                    if trace.occupancy["M"][cycle].kind == "stall"]
    nop_cycles = [cycle for cycle in range(trace.num_cycles)
                  if all(trace.occupancy[stage][cycle].em_class() == "nop"
                         for stage in ("F", "D", "E", "M", "W"))
                  and trace.occupancy["F"][cycle].active]
    assert np.mean(peaks[stall_cycles]) < np.mean(peaks[nop_cycles])


def test_manufacturing_instance_same_shape(device):
    """§V-B: instances of one board produce near-identical signals."""
    program = dot_product(4)
    other = HardwareDevice(instance=DeviceInstance(board=DE0_CV,
                                                   instance_id=1))
    base_signal = device.capture_ideal(program).signal
    other_signal = other.capture_ideal(program).signal
    accuracy = simulation_accuracy(base_signal, other_signal,
                                   device.samples_per_cycle)
    assert accuracy > 0.999


def test_board_change_alters_signal(device):
    """§V-C: a different board/CMOS tech changes the waveforms."""
    program = dot_product(4)
    de1_device = HardwareDevice(board=DE1)
    base_signal = device.capture_ideal(program).signal
    de1_signal = de1_device.capture_ideal(program).signal
    accuracy = simulation_accuracy(base_signal, de1_signal,
                                   device.samples_per_cycle)
    assert accuracy < 0.9
