"""Tests for the repro-lint analyzer (``tools/analysis``).

Every rule gets a positive fixture (the violation is found), a negative
fixture (the compliant spelling is clean), and a suppressed fixture
(an inline ``# repro: allow[ID]`` moves the finding to the suppressed
list).  On top of the per-rule coverage, the suite pins the repo-level
contracts: the committed baseline matches a fresh scan, two runs render
byte-identical JSON, and the analyzer's exit codes agree with the
``ReproError`` table.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from dataclasses import replace

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.analysis import (AnalysisConfig, Analyzer, Project,  # noqa: E402
                            check_source, load_config)
from tools.analysis.baseline import (apply_baseline,  # noqa: E402
                                     load_baseline, write_baseline)
from tools.analysis.cli import EXIT_CONFIG, EXIT_FINDINGS  # noqa: E402
from tools.analysis.cli import main as lint_main  # noqa: E402
from tools.analysis.report import render_json  # noqa: E402
from tools.analysis.rules import all_rules  # noqa: E402
from tools.analysis.rules.contracts import (  # noqa: E402
    FALLBACK_REPRO_ERRORS, BareExceptRule, CampaignTimeoutRule,
    CliErrorTypeRule, ExitCodeTableRule, SwallowedExceptionRule,
    repro_error_names)
from tools.analysis.rules.determinism import (  # noqa: E402
    ForeignPoolRule, SetIterationRule, UnseededRngRule, UnsortedWalkRule,
    WallClockRule)
from tools.analysis.rules.docs import CliReferenceRule, DocLinkRule  # noqa: E402
from tools.analysis.rules.hygiene import (  # noqa: E402
    AnnotationCoverageRule, DocstringCoverageRule)
from tools.analysis.rules.numeric import (  # noqa: E402
    AggregateDivisionRule, DtypeDowncastRule, FloatEqualityRule)
from tools.analysis.rules.observability import (  # noqa: E402
    CampaignManifestRule, MetricReferenceRule, extract_names)
from tools.analysis.rules.performance import (  # noqa: E402
    ConvolveOutsideOracleRule, HotLoopAllocationRule)

# config that points every path-scoped rule at the fixture file
EVERYWHERE = replace(
    AnalysisConfig(), monotonic_strict=[""], clock_owner_modules=[],
    pool_modules=[], cli_modules=[""], docstring_packages=[""],
    annotations_packages=[""])


def scan(source, rule, config=EVERYWHERE):
    """Run one rule over a dedented snippet; returns the ScanResult."""
    return check_source(textwrap.dedent(source), [rule], config)


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ---------------------------------------------------------------------------
# determinism family
# ---------------------------------------------------------------------------
class TestUnseededRng:
    def test_positive_global_module_function(self):
        result = scan("import random\nx = random.random()\n",
                      UnseededRngRule())
        assert rule_ids(result) == ["D101"]

    def test_positive_numpy_legacy_and_bare_default_rng(self):
        result = scan(
            """
            import numpy as np
            a = np.random.normal(0, 1)
            rng = np.random.default_rng()
            """, UnseededRngRule())
        assert rule_ids(result) == ["D101", "D101"]

    def test_positive_from_import_alias(self):
        result = scan(
            "from numpy.random import default_rng\nr = default_rng()\n",
            UnseededRngRule())
        assert rule_ids(result) == ["D101"]

    def test_negative_seeded(self):
        result = scan(
            """
            import random
            import numpy as np
            r = random.Random(7)
            g = np.random.default_rng(1234)
            value = r.random() + g.normal()
            """, UnseededRngRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "import random\n"
            "x = random.random()  # repro: allow[D101] demo only\n",
            UnseededRngRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["D101"]


class TestWallClock:
    def test_positive_wall_clock_anywhere(self):
        config = replace(EVERYWHERE, monotonic_strict=[])
        result = scan("import time\nstamp = time.time()\n",
                      WallClockRule(), config)
        assert rule_ids(result) == ["D102"]

    def test_positive_monotonic_in_core(self):
        result = scan(
            "from time import perf_counter\nstart = perf_counter()\n",
            WallClockRule())
        assert rule_ids(result) == ["D102"]

    def test_negative_monotonic_outside_core(self):
        config = replace(EVERYWHERE, monotonic_strict=[])
        result = scan("import time\nstart = time.perf_counter()\n",
                      WallClockRule(), config)
        assert result.findings == []

    def test_negative_clock_owner_module_exempt(self):
        config = replace(EVERYWHERE, clock_owner_modules=[""])
        result = scan("import time\nstamp = time.time()\n",
                      WallClockRule(), config)
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "import time\n"
            "t = time.perf_counter()  # repro: allow[D102] profiling\n",
            WallClockRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["D102"]


class TestUnsortedWalk:
    def test_positive(self):
        result = scan(
            """
            import glob
            import os
            names = os.listdir(".")
            files = glob.glob("*.py")
            """, UnsortedWalkRule())
        assert rule_ids(result) == ["D103", "D103"]

    def test_negative_sorted_wrapper(self):
        result = scan(
            """
            import os
            names = sorted(os.listdir("."))
            for base, dirs, files in sorted(os.walk(".")):
                pass
            """, UnsortedWalkRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "import os\n"
            "x = os.listdir('.')  # repro: allow[D103] order unused\n",
            UnsortedWalkRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["D103"]


class TestSetIteration:
    def test_positive_for_loop_and_list(self):
        result = scan(
            """
            items = [3, 1, 2]
            for value in set(items):
                print(value)
            ordered = list({"b", "a"})
            """, SetIterationRule())
        assert rule_ids(result) == ["D104", "D104"]

    def test_positive_comprehension(self):
        result = scan("out = [v for v in set((1, 2))]\n",
                      SetIterationRule())
        assert rule_ids(result) == ["D104"]

    def test_negative_sorted(self):
        result = scan(
            """
            items = [3, 1, 2]
            for value in sorted(set(items)):
                print(value)
            """, SetIterationRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "for v in set((1, 2)):  # repro: allow[D104] order-free\n"
            "    print(v)\n", SetIterationRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["D104"]


class TestForeignPool:
    def test_positive_imports_and_fork(self):
        result = scan(
            """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            import os
            pid = os.fork()
            """, ForeignPoolRule())
        assert rule_ids(result) == ["D105", "D105", "D105"]

    def test_negative_inside_parallel_module(self):
        config = replace(EVERYWHERE, pool_modules=[""])
        result = scan("import multiprocessing\n", ForeignPoolRule(),
                      config)
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "import multiprocessing  # repro: allow[D105] shim\n",
            ForeignPoolRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["D105"]


# ---------------------------------------------------------------------------
# numerical family
# ---------------------------------------------------------------------------
class TestFloatEquality:
    def test_positive_eq_and_ne(self):
        result = scan(
            "ok = value == 0.5\nbad = 1.0 != other\n",
            FloatEqualityRule())
        assert rule_ids(result) == ["N201", "N201"]

    def test_negative_int_literal_and_ordered(self):
        result = scan(
            "a = value == 0\nb = value <= 0.5\nc = name == 'x'\n",
            FloatEqualityRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "flag = x == 0.0  # repro: allow[N201] exact counts\n",
            FloatEqualityRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["N201"]


class TestAggregateDivision:
    def test_positive_len_sum_methods(self):
        result = scan(
            """
            import numpy as np
            mean = total / len(items)
            frac = x / np.sum(weights)
            kernel /= kernel.sum()
            """, AggregateDivisionRule())
        assert rule_ids(result) == ["N202", "N202", "N202"]

    def test_negative_bound_name_or_errstate(self):
        result = scan(
            """
            import numpy as np
            count = len(items)
            mean = total / max(count, 1)
            with np.errstate(divide="ignore"):
                frac = x / np.sum(weights)
            """, AggregateDivisionRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "share = x / len(rows)  # repro: allow[N202] never empty\n",
            AggregateDivisionRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["N202"]


class TestDtypeDowncast:
    def test_positive_astype_and_dtype_kwarg(self):
        result = scan(
            """
            import numpy as np
            a = values.astype(np.float32)
            b = data.astype("int16")
            c = np.asarray(raw, dtype=np.uint8)
            """, DtypeDowncastRule())
        assert rule_ids(result) == ["N203", "N203", "N203"]

    def test_negative_widening_or_explicit_casting(self):
        result = scan(
            """
            import numpy as np
            a = values.astype(float)
            b = data.astype(np.float64)
            c = bits.astype(np.uint8, casting="safe")
            """, DtypeDowncastRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "import numpy as np\n"
            "a = b.astype(np.uint8)  # repro: allow[N203] single bits\n",
            DtypeDowncastRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["N203"]


# ---------------------------------------------------------------------------
# error-contract family
# ---------------------------------------------------------------------------
class TestBareExcept:
    def test_positive_bare_and_base_exception(self):
        result = scan(
            """
            try:
                work()
            except:
                recover()
            try:
                work()
            except BaseException:
                recover()
            """, BareExceptRule())
        assert rule_ids(result) == ["E301", "E301"]

    def test_negative_typed_or_reraising_cleanup(self):
        result = scan(
            """
            try:
                work()
            except ValueError:
                recover()
            try:
                work()
            except BaseException:
                cleanup()
                raise
            """, BareExceptRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            """
            try:
                work()
            except:  # repro: allow[E301] last-resort logging
                log()
            """, BareExceptRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["E301"]


class TestSwallowedException:
    def test_positive_pass_body(self):
        result = scan(
            """
            try:
                work()
            except ValueError:
                pass
            """, SwallowedExceptionRule())
        assert rule_ids(result) == ["E302"]

    def test_negative_handler_with_fallback(self):
        result = scan(
            """
            import contextlib
            try:
                work()
            except ValueError:
                counter += 1
            with contextlib.suppress(OSError):
                cleanup()
            """, SwallowedExceptionRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            """
            try:
                work()
            except ValueError:  # repro: allow[E302] probe fallthrough
                pass
            """, SwallowedExceptionRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["E302"]


class TestCliErrorType:
    def test_positive_raw_value_error(self):
        result = scan("raise ValueError('bad flag')\n",
                      CliErrorTypeRule())
        assert rule_ids(result) == ["E303"]

    def test_negative_repro_error_and_argparse(self):
        result = scan(
            """
            import argparse
            from repro.robustness import ConfigurationError
            raise ConfigurationError("bad")
            raise argparse.ArgumentTypeError("bad")
            """, CliErrorTypeRule())
        assert result.findings == []

    def test_negative_outside_cli_modules(self):
        config = replace(EVERYWHERE, cli_modules=["src/repro/cli.py"])
        result = scan("raise ValueError('library contract')\n",
                      CliErrorTypeRule(), config)
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "raise KeyError('k')  # repro: allow[E303] internal map\n",
            CliErrorTypeRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["E303"]


class TestExitCodeTable:
    def test_positive_undocumented_code(self):
        result = scan("import sys\nsys.exit(3)\n", ExitCodeTableRule())
        assert rule_ids(result) == ["E304"]

    def test_negative_documented_and_computed(self):
        result = scan(
            """
            import sys
            sys.exit(0)
            sys.exit(17)
            sys.exit(main())
            """, ExitCodeTableRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "import sys\n"
            "sys.exit(42)  # repro: allow[E304] external contract\n",
            ExitCodeTableRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["E304"]


class TestCampaignTimeout:
    CONFIG = replace(EVERYWHERE, campaign_modules=[""])

    def test_positive_bare_fanout(self):
        result = scan(
            """
            from repro.parallel import parallel_map, supervised_map
            parallel_map(run, items, workers=4)
            supervised_map(run, items, workers=4, max_item_retries=1)
            """, CampaignTimeoutRule(), self.CONFIG)
        assert rule_ids(result) == ["E305", "E305"]

    def test_positive_attribute_call(self):
        result = scan(
            """
            import repro.parallel
            repro.parallel.parallel_map(run, items)
            """, CampaignTimeoutRule(), self.CONFIG)
        assert rule_ids(result) == ["E305"]

    def test_negative_explicit_timeout(self):
        result = scan(
            """
            from repro.parallel import parallel_map, supervised_map
            parallel_map(run, items, timeout=30.0)
            supervised_map(run, items, timeout=None)
            """, CampaignTimeoutRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_kwargs_splat_trusted(self):
        result = scan(
            """
            from repro.parallel import supervised_map
            supervised_map(run, items, **supervision)
            """, CampaignTimeoutRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_outside_campaign_modules(self):
        result = scan(
            "from repro.parallel import parallel_map\n"
            "parallel_map(run, items)\n",
            CampaignTimeoutRule())  # EVERYWHERE keeps the real paths
        assert result.findings == []

    def test_negative_other_calls(self):
        result = scan(
            "map(run, items)\npool.map(run, items)\n",
            CampaignTimeoutRule(), self.CONFIG)
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            "from repro.parallel import parallel_map\n"
            "parallel_map(run, items)"
            "  # repro: allow[E305] interactive, items are instant\n",
            CampaignTimeoutRule(), self.CONFIG)
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["E305"]


# ---------------------------------------------------------------------------
# API-hygiene family
# ---------------------------------------------------------------------------
class TestDocstringCoverage:
    def test_positive_missing_docstrings(self):
        result = scan(
            '''
            """Module docstring."""

            def public():
                return 1
            ''', DocstringCoverageRule())
        assert rule_ids(result) == ["A401"]

    def test_negative_documented_and_private(self):
        result = scan(
            '''
            """Module docstring."""

            def public():
                """Documented."""

            def _private():
                return 1
            ''', DocstringCoverageRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            '"""Module docstring."""\n\n'
            'def public():  # repro: allow[A401] generated stub\n'
            '    return 1\n', DocstringCoverageRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["A401"]


class TestAnnotationCoverage:
    def test_positive_missing_param_and_return(self):
        result = scan(
            '''
            """Module."""

            def public(value):
                """Doc."""
                return value
            ''', AnnotationCoverageRule())
        assert rule_ids(result) == ["A404"]
        assert "value" in result.findings[0].message
        assert "return" in result.findings[0].message

    def test_negative_fully_annotated_and_init_exempt_return(self):
        result = scan(
            '''
            """Module."""

            class Thing:
                """Doc."""

                def __init__(self, size: int):
                    self.size = size

            def public(value: int, **extra: object) -> int:
                """Doc."""
                return value
            ''', AnnotationCoverageRule())
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            '"""Module."""\n\n'
            'def public(x):  # repro: allow[A404] legacy signature\n'
            '    return x\n', AnnotationCoverageRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["A404"]


class TestDocRules:
    def test_doc_link_positive_and_negative(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "[ok](real.md) and [broken](missing.md)\n")
        (tmp_path / "real.md").write_text("hello\n")
        config = replace(AnalysisConfig(), doc_files=["README.md"])
        found = list(DocLinkRule().check_project(
            Project(root=str(tmp_path), config=config)))
        assert len(found) == 1
        path, line, message = found[0]
        assert path == "README.md" and line == 1
        assert "missing.md" in message

    def test_doc_link_skips_urls_and_anchors(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "[a](https://example.com) [b](#anchor) [c](mailto:x@y)\n")
        config = replace(AnalysisConfig(), doc_files=["README.md"])
        found = list(DocLinkRule().check_project(
            Project(root=str(tmp_path), config=config)))
        assert found == []

    def test_cli_reference_complete_on_this_repo(self):
        config = load_config(REPO_ROOT)
        found = list(CliReferenceRule().check_project(
            Project(root=REPO_ROOT, config=config)))
        assert found == []

    def test_cli_reference_detects_missing_subcommand(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "cli.md").write_text("empty reference\n")
        config = load_config(REPO_ROOT)
        found = list(CliReferenceRule().check_project(
            Project(root=str(tmp_path), config=config)))
        assert any("train" in message for _, _, message in found)


# ---------------------------------------------------------------------------
# observability family
# ---------------------------------------------------------------------------
class TestCampaignManifest:
    CONFIG = replace(EVERYWHERE, campaign_modules=[""])

    def test_positive_unrecorded_entry_point(self):
        result = scan(
            """
            from repro.parallel import supervised_map

            def run_campaign(items):
                results, ledger = supervised_map(work, items, timeout=5.0)
                return results
            """, CampaignManifestRule(), self.CONFIG)
        assert rule_ids(result) == ["A501"]
        assert "run_campaign" in result.findings[0].message

    def test_positive_nested_helper_fanout(self):
        # the fan-out hiding inside a nested def still belongs to the
        # public entry point that contains it
        result = scan(
            """
            from repro.parallel import supervised_map

            def sweep(pairs):
                def run(journal):
                    return supervised_map(work, pairs, timeout=None)
                return run(None)
            """, CampaignManifestRule(), self.CONFIG)
        assert rule_ids(result) == ["A501"]

    def test_negative_record_campaign(self):
        result = scan(
            """
            from repro.observability import record_campaign
            from repro.parallel import supervised_map

            def run_campaign(items):
                with record_campaign("demo", {"campaign": "demo"}) as rec:
                    results, ledger = supervised_map(work, items,
                                                     timeout=5.0)
                    rec.ledger(ledger)
                return results
            """, CampaignManifestRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_recorder_parameter(self):
        result = scan(
            """
            from repro.parallel import parallel_map

            def run_campaign(items, recorder=None):
                return parallel_map(work, items, timeout=None)
            """, CampaignManifestRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_private_and_method(self):
        result = scan(
            """
            from repro.parallel import supervised_map

            def _helper(items):
                return supervised_map(work, items, timeout=None)

            class Trainer:
                def measure(self, items):
                    return supervised_map(work, items, timeout=None)
            """, CampaignManifestRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_no_fanout(self):
        result = scan(
            "def compute(items):\n    return [work(i) for i in items]\n",
            CampaignManifestRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_outside_campaign_modules(self):
        result = scan(
            "from repro.parallel import supervised_map\n"
            "def run(items):\n"
            "    return supervised_map(work, items, timeout=None)\n",
            CampaignManifestRule())  # EVERYWHERE keeps the real paths
        assert result.findings == []

    def test_suppressed(self):
        result = scan(
            """
            from repro.parallel import supervised_map

            # repro: allow[A501] interactive probe, never manifest-worthy
            def explore(items):
                return supervised_map(work, items, timeout=None)
            """, CampaignManifestRule(), self.CONFIG)
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["A501"]


class TestMetricReference:
    SOURCE = textwrap.dedent("""
        def run(profiler, category):
            profiler.count("demo.items", 3)
            with profiler.phase("demo.fit"):
                pass
            profiler.count(f"demo.{category}.hits")
            total = "xyz".count("y")
        """)

    def _project(self, tmp_path, table):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "mod.py").write_text(self.SOURCE)
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "observability.md").write_text(table)
        return Project(root=str(tmp_path), config=AnalysisConfig())

    @staticmethod
    def _table(*names):
        rows = "\n".join(f"| `{name}` | counter |" for name in names)
        return ("# Names\n\n<!-- name-reference:begin -->\n\n"
                "| name | kind |\n|---|---|\n" + rows +
                "\n\n<!-- name-reference:end -->\n")

    def test_extract_names_normalizes_fstrings(self, tmp_path):
        project = self._project(tmp_path, self._table())
        names = extract_names(project.root)
        assert names == {"demo.items", "demo.fit", "demo.<category>.hits"}

    def test_negative_table_in_sync(self, tmp_path):
        project = self._project(tmp_path, self._table(
            "demo.items", "demo.fit", "demo.<category>.hits"))
        assert list(MetricReferenceRule().check_project(project)) == []

    def test_positive_missing_row(self, tmp_path):
        project = self._project(tmp_path, self._table(
            "demo.items", "demo.fit"))
        found = list(MetricReferenceRule().check_project(project))
        assert len(found) == 1
        assert "demo.<category>.hits" in found[0][2]
        assert "missing" in found[0][2]

    def test_positive_stale_row(self, tmp_path):
        project = self._project(tmp_path, self._table(
            "demo.items", "demo.fit", "demo.<category>.hits",
            "demo.removed"))
        found = list(MetricReferenceRule().check_project(project))
        assert len(found) == 1
        assert "demo.removed" in found[0][2]
        assert "no longer emitted" in found[0][2]

    def test_positive_missing_markers(self, tmp_path):
        project = self._project(tmp_path, "# Names\n\nno markers here\n")
        found = list(MetricReferenceRule().check_project(project))
        assert len(found) == 1
        assert "markers" in found[0][2]

    def test_positive_missing_file(self, tmp_path):
        project = self._project(tmp_path, self._table())
        os.unlink(os.path.join(project.root, "docs", "observability.md"))
        found = list(MetricReferenceRule().check_project(project))
        assert len(found) == 1
        assert "missing docs/observability.md" in found[0][2]

    def test_reference_in_sync_on_this_repo(self):
        config = load_config(REPO_ROOT)
        found = list(MetricReferenceRule().check_project(
            Project(root=REPO_ROOT, config=config)))
        assert found == []


# ---------------------------------------------------------------------------
# performance family
# ---------------------------------------------------------------------------
class TestHotLoopAllocation:
    CONFIG = replace(EVERYWHERE, hot_loop_functions=["Core.step"],
                     hot_loop_types=["StageOccupancy"])

    def test_positive_displays_and_calls(self):
        result = scan(
            """
            class Core:
                def step(self):
                    pending = {stage: None for stage in self.stages}
                    widths = dict(self.table)
                    occ = StageOccupancy("alu", None, 0, "none")
            """, HotLoopAllocationRule(), self.CONFIG)
        assert rule_ids(result) == ["P601", "P601", "P601"]
        assert "dict comprehension" in result.findings[0].message
        assert "dict() call" in result.findings[1].message
        assert "StageOccupancy construction" in result.findings[2].message

    def test_positive_list_display_in_nested_loop(self):
        result = scan(
            """
            class Core:
                def step(self):
                    for stage in self.stages:
                        self.rows.append([stage, 0, 0])
            """, HotLoopAllocationRule(), self.CONFIG)
        assert rule_ids(result) == ["P601"]

    def test_negative_other_methods_and_functions(self):
        result = scan(
            """
            class Core:
                def reset(self):
                    self.rows = [[0] * 4]

            class Other:
                def step(self):
                    return {1, 2}

            def step():
                return dict(a=1)
            """, HotLoopAllocationRule(), self.CONFIG)
        assert result.findings == []

    def test_negative_default_arguments_evaluate_once(self):
        result = scan(
            """
            class Core:
                def step(self, scratch=(), labels={}):
                    return scratch, labels
            """, HotLoopAllocationRule(), self.CONFIG)
        assert result.findings == []

    def test_statement_anchor_covers_multiline_construction(self):
        # the comprehension starts two lines below the statement head;
        # the finding must still anchor at the statement so a standalone
        # allow above it suppresses.
        result = scan(
            """
            class Core:
                def step(self):
                    self.commit(
                        self.pending,
                        {stage: 0 for stage in self.stages})
            """, HotLoopAllocationRule(), self.CONFIG)
        assert rule_ids(result) == ["P601"]
        assert result.findings[0].line == 4

    def test_suppressed_legacy_reference_path(self):
        result = scan(
            """
            class Core:
                def step(self):
                    # repro: allow[P601] seed-cost reference path
                    self.commit(
                        {stage: 0 for stage in self.stages})
            """, HotLoopAllocationRule(), self.CONFIG)
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["P601"]

    def test_negative_unconfigured_rule_is_silent(self):
        config = replace(EVERYWHERE, hot_loop_functions=[])
        result = scan(
            """
            class Core:
                def step(self):
                    return {stage: 0 for stage in self.stages}
            """, HotLoopAllocationRule(), config)
        assert result.findings == []

    def test_hot_paths_clean_on_this_repo(self):
        # the real per-cycle recording path must stay allocation-free;
        # the preserved Legacy* reference paths are suppressed at the
        # site, never silently exempt.
        analyzer = Analyzer([HotLoopAllocationRule()],
                            load_config(REPO_ROOT), REPO_ROOT)
        result = analyzer.run(["src/repro/uarch"])
        assert result.findings == []
        assert len(result.suppressed) == 4


class TestModuleLevelHotFunctions:
    """P601's ``module.function`` naming for module-level functions."""

    CONFIG = replace(EVERYWHERE,
                     hot_loop_functions=["reconstruction._scatter"])

    def test_positive_module_level_function(self):
        result = check_source(textwrap.dedent(
            """
            def _scatter(amplitudes, chunks):
                return [amplitudes * chunk for chunk in chunks]
            """), [HotLoopAllocationRule()], self.CONFIG,
            path="src/repro/signal/reconstruction.py")
        assert rule_ids(result) == ["P601"]
        assert "reconstruction._scatter" in result.findings[0].message

    def test_negative_same_name_in_other_module(self):
        # the stem is part of the name: filters._scatter is not hot
        result = check_source(textwrap.dedent(
            """
            def _scatter(amplitudes, chunks):
                return [amplitudes * chunk for chunk in chunks]
            """), [HotLoopAllocationRule()], self.CONFIG,
            path="src/repro/signal/filters.py")
        assert result.findings == []

    def test_nested_function_resolves_at_outer_scope(self):
        # a closure inside the hot function is still the hot function's
        # per-call cost; it must not escape the check via its own name
        result = check_source(textwrap.dedent(
            """
            def _scatter(amplitudes, chunks):
                def phase(shift):
                    return {shift: chunks[shift]}
                return phase(0)
            """), [HotLoopAllocationRule()], self.CONFIG,
            path="src/repro/signal/reconstruction.py")
        assert rule_ids(result) == ["P601"]
        assert "reconstruction._scatter" in result.findings[0].message

    def test_real_signal_kernels_clean_on_this_repo(self):
        analyzer = Analyzer([HotLoopAllocationRule()],
                            load_config(REPO_ROOT), REPO_ROOT)
        result = analyzer.run(["src/repro/signal"])
        assert result.findings == []


class TestConvolveOutsideOracle:
    def test_positive_aliased_convolve(self):
        result = scan(
            """
            import numpy as np

            def synthesize(amplitudes, kernel):
                return np.convolve(amplitudes, kernel)
            """, ConvolveOutsideOracleRule())
        assert rule_ids(result) == ["P602"]
        assert "reconstruct" in result.findings[0].message

    def test_positive_from_import_and_module_scope(self):
        result = scan(
            """
            from numpy import convolve
            import numpy

            waveform = convolve([1.0], [1.0])
            other = numpy.convolve([1.0], [1.0])
            """, ConvolveOutsideOracleRule())
        assert rule_ids(result) == ["P602", "P602"]

    def test_negative_sanctioned_oracle_function(self):
        # the default config blesses reconstruction._direct_reconstruct
        result = check_source(textwrap.dedent(
            """
            import numpy as np

            def _direct_reconstruct(amplitudes, kernel):
                return np.convolve(amplitudes, kernel)
            """), [ConvolveOutsideOracleRule()], EVERYWHERE,
            path="src/repro/signal/reconstruction.py")
        assert result.findings == []

    def test_negative_other_convolve_functions(self):
        # scipy.signal.convolve, method calls, and unrelated names
        result = scan(
            """
            from scipy.signal import convolve

            def smooth(signal, kernel):
                return convolve(signal, kernel)
            """, ConvolveOutsideOracleRule())
        assert result.findings == []

    def test_suppressed_filtering_convolution(self):
        result = scan(
            """
            import numpy as np

            def smooth(signal, kernel):
                # repro: allow[P602] a smoothing filter, not synthesis
                return np.convolve(signal, kernel, mode="same")
            """, ConvolveOutsideOracleRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["P602"]

    def test_convolve_sites_audited_on_this_repo(self):
        # the engine's oracle is config-sanctioned; the smoothing
        # filters and the measured-hardware emitter carry allow tags
        analyzer = Analyzer([ConvolveOutsideOracleRule()],
                            load_config(REPO_ROOT), REPO_ROOT)
        result = analyzer.run(["src/repro"])
        assert result.findings == []
        assert len(result.suppressed) == 4


# ---------------------------------------------------------------------------
# framework: suppressions, baseline, determinism, exit codes
# ---------------------------------------------------------------------------
class TestFramework:
    def test_standalone_multiline_suppression_comment(self):
        result = scan(
            """
            import sys
            # repro: allow[E304] this code is part of an external
            # protocol documented elsewhere; keep as-is.
            sys.exit(99)
            """, ExitCodeTableRule())
        assert result.findings == []
        assert rule_ids_suppressed(result) == ["E304"]

    def test_suppression_is_rule_specific(self):
        result = scan(
            "import sys\n"
            "sys.exit(99)  # repro: allow[D101] wrong rule id\n",
            ExitCodeTableRule())
        assert rule_ids(result) == ["E304"]

    def test_repo_scan_is_clean_and_matches_baseline(self):
        config = load_config(REPO_ROOT)
        analyzer = Analyzer(all_rules(), config, root=REPO_ROOT)
        result = analyzer.run()
        baseline = load_baseline(os.path.join(REPO_ROOT,
                                              config.baseline))
        new, stale = apply_baseline(result.findings, baseline)
        assert new == [], "unsuppressed findings:\n" + "\n".join(
            finding.format() for finding in new)
        assert stale == [], "stale baseline entries:\n" + "\n".join(
            entry.format() for entry in stale)

    def test_json_report_is_byte_identical_across_runs(self):
        config = load_config(REPO_ROOT)

        def render():
            analyzer = Analyzer(all_rules(), config, root=REPO_ROOT)
            result = analyzer.run()
            new, stale = apply_baseline(
                result.findings,
                load_baseline(os.path.join(REPO_ROOT, config.baseline)))
            return render_json(result, new, stale)

        first, second = render(), render()
        assert first == second
        document = json.loads(first)
        assert document["schema"] == "repro-lint/1"
        assert document["findings"] == []

    def test_baseline_roundtrip_and_stale_detection(self, tmp_path):
        from tools.analysis.core import Finding
        old = Finding(path="a.py", line=1, col=0, rule="D101",
                      message="legacy")
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [old])
        loaded = load_baseline(path)
        assert loaded == [old]
        new, stale = apply_baseline([], loaded)
        assert new == [] and stale == [old]

    def test_exit_codes_follow_repro_error_table(self):
        from repro.robustness import AnalysisError, ConfigurationError
        assert EXIT_FINDINGS == AnalysisError.exit_code == 17
        assert EXIT_CONFIG == ConfigurationError.exit_code == 16

    def test_fallback_error_names_in_sync(self):
        assert repro_error_names() == FALLBACK_REPRO_ERRORS

    def test_cli_unknown_rule_id_is_config_error(self, capsys):
        assert lint_main(["--select", "Z999"]) == EXIT_CONFIG
        assert "Z999" in capsys.readouterr().err

    def test_cli_reports_findings_with_analysis_exit_code(self, capsys):
        # scan a tree that cannot be clean: the fixtures in this test
        # file would be flagged if tests/ were on the lint surface --
        # instead aim the CLI at a rule/virtual-path combination that
        # must stay clean, then at a deliberately bad temp file.
        assert lint_main(["--select", "D101", "src"]) == 0

    def test_module_entry_point_runs(self):
        process = subprocess.run(
            [sys.executable, "-m", "tools.analysis", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True)
        assert process.returncode == 0
        assert "D101" in process.stdout


def rule_ids_suppressed(result):
    """Rule ids of the suppressed findings (ordering helper)."""
    return [finding.rule for finding in result.suppressed]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
