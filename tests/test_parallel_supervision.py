"""Tests for the supervised campaign runtime (repro.parallel).

Worker functions live at module top level so they pickle into pool
workers; faulty behaviors (crash once, hang once, raise once) are
steered by marker files in a per-test directory, which works across
process boundaries and makes "fail only on the first attempt"
expressible without shared memory.
"""

import os
import time

import numpy as np
import pytest

from repro.parallel import (MAX_WORKERS, CampaignLedger, ItemOutcome,
                            OUTCOME_OK, OUTCOME_QUARANTINED,
                            OUTCOME_RETRIED, OUTCOME_TIMEOUT,
                            SupervisionPolicy, parallel_map,
                            resolve_workers, retry_backoff, spawn_seed,
                            supervised_map)
from repro.robustness import CampaignError, ConfigurationError

# generous deadline for tests that need pool-mode supervision (crash
# detection) but must never trip on a slow CI machine
SAFE_TIMEOUT = 60.0


def square(value):
    return value * value


def slow_square(value):
    time.sleep(0.05)
    return value * value


def marker_flaky(item):
    """Fail the first attempt of every third item, then succeed."""
    value, directory = item
    marker = os.path.join(directory, f"flaky_{value}")
    if value % 3 == 0 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"first attempt of {value} fails")
    return value * 10


def marker_crash_once(item):
    """SIGKILL-equivalent death on the first attempt of item 2."""
    value, directory = item
    marker = os.path.join(directory, f"crash_{value}")
    if value == 2 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return value + 100


def always_crash(item):
    value, _ = item
    if value == 3:
        os._exit(1)
    return value


def always_raise(value):
    raise ValueError(f"poisoned item {value}")


def hang_item(item):
    value, _ = item
    if value == 1:
        time.sleep(120)
    return value


def hang_once(item):
    """Hang only on the first attempt of item 1."""
    value, directory = item
    marker = os.path.join(directory, f"hang_{value}")
    if value == 1 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(120)
    return value * 7


class TestResolveWorkers:
    def test_integers_and_strings(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("4") == 4
        assert resolve_workers(0) == 1
        assert resolve_workers(-2) == 1
        assert resolve_workers(10_000) == MAX_WORKERS

    def test_auto_and_none(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers(None) >= 1

    def test_non_numeric_string_raises_configuration_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_workers("fast")
        assert "'fast'" in str(excinfo.value)
        assert excinfo.value.exit_code == 16

    def test_other_junk_raises_configuration_error(self):
        for junk in ("", "3.5", [], object()):
            with pytest.raises(ConfigurationError):
                resolve_workers(junk)


class TestParallelMapCompatibility:
    def test_serial_matches_pool(self):
        items = list(range(20))
        assert parallel_map(square, items, workers=1) == \
            parallel_map(square, items, workers=4)

    def test_generator_input(self):
        """Generators are materialized once; serial and pool paths agree
        (the satellite regression: generators consumed twice)."""
        serial = parallel_map(square, (i for i in range(12)), workers=1)
        pooled = parallel_map(square, (i for i in range(12)), workers=4)
        assert serial == pooled == [i * i for i in range(12)]

    def test_empty_and_single(self):
        assert parallel_map(square, [], workers=4) == []
        assert parallel_map(square, [5], workers=4) == [25]

    def test_exceptions_propagate_by_default(self):
        with pytest.raises(ValueError, match="poisoned"):
            parallel_map(always_raise, [1, 2, 3], workers=1)
        with pytest.raises(ValueError, match="poisoned"):
            parallel_map(always_raise, [1, 2, 3], workers=4,
                         timeout=SAFE_TIMEOUT)

    def test_chunk_size_accepted(self):
        assert parallel_map(square, [1, 2], workers=2, chunk_size=7) \
            == [1, 4]

    def test_timeout_propagates_campaign_error(self):
        with pytest.raises(CampaignError):
            parallel_map(hang_item, [(i, "") for i in range(3)],
                         workers=2, timeout=0.5)


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_raise_then_succeed(self, tmp_path, workers):
        items = [(i, str(tmp_path / f"w{workers}")) for i in range(9)]
        os.makedirs(str(tmp_path / f"w{workers}"))
        results, ledger = supervised_map(
            marker_flaky, items, workers=workers,
            timeout=SAFE_TIMEOUT, max_item_retries=2)
        assert results == [i * 10 for i in range(9)]
        for outcome in ledger.outcomes:
            expected = OUTCOME_RETRIED if outcome.index % 3 == 0 \
                else OUTCOME_OK
            assert outcome.status == expected
        assert ledger.complete
        assert ledger.quarantined == []

    def test_ledger_deterministic_across_worker_counts(self, tmp_path):
        """The same faults yield the same ledger at 1 and 4 workers."""
        summaries = []
        for workers in (1, 4):
            directory = str(tmp_path / f"run{workers}")
            os.makedirs(directory)
            results, ledger = supervised_map(
                marker_flaky, [(i, directory) for i in range(9)],
                workers=workers, timeout=SAFE_TIMEOUT,
                max_item_retries=2)
            summaries.append(
                (results,
                 [(o.status, o.attempts, o.retries, round(o.waited, 12))
                  for o in ledger.outcomes]))
        assert summaries[0] == summaries[1]

    def test_exhausted_item_quarantined(self):
        results, ledger = supervised_map(
            always_raise, list(range(4)), workers=1, max_item_retries=1)
        assert results == [None] * 4
        assert all(o.status == OUTCOME_QUARANTINED
                   for o in ledger.outcomes)
        assert all(o.attempts == 2 for o in ledger.outcomes)
        assert all("poisoned" in o.errors[0] for o in ledger.outcomes)
        assert ledger.quarantined == [0, 1, 2, 3]
        assert not ledger.complete

    def test_backoff_deterministic(self):
        waits = [retry_backoff(7, 3, attempt) for attempt in range(4)]
        again = [retry_backoff(7, 3, attempt) for attempt in range(4)]
        assert waits == again
        assert all(wait > 0 for wait in waits)
        # a different item draws different jitter
        assert retry_backoff(7, 4, 0) != waits[0]
        # the policy records backoff without sleeping by default
        policy = SupervisionPolicy(seed=7)
        assert policy.backoff(3, 0) == waits[0]

    def test_backoff_sleep_injectable(self, tmp_path):
        slept = []
        directory = str(tmp_path)
        results, ledger = supervised_map(
            marker_flaky, [(3, directory)], workers=1,
            max_item_retries=1, sleep=slept.append)
        assert results == [30]
        assert len(slept) == 1
        assert slept[0] == ledger.outcomes[0].waited


class TestCrash:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_crash_once_then_succeed(self, tmp_path, workers):
        directory = str(tmp_path / f"w{workers}")
        os.makedirs(directory)
        items = [(i, directory) for i in range(6)]
        results, ledger = supervised_map(
            marker_crash_once, items, workers=workers,
            timeout=SAFE_TIMEOUT, max_item_retries=2)
        assert results == [i + 100 for i in range(6)]
        assert ledger.outcomes[2].status == OUTCOME_RETRIED
        assert ledger.outcomes[2].crashes == 1
        assert all(ledger.outcomes[i].status == OUTCOME_OK
                   for i in range(6) if i != 2)

    def test_persistent_crash_quarantined(self):
        items = [(i, "") for i in range(6)]
        results, ledger = supervised_map(
            always_crash, items, workers=2,
            timeout=SAFE_TIMEOUT, max_item_retries=1)
        assert results[3] is None
        assert [r for i, r in enumerate(results) if i != 3] == \
            [0, 1, 2, 4, 5]
        assert ledger.outcomes[3].status == OUTCOME_QUARANTINED
        assert ledger.outcomes[3].crashes == 2
        assert ledger.quarantined == [3]


class TestHang:
    def test_hung_worker_times_out(self):
        items = [(i, "") for i in range(4)]
        results, ledger = supervised_map(
            hang_item, items, workers=2, timeout=1.0,
            max_item_retries=0)
        assert results == [0, None, 2, 3]
        assert ledger.outcomes[1].status == OUTCOME_TIMEOUT
        assert ledger.outcomes[1].timeouts == 1
        assert ledger.pool_rebuilds >= 1
        # innocents resubmitted after the rebuild are never charged
        assert all(ledger.outcomes[i].attempts == 1
                   for i in (0, 2, 3))

    def test_hang_once_then_succeed(self, tmp_path):
        directory = str(tmp_path)
        items = [(i, directory) for i in range(4)]
        results, ledger = supervised_map(
            hang_once, items, workers=2, timeout=2.0,
            max_item_retries=2)
        assert results == [0, 7, 14, 21]
        assert ledger.outcomes[1].status == OUTCOME_RETRIED
        assert ledger.outcomes[1].timeouts == 1

    def test_timeout_even_at_one_worker(self):
        """A timeout forces pool mode so hangs are recoverable at
        workers=1 too."""
        items = [(i, "") for i in range(3)]
        results, ledger = supervised_map(
            hang_item, items, workers=1, timeout=1.0,
            max_item_retries=0)
        assert results == [0, None, 2]
        assert ledger.outcomes[1].status == OUTCOME_TIMEOUT


class TestLedger:
    def test_counts_and_summary(self):
        ledger = CampaignLedger(outcomes=[
            ItemOutcome(index=0),
            ItemOutcome(index=1, status=OUTCOME_RETRIED, retries=1),
            ItemOutcome(index=2, status=OUTCOME_TIMEOUT, timeouts=3),
        ], pool_rebuilds=2)
        assert ledger.counts() == {OUTCOME_OK: 1, OUTCOME_RETRIED: 1,
                                   OUTCOME_TIMEOUT: 1,
                                   OUTCOME_QUARANTINED: 0}
        assert ledger.quarantined == [2]
        assert not ledger.complete
        summary = ledger.summary()
        assert "3 items" in summary and "pool_rebuilds=2" in summary

    def test_outcome_to_dict_round_trips_json(self):
        import json
        outcome = ItemOutcome(index=4, status=OUTCOME_RETRIED,
                              attempts=2, retries=1,
                              errors=["x"], waited=0.25)
        assert json.loads(json.dumps(outcome.to_dict()))["index"] == 4


class TestSpawnSeed:
    def test_streams_independent(self):
        base = spawn_seed(1, 2).random(4)
        assert not np.allclose(base, spawn_seed(1, 2, stream=1).random(4))
        assert np.allclose(base, spawn_seed(1, 2).random(4))
