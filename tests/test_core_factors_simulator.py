"""Unit tests for activity-factor models and the EMSim facade internals."""

import numpy as np
import pytest

from repro.core.activity import (average_alpha, stage_design_matrix,
                                 stage_feature_names)
from repro.core.config import EMSimConfig, ModelSwitches
from repro.core.factors import (ALPHA_MAX, AverageActivity,
                                RegressionActivity, UnitActivity)
from repro.core.model import EMSimModel
from repro.core.regression import LinearModel
from repro.isa import Instruction
from repro.uarch import STAGES, run_program, stage_bit_count
from repro.uarch.latches import STAGE_REGISTERS
from repro.workloads import nop_padded


@pytest.fixture(scope="module")
def trace():
    program = nop_padded([Instruction("mul", rd=5, rs1=8, rs2=9),
                          Instruction("add", rd=6, rs1=5, rs2=5)])
    result, _ = run_program(program)
    return result


def test_unit_activity_is_one(trace):
    model = UnitActivity()
    for stage in STAGES:
        assert np.all(model.alpha(trace, stage) == 1.0)


def test_average_activity_eq7(trace):
    """Eq. 7: alpha = 1 + (flips_new - flips_base)/flips_total."""
    base = {stage: 10.0 for stage in STAGES}
    model = AverageActivity(base_flips=base)
    for stage in STAGES:
        flips = trace.flip_counts(stage).astype(float)
        expected = np.clip(1.0 + (flips - 10.0) / stage_bit_count(stage),
                           0.0, ALPHA_MAX)
        assert np.allclose(model.alpha(trace, stage), expected)


def test_average_alpha_function():
    assert average_alpha(np.array([0.0]), 0.0, "E")[0] == 1.0
    total = stage_bit_count("E")
    assert average_alpha(np.array([float(total)]), 0.0, "E")[0] == 2.0


def test_regression_activity_without_model_defaults_to_one(trace):
    model = RegressionActivity(models={})
    assert np.all(model.alpha(trace, "E") == 1.0)


def test_regression_activity_clips(trace):
    huge = LinearModel(intercept=100.0, coefficients=np.zeros(0),
                       features=np.zeros(0, dtype=int))
    model = RegressionActivity(models={"E": huge})
    assert np.all(model.alpha(trace, "E") == ALPHA_MAX)


def test_stage_design_matrix_layout(trace):
    for stage in STAGES:
        design = stage_design_matrix(trace, stage)
        names = stage_feature_names(stage)
        num_registers = len(STAGE_REGISTERS[stage])
        assert design.shape == (trace.num_cycles, len(names))
        assert names[0].startswith("count:")
        assert names[num_registers].startswith("bit:")
        # count columns equal the sum of their bit columns
        bits = trace.transition_matrix(stage)
        assert np.allclose(design[:, :num_registers].sum(axis=1),
                           bits.sum(axis=1))


def test_model_amplitude_fallbacks():
    config = EMSimConfig()
    model = EMSimModel(config=config,
                       amplitudes={("load", "E"): 0.5,
                                   ("load_mem", "M"): 1.0,
                                   ("load_cache", "M"): 0.4,
                                   ("alu", "E"): 0.3})
    # dynamic load variants fall back to the static load entry early on
    assert model.amplitude("load_mem", "E") == 0.5
    # cache-disabled ablation maps memory loads onto cache hits
    switches = ModelSwitches(model_cache=False)
    assert model.amplitude("load_mem", "M", switches) == 0.4
    # single-source ablation averages a class over stages
    switches = ModelSwitches(per_stage_sources=False)
    assert model.amplitude("alu", "M", switches) == pytest.approx(0.3)
    # unknown class contributes nothing
    assert model.amplitude("system", "E") == 0.0


def test_predict_zeroes_stalled_stages(trace):
    config = EMSimConfig()
    model = EMSimModel(config=config,
                       amplitudes={("muldiv", "E"): 1.0,
                                   ("muldiv_final", "E"): 2.0},
                       floors={stage: 0.1 for stage in STAGES},
                       miso={stage: 1.0 for stage in STAGES})
    with_stalls = model.predict_cycle_amplitudes(trace)
    switches = ModelSwitches(model_stalls=False)
    without = model.predict_cycle_amplitudes(trace, switches=switches)
    stall_cycles = [cycle for cycle, occ in enumerate(trace.occupancy["E"])
                    if occ.kind == "stall" and occ.instr is not None
                    and occ.instr.name == "mul"]
    assert stall_cycles
    for cycle in stall_cycles:
        assert without[cycle] > with_stalls[cycle]


def test_simulator_effective_config_no_cache():
    from repro.core.simulator import EMSim
    model = EMSimModel(config=EMSimConfig())
    simulator = EMSim(model).with_switches(model_cache=False)
    assert simulator._effective_core_config().cache.miss_extra_cycles == 0
    full = EMSim(model)
    assert full._effective_core_config().cache.miss_extra_cycles == 2
