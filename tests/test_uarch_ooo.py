"""Tests for the out-of-order core (repro.uarch.ooo, paper §VIII)."""

import pytest

from repro.isa import Instruction, assemble
from repro.uarch import (CoreConfig, GoldenSimulator, OutOfOrderCore,
                         run_program, run_program_ooo)
from repro.workloads import ALL_KERNELS, RandomProgramBuilder, nop_padded


def _assert_matches_golden(program, config=None):
    golden = GoldenSimulator(program)
    golden.run(max_steps=500_000)
    assert golden.halted
    trace, core = run_program_ooo(program, config=config or CoreConfig())
    assert core.halted
    for index in range(32):
        assert golden.registers[index] == core.regfile.peek(index), \
            f"x{index}"
    pipe_memory = core.memory.snapshot()
    for address, value in golden.memory.items():
        assert pipe_memory.get(address, 0) == value
    for address, value in pipe_memory.items():
        assert golden.memory.get(address, 0) == value
    assert golden.retired == trace.instructions_retired
    return trace, core


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_kernels_match_golden(name):
    _assert_matches_golden(ALL_KERNELS[name]())


@pytest.mark.parametrize("seed", range(10))
def test_random_programs_match_golden(seed):
    _assert_matches_golden(RandomProgramBuilder(seed=seed).program(100))


def test_ooo_overlaps_independent_work():
    """An independent ALU chain hides a long divide — the defining OoO
    behaviour the in-order core cannot show."""
    source = """
    li t0, 1000
    li t1, 7
    div t2, t0, t1      # long-latency
    addi t3, t3, 1      # independent chain
    addi t3, t3, 1
    addi t3, t3, 1
    addi t3, t3, 1
    addi t3, t3, 1
    add t4, t2, t3      # joins the results
    ebreak
    """
    program = assemble(source)
    config = CoreConfig(div_latency=12)
    ooo_trace, ooo_core = run_program_ooo(program, config=config)
    in_trace, _ = run_program(program, config=config)
    assert ooo_core.regfile.peek(29) == 1000 // 7 + 5
    # the independent addi chain executes *while* the divide is busy
    div_seq = next(index for index, instr
                   in enumerate(program.instructions)
                   if instr.name == "div")
    div_done = max(ooo_trace.cycles_of(div_seq, "E"))
    overlapped = sum(
        1 for cycle, occ in enumerate(ooo_trace.occupancy["E"])
        if cycle < div_done and occ.active and occ.instr is not None
        and occ.instr.name == "addi")
    assert overlapped >= 3
    # the in-order core cannot overlap at all: its addis only enter
    # Execute after the divide leaves it
    in_div_cycles = in_trace.cycles_of(div_seq, "E")
    in_addi_cycles = [cycle for cycle, occ
                      in enumerate(in_trace.occupancy["E"])
                      if occ.active and occ.instr is not None
                      and occ.instr.name == "addi"
                      and cycle > min(in_div_cycles)]
    assert all(cycle > max(in_div_cycles) for cycle in in_addi_cycles)


def test_ooo_faster_on_memory_bound_code():
    from repro.workloads import dot_product
    program = dot_product(12)
    ooo_trace, _ = run_program_ooo(program)
    in_trace, _ = run_program(program)
    assert ooo_trace.num_cycles < in_trace.num_cycles


def test_wrong_path_store_never_commits():
    """A store younger than a mispredicted branch must not touch memory
    — the OoO store-speculation guard."""
    program = assemble("""
    li t0, 1
    li t1, 0x10300
    bnez t0, skip      # taken; cold BTB -> mispredicted
    sw t0, 0(t1)       # wrong path
skip:
    nop
    ebreak
    """)
    _, core = run_program_ooo(program)
    assert core.memory.load_word(0x10300) == 0


def test_in_order_commit():
    program = RandomProgramBuilder(seed=4).program(60)
    trace, _ = run_program_ooo(program)
    golden = GoldenSimulator(program)
    order = []
    while True:
        instr = golden.step()
        if instr is None:
            break
        order.append(instr)
    assert [entry.instr for entry in trace.retired] == order
    cycles = [entry.cycle for entry in trace.retired]
    assert all(a <= b for a, b in zip(cycles, cycles[1:]))


def test_rob_capacity_stalls_rename():
    # a long divide at the head backs up the ROB
    program = nop_padded([Instruction("div", rd=5, rs1=8, rs2=9)] +
                         [Instruction("addi", rd=6, rs1=6, imm=1)] * 24,
                         before=2, after=2)
    config = CoreConfig(div_latency=30)
    trace, core = run_program_ooo(program, config=config)
    assert core.halted
    rename_stalls = [stall for stall in trace.stalls
                     if stall.stage == "D"]
    assert rename_stalls  # the ROB filled up behind the divide


def test_trace_schema_compatible_with_em_stack():
    """The OoO trace feeds the emitter/EM model unchanged."""
    from repro.hardware import HardwareDevice
    program = ALL_KERNELS["checksum"](16)
    device = HardwareDevice(core_kind="out-of-order")
    measurement = device.capture_ideal(program)
    assert measurement.num_cycles == measurement.trace.num_cycles
    assert float((measurement.signal ** 2).mean()) > 0
    for stage in ("F", "D", "E", "M", "W"):
        assert len(measurement.trace.occupancy[stage]) == \
            measurement.trace.num_cycles


def test_unknown_core_kind_rejected():
    from repro.hardware import HardwareDevice
    with pytest.raises(ValueError):
        HardwareDevice(core_kind="vliw")


def test_ebreak_drains_rob():
    program = assemble("li t0, 5\nmul t1, t0, t0\nebreak\nli t2, 9")
    trace, core = run_program_ooo(program)
    assert core.halted
    assert core.regfile.peek(6) == 25
    assert core.regfile.peek(7) == 0  # never fetched past ebreak
