"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.hardware import HardwareDevice


@pytest.fixture(scope="session")
def device():
    """A default DE0-CV bench shared across tests (read-only use)."""
    return HardwareDevice()


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
