"""Tests for the content-addressed trace cache (repro.core.trace_cache).

The load-bearing contract: cached and uncached runs produce
**bit-identical** artifacts — for raw activity traces, for ideal-capture
measurements, and under fault injection (faults corrupt only the scope
path, never the trace, so they must not defeat or poison the cache).
"""

import pickle

import numpy as np
import pytest

from repro.core.microbench import REPRESENTATIVES, isolation_probe, \
    pair_probe
from repro.core.trace_cache import (TraceCache, configure_trace_cache,
                                    get_trace_cache, trace_cache_disabled,
                                    trace_key)
from repro.hardware import HardwareDevice
from repro.profiling import disable_profiling, enable_profiling
from repro.robustness import FaultPlan
from repro.uarch.config import CoreConfig

ALU = REPRESENTATIVES["alu"]
LOAD = REPRESENTATIVES["load"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts from an empty, enabled in-memory global cache."""
    configure_trace_cache(directory="", enabled=True, clear=True)
    yield
    configure_trace_cache(directory="", enabled=True, clear=True)


# ---------------------------------------------------------------------------
# key discrimination
# ---------------------------------------------------------------------------
def test_trace_key_discriminates_every_input():
    config = CoreConfig()
    base = trace_key(isolation_probe(ALU), config)
    assert trace_key(isolation_probe(ALU), config) == base
    assert trace_key(isolation_probe(LOAD), config) != base
    assert trace_key(isolation_probe(ALU), config,
                     core_kind="ooo") != base
    assert trace_key(isolation_probe(ALU), config,
                     max_cycles=64) != base
    assert trace_key(isolation_probe(ALU), config, salt="x") != base


def test_trace_key_ignores_program_name():
    config = CoreConfig()
    first = isolation_probe(ALU)
    renamed = type(first)(instructions=first.instructions,
                          data=dict(first.data),
                          symbols=dict(first.symbols),
                          entry=first.entry, name="something_else")
    assert trace_key(renamed, config) == trace_key(first, config)


def test_trace_key_sees_data_and_config():
    config = CoreConfig()
    first = isolation_probe(ALU)
    patched = type(first)(instructions=first.instructions,
                          data={**first.data,
                                max(first.data, default=0) + 1: 7},
                          symbols=dict(first.symbols),
                          entry=first.entry, name=first.name)
    assert trace_key(patched, config) != trace_key(first, config)
    other = CoreConfig(mul_latency=config.mul_latency + 1)
    assert trace_key(first, other) != trace_key(first, config)


# ---------------------------------------------------------------------------
# bit-identity of cached artifacts
# ---------------------------------------------------------------------------
def test_cached_trace_is_bit_identical():
    device = HardwareDevice()
    program = pair_probe(ALU, LOAD)
    first = device.run_trace(program)
    again = device.run_trace(program)
    assert again is first  # served from cache
    with trace_cache_disabled():
        fresh = device.run_trace(program)
    assert fresh is not first
    assert pickle.dumps(fresh) == pickle.dumps(first)


def test_cached_ideal_capture_survives_device_recreation():
    program = isolation_probe(ALU)
    first = HardwareDevice().capture_ideal(program)
    again = HardwareDevice().capture_ideal(program)
    assert again is first
    with trace_cache_disabled():
        fresh = HardwareDevice().capture_ideal(program)
    assert np.array_equal(fresh.signal, first.signal)


def test_fault_injection_does_not_change_traces():
    program = pair_probe(ALU, LOAD)
    clean = HardwareDevice().run_trace(program)
    configure_trace_cache(clear=True)
    faulty_device = HardwareDevice(
        fault_plan=FaultPlan.preset(0.5, seed=11))
    faulty = faulty_device.run_trace(program)
    assert pickle.dumps(faulty) == pickle.dumps(clean)
    with trace_cache_disabled():
        uncached = faulty_device.run_trace(program)
    assert pickle.dumps(uncached) == pickle.dumps(clean)


def test_alu_bug_bypasses_the_cache():
    from repro.leakage.debugging import buggy_multiplier

    program = isolation_probe(ALU)
    healthy = HardwareDevice().run_trace(program)
    buggy = HardwareDevice(alu_bug=buggy_multiplier).run_trace(program)
    assert buggy is not healthy


# ---------------------------------------------------------------------------
# storage behavior
# ---------------------------------------------------------------------------
def test_lru_eviction_is_bounded():
    cache = TraceCache(capacity=2)
    cache.store("a", 1)
    cache.store("b", 2)
    cache.store("c", 3)
    assert cache.stats.evictions == 1
    assert cache.lookup("a") is None
    assert cache.lookup("b") == 2 and cache.lookup("c") == 3


def test_disk_layer_roundtrip_and_corruption(tmp_path):
    directory = str(tmp_path / "cache")
    writer = TraceCache(directory=directory)
    writer.store("deadbeef", {"payload": np.arange(4)})
    reader = TraceCache(directory=directory)
    value = reader.lookup("deadbeef")
    assert value is not None and np.array_equal(value["payload"],
                                                np.arange(4))
    assert reader.stats.disk_hits == 1
    (tmp_path / "cache" / "deadbeef.pkl").write_bytes(b"not a pickle")
    assert TraceCache(directory=directory).lookup("deadbeef") is None


def test_disabled_cache_reruns_but_counts():
    cache = TraceCache(enabled=False)
    calls = []
    program, config = isolation_probe(ALU), CoreConfig()
    for _ in range(2):
        cache.get_or_run(program, config,
                         lambda: calls.append(1) or len(calls))
    assert len(calls) == 2
    assert cache.stats.misses == 2 and cache.stats.hits == 0


def test_profiler_sees_hit_and_miss_counters():
    profiler = enable_profiling()
    profiler.reset()
    try:
        cache = TraceCache()
        program, config = isolation_probe(ALU), CoreConfig()
        cache.get_or_run(program, config, lambda: "v", category="unit")
        cache.get_or_run(program, config, lambda: "v", category="unit")
    finally:
        disable_profiling()
    assert profiler.counters["trace_cache.unit.misses"] == 1
    assert profiler.counters["trace_cache.unit.hits"] == 1


def test_configure_trace_cache_controls_the_global_instance():
    cache = configure_trace_cache(capacity=3)
    assert cache is get_trace_cache() and cache.capacity == 3
    configure_trace_cache(enabled=False)
    assert get_trace_cache().enabled is False
    configure_trace_cache(enabled=True, directory="/tmp/somewhere")
    assert get_trace_cache().directory == "/tmp/somewhere"
    configure_trace_cache(directory="")
    assert get_trace_cache().directory is None
