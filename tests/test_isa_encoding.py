"""Tests for instruction encoding/decoding (repro.isa.encoding)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import decode, encode, sign_extend, to_unsigned
from repro.isa.spec import ALL_MNEMONICS, OPCODES, InstrFormat


# ----------------------------------------------------------------------
# helpers for hypothesis strategies
# ----------------------------------------------------------------------
def _fields_strategy(name):
    """Strategy producing legal field dicts for one mnemonic."""
    spec = OPCODES[name]
    reg = st.integers(0, 31)
    if name in ("ecall", "ebreak", "fence"):
        return st.just({})
    if name in ("slli", "srli", "srai"):
        return st.fixed_dictionaries(
            {"rd": reg, "rs1": reg, "imm": st.integers(0, 31)})
    if spec.fmt is InstrFormat.R:
        return st.fixed_dictionaries({"rd": reg, "rs1": reg, "rs2": reg})
    if spec.fmt is InstrFormat.I:
        return st.fixed_dictionaries(
            {"rd": reg, "rs1": reg, "imm": st.integers(-2048, 2047)})
    if spec.fmt is InstrFormat.S:
        return st.fixed_dictionaries(
            {"rs1": reg, "rs2": reg, "imm": st.integers(-2048, 2047)})
    if spec.fmt is InstrFormat.B:
        return st.fixed_dictionaries(
            {"rs1": reg, "rs2": reg,
             "imm": st.integers(-2048, 2046).map(lambda v: v * 2)})
    if spec.fmt is InstrFormat.U:
        return st.fixed_dictionaries(
            {"rd": reg, "imm": st.integers(0, (1 << 20) - 1)})
    if spec.fmt is InstrFormat.J:
        return st.fixed_dictionaries(
            {"rd": reg,
             "imm": st.integers(-(1 << 19), (1 << 19) - 1).map(
                 lambda v: v * 2)})
    raise AssertionError(name)


@st.composite
def instructions(draw):
    name = draw(st.sampled_from(ALL_MNEMONICS))
    fields = draw(_fields_strategy(name))
    return name, fields


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
@given(instructions())
@settings(max_examples=400, deadline=None)
def test_encode_decode_round_trip(case):
    name, fields = case
    word = encode(name, **fields)
    assert 0 <= word < (1 << 32)
    decoded = decode(word)
    assert decoded["name"] == name
    for key, value in fields.items():
        assert decoded[key] == value, (name, key, fields, decoded)


@given(st.integers(-(1 << 31), (1 << 31) - 1), st.integers(1, 32))
def test_sign_extend_idempotent(value, bits):
    once = sign_extend(value, bits)
    assert sign_extend(once, bits) == once
    assert -(1 << (bits - 1)) <= once < (1 << (bits - 1))


@given(st.integers(-(1 << 31), 0))
def test_to_unsigned_inverts_sign_extend(value):
    assert sign_extend(to_unsigned(value, 32), 32) == value


# ----------------------------------------------------------------------
# fixed-vector tests (known encodings from the RISC-V spec)
# ----------------------------------------------------------------------
def test_known_encodings():
    # addi x0, x0, 0 is the canonical NOP: 0x00000013
    assert encode("addi", rd=0, rs1=0, imm=0) == 0x00000013
    # add x1, x2, x3
    assert encode("add", rd=1, rs1=2, rs2=3) == 0x003100B3
    # lui x5, 0x12345
    assert encode("lui", rd=5, imm=0x12345) == 0x123452B7
    # ecall / ebreak
    assert encode("ecall") == 0x00000073
    assert encode("ebreak") == 0x00100073


def test_branch_immediate_scrambling():
    # beq x1, x2, +16 : imm[12|10:5] rs2 rs1 000 imm[4:1|11] 1100011
    word = encode("beq", rs1=1, rs2=2, imm=16)
    assert decode(word)["imm"] == 16
    word = encode("beq", rs1=1, rs2=2, imm=-16)
    assert decode(word)["imm"] == -16


def test_jal_immediate_scrambling():
    for imm in (0, 2, -2, 4094, -4096, (1 << 20) - 2, -(1 << 20)):
        assert decode(encode("jal", rd=1, imm=imm))["imm"] == imm


def test_shift_amount_range_checked():
    with pytest.raises(ValueError):
        encode("slli", rd=1, rs1=1, imm=32)


def test_immediate_range_checked():
    with pytest.raises(ValueError):
        encode("addi", rd=1, rs1=1, imm=2048)
    with pytest.raises(ValueError):
        encode("addi", rd=1, rs1=1, imm=-2049)
    with pytest.raises(ValueError):
        encode("beq", rs1=1, rs2=2, imm=3)  # odd branch offset


def test_register_range_checked():
    with pytest.raises(ValueError):
        encode("add", rd=32, rs1=0, rs2=0)


def test_decode_rejects_garbage():
    with pytest.raises(ValueError):
        decode(0xFFFFFFFF)


def test_srai_vs_srli_distinguished():
    srai = encode("srai", rd=1, rs1=2, imm=5)
    srli = encode("srli", rd=1, rs1=2, imm=5)
    assert srai != srli
    assert decode(srai)["name"] == "srai"
    assert decode(srli)["name"] == "srli"
