"""Tests for waveform synthesis and amplitude deconvolution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.kernels import DampedSineKernel, RectKernel
from repro.signal.reconstruction import (estimate_cycle_amplitudes,
                                         peak_amplitudes, reconstruct,
                                         reconstruct_at)

KERNEL = DampedSineKernel(t0=0.25, theta=4.0)
SPC = 20


def test_single_impulse_reproduces_kernel():
    amplitudes = np.zeros(10)
    amplitudes[0] = 2.0
    signal = reconstruct(amplitudes, KERNEL, SPC)
    expected = 2.0 * KERNEL.sampled(SPC)
    assert np.allclose(signal[:len(expected)], expected)


def test_reconstruction_is_linear():
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 1, 16)
    b = rng.uniform(0, 1, 16)
    combined = reconstruct(a + 2 * b, KERNEL, SPC)
    separate = reconstruct(a, KERNEL, SPC) + 2 * reconstruct(b, KERNEL, SPC)
    assert np.allclose(combined, separate)


def test_rect_reconstruction_is_piecewise_constant():
    amplitudes = np.array([1.0, 3.0, 2.0])
    signal = reconstruct(amplitudes, RectKernel(), SPC)
    assert np.allclose(signal[:SPC], 1.0)
    assert np.allclose(signal[SPC:2 * SPC], 3.0)
    assert np.allclose(signal[2 * SPC:], 2.0)


@given(st.lists(st.floats(0.0, 5.0), min_size=4, max_size=40))
@settings(max_examples=50, deadline=None)
def test_deconvolution_inverts_reconstruction(amplitudes):
    amplitudes = np.asarray(amplitudes)
    signal = reconstruct(amplitudes, KERNEL, SPC)
    estimated = estimate_cycle_amplitudes(signal, KERNEL, SPC)
    assert np.allclose(estimated, amplitudes, atol=1e-6)


def test_deconvolution_rejects_misaligned_signal():
    import pytest
    with pytest.raises(ValueError):
        estimate_cycle_amplitudes(np.zeros(SPC + 3), KERNEL, SPC)


def test_reconstruct_at_matches_grid():
    rng = np.random.default_rng(1)
    amplitudes = rng.uniform(0, 2, 12)
    grid_signal = reconstruct(amplitudes, KERNEL, SPC)
    times = np.arange(len(grid_signal)) / SPC
    continuous = reconstruct_at(amplitudes, KERNEL, times)
    # reconstruct() truncates the kernel at its support; reconstruct_at
    # evaluates one lag further, so tails differ at the e^-theta*support
    # level
    assert np.allclose(continuous, grid_signal, atol=1e-4)


def test_reconstruct_at_outside_support_is_zero():
    amplitudes = np.ones(4)
    values = reconstruct_at(amplitudes, KERNEL, np.array([-1.0, 50.0]))
    assert np.allclose(values, 0.0)


def test_peak_amplitudes_tracks_scale():
    amplitudes = np.array([1.0, 0.0, 3.0, 0.0])
    signal = reconstruct(amplitudes, KERNEL, SPC)
    peaks = peak_amplitudes(signal, SPC)
    assert peaks[2] > peaks[0] > peaks[1]
