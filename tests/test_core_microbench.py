"""Tests for the model-building microbenchmarks (repro.core.microbench)."""

import pytest

from repro.core.microbench import (CLASS_MEMBERS, REPRESENTATIVES,
                                   all_combinations, combination_group,
                                   coverage_groups, double_load_probe,
                                   isolation_probe, pair_probe,
                                   probe_instruction_seq, repeat_probe)
from repro.uarch import GoldenSimulator, run_program


def test_representatives_cover_seven_classes():
    assert len(REPRESENTATIVES) == 7
    for cls, name in REPRESENTATIVES.items():
        assert name in CLASS_MEMBERS[cls]


def test_class_members_match_table_one_sizes():
    assert len(CLASS_MEMBERS["alu"]) == 13     # Table I row 1
    assert len(CLASS_MEMBERS["muldiv"]) == 8   # row 3
    assert len(CLASS_MEMBERS["load"]) == 5     # rows 4/6
    assert len(CLASS_MEMBERS["store"]) == 3    # row 5
    assert len(CLASS_MEMBERS["branch"]) == 6   # row 7


def test_all_combinations_count():
    combos = all_combinations()
    assert len(combos) == 7 ** 5 == 16807  # the paper's number
    assert len(set(combos)) == len(combos)


def test_isolation_probe_structure():
    program = isolation_probe("add")
    seq = probe_instruction_seq(program)
    assert program.instructions[seq].name == "add"
    # surrounded by NOPs
    assert program.instructions[seq - 1].is_nop
    assert program.instructions[seq + 1].is_nop
    trace, core = run_program(program)
    assert core.halted


def test_isolation_probe_zero_operands_by_default():
    program = isolation_probe("add")
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[8] == 0 and golden.registers[9] == 0


def test_isolation_probe_operand_values_loaded():
    program = isolation_probe("add", rs1_value=0x12345678,
                              rs2_value=0xDEADBEEF)
    golden = GoldenSimulator(program)
    golden.run()
    assert golden.registers[8] == 0x12345678
    assert golden.registers[9] == 0xDEADBEEF


@pytest.mark.parametrize("name", sorted(REPRESENTATIVES.values()))
def test_every_representative_probe_runs(name):
    program = isolation_probe(name, rs1_value=3, rs2_value=5)
    trace, core = run_program(program)
    assert core.halted
    assert trace.instructions_retired >= len(program) - 2


def test_double_load_probe_miss_then_hit():
    program = double_load_probe("lw")
    trace, _ = run_program(program)
    hits = [event.hit for event in trace.cache_events]
    assert hits == [False, True]


def test_repeat_probe_has_identical_instances():
    program = repeat_probe("add", rs1_value=7, rs2_value=9, count=3)
    seq = probe_instruction_seq(program)
    instrs = program.instructions[seq:seq + 3]
    assert len({instr for instr in instrs}) == 1
    trace, core = run_program(program)
    assert core.halted


def test_pair_probe_runs():
    program = pair_probe("add", "sll")
    trace, core = run_program(program)
    assert core.halted


def test_combination_group_runs_and_halts():
    combos = all_combinations()[:64]
    program = combination_group(combos, seed=3)
    trace, core = run_program(program, max_cycles=100_000)
    assert core.halted
    assert trace.num_cycles < 10_000


def test_combination_group_exercises_all_classes():
    combos = all_combinations()[:128]
    program = combination_group(combos, seed=5)
    trace, _ = run_program(program, max_cycles=100_000)
    executed_classes = {occ.em_class()
                        for occ in trace.occupancy["E"] if occ.active}
    assert {"alu", "shift", "muldiv", "load", "store",
            "branch"} <= executed_classes


def test_coverage_groups_partition_all_combinations():
    groups = coverage_groups(group_size=1024)
    assert len(groups) == 17  # the paper's 17 groups
    # every group is a distinct program
    assert len({group.name for group in groups}) == 17


def test_coverage_groups_full_isa_variant():
    groups = coverage_groups(group_size=2048, use_full_isa=True,
                             limit_groups=1)
    mnemonics = {instr.name for instr in groups[0].instructions}
    assert len(mnemonics) > 15  # draws beyond the 7 representatives


def test_coverage_groups_terminate():
    for group in coverage_groups(group_size=512, seed=11, limit_groups=3):
        golden = GoldenSimulator(group)
        golden.run(max_steps=300_000)
        assert golden.halted, group.name
