"""Tests for regression + step-wise selection (repro.core.regression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression import (fit_full, fit_linear, stepwise_select)


def _synthetic(n=200, p=30, informative=(2, 7, 11), noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    design = rng.integers(0, 2, size=(n, p)).astype(float)
    coefficients = np.zeros(p)
    for index, column in enumerate(informative):
        coefficients[column] = 1.0 + index
    target = 0.5 + design @ coefficients + rng.normal(0, noise, n)
    return design, target, coefficients


def test_fit_linear_recovers_coefficients():
    design, target, coefficients = _synthetic()
    intercept, fitted = fit_linear(design, target)
    assert abs(intercept - 0.5) < 0.1
    assert np.allclose(fitted, coefficients, atol=0.1)


def test_fit_linear_weighted():
    design = np.array([[1.0], [1.0], [0.0]])
    target = np.array([2.0, 2.0, 0.0])
    # weight the last row heavily; the intercept should go to ~0
    intercept, coef = fit_linear(design, target,
                                 weights=np.array([1.0, 1.0, 100.0]))
    assert abs(intercept) < 0.05
    assert abs(coef[0] - 2.0) < 0.1


def test_stepwise_finds_informative_columns():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target, f_threshold=4.0)
    assert set(model.features) >= {2, 7, 11}
    assert model.features.size < 10  # noise columns mostly excluded
    assert model.r_squared > 0.98


def test_stepwise_reduces_feature_count_substantially():
    """The paper's '>65% of T removed' behaviour on sparse problems."""
    design, target, _ = _synthetic(p=80, informative=(1, 5, 40))
    model = stepwise_select(design, target, f_threshold=4.0)
    assert model.features.size <= 0.35 * 80


def test_stepwise_respects_max_features():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target, max_features=2)
    assert model.features.size <= 2


def test_stepwise_forced_features_always_kept():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target, forced_features=[0, 1])
    assert {0, 1} <= set(model.features)


def test_stepwise_handles_constant_columns():
    design = np.ones((50, 3))
    design[:, 1] = np.arange(50)
    target = 2.0 * design[:, 1] + 1.0
    model = stepwise_select(design, target)
    assert list(model.features) == [1]


def test_stepwise_pure_noise_selects_nothing():
    rng = np.random.default_rng(4)
    design = rng.normal(size=(100, 20))
    target = rng.normal(size=100)
    model = stepwise_select(design, target, f_threshold=12.0)
    assert model.features.size <= 2


def test_model_predict_shapes():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target)
    predictions = model.predict(design)
    assert predictions.shape == (design.shape[0],)
    single = model.predict(design[0])
    assert single.shape == (1,)


def test_fit_full_uses_every_column():
    design, target, _ = _synthetic(p=10, informative=(2, 7))
    model = fit_full(design, target)
    assert model.features.size == 10
    assert model.r_squared > 0.9


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_stepwise_never_beats_perfect_fit(seed):
    design, target, _ = _synthetic(seed=seed, noise=0.2)
    model = stepwise_select(design, target)
    assert model.r_squared <= 1.0 + 1e-9
    assert model.residual_variance >= 0.0
