"""Tests for regression + step-wise selection (repro.core.regression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression import (fit_full, fit_linear, stepwise_select)


def _synthetic(n=200, p=30, informative=(2, 7, 11), noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    design = rng.integers(0, 2, size=(n, p)).astype(float)
    coefficients = np.zeros(p)
    for index, column in enumerate(informative):
        coefficients[column] = 1.0 + index
    target = 0.5 + design @ coefficients + rng.normal(0, noise, n)
    return design, target, coefficients


def test_fit_linear_recovers_coefficients():
    design, target, coefficients = _synthetic()
    intercept, fitted = fit_linear(design, target)
    assert abs(intercept - 0.5) < 0.1
    assert np.allclose(fitted, coefficients, atol=0.1)


def test_fit_linear_weighted():
    design = np.array([[1.0], [1.0], [0.0]])
    target = np.array([2.0, 2.0, 0.0])
    # weight the last row heavily; the intercept should go to ~0
    intercept, coef = fit_linear(design, target,
                                 weights=np.array([1.0, 1.0, 100.0]))
    assert abs(intercept) < 0.05
    assert abs(coef[0] - 2.0) < 0.1


def test_stepwise_finds_informative_columns():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target, f_threshold=4.0)
    assert set(model.features) >= {2, 7, 11}
    assert model.features.size < 10  # noise columns mostly excluded
    assert model.r_squared > 0.98


def test_stepwise_reduces_feature_count_substantially():
    """The paper's '>65% of T removed' behaviour on sparse problems."""
    design, target, _ = _synthetic(p=80, informative=(1, 5, 40))
    model = stepwise_select(design, target, f_threshold=4.0)
    assert model.features.size <= 0.35 * 80


def test_stepwise_respects_max_features():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target, max_features=2)
    assert model.features.size <= 2


def test_stepwise_forced_features_always_kept():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target, forced_features=[0, 1])
    assert {0, 1} <= set(model.features)


def test_stepwise_handles_constant_columns():
    design = np.ones((50, 3))
    design[:, 1] = np.arange(50)
    target = 2.0 * design[:, 1] + 1.0
    model = stepwise_select(design, target)
    assert list(model.features) == [1]


def test_stepwise_pure_noise_selects_nothing():
    rng = np.random.default_rng(4)
    design = rng.normal(size=(100, 20))
    target = rng.normal(size=100)
    model = stepwise_select(design, target, f_threshold=12.0)
    assert model.features.size <= 2


def test_model_predict_shapes():
    design, target, _ = _synthetic()
    model = stepwise_select(design, target)
    predictions = model.predict(design)
    assert predictions.shape == (design.shape[0],)
    single = model.predict(design[0])
    assert single.shape == (1,)


def test_fit_full_uses_every_column():
    design, target, _ = _synthetic(p=10, informative=(2, 7))
    model = fit_full(design, target)
    assert model.features.size == 10
    assert model.r_squared > 0.9


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_stepwise_never_beats_perfect_fit(seed):
    design, target, _ = _synthetic(seed=seed, noise=0.2)
    model = stepwise_select(design, target)
    assert model.r_squared <= 1.0 + 1e-9
    assert model.residual_variance >= 0.0


# ---------------------------------------------------------------------------
# gram engine vs the naive reference
# ---------------------------------------------------------------------------
def _random_problem(seed):
    """A randomized step-wise problem in the trainer's design style."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(20, 60))
    p = int(rng.integers(5, 40))
    if seed % 2:
        design = (rng.random((n, p)) < 0.3).astype(float)
    else:
        design = rng.normal(size=(n, p))
    if seed % 3 == 0:
        design[:, int(rng.integers(0, p))] = 1.0  # constant column
    if seed % 4 == 0:
        design[:, -1] = design[:, 0]  # exact duplicate column
    k = int(rng.integers(1, min(n, p)))
    coefficients = np.zeros(p)
    coefficients[rng.choice(p, size=k, replace=False)] = \
        rng.normal(size=k) * 3
    target = design @ coefficients + \
        rng.normal(size=n) * (10.0 ** rng.integers(-6, 1))
    forced = list(rng.choice(p, size=int(rng.integers(0, 4)),
                             replace=True))
    max_features = None if seed % 5 else int(rng.integers(1, p + 1))
    ridge = float(10.0 ** rng.integers(-9, -4))
    return design, target, forced, max_features, ridge


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_stepwise_gram_matches_naive(seed):
    design, target, forced, max_features, ridge = _random_problem(seed)
    naive = stepwise_select(design, target, max_features=max_features,
                            ridge=ridge, forced_features=forced,
                            method="naive")
    gram = stepwise_select(design, target, max_features=max_features,
                           ridge=ridge, forced_features=forced,
                           method="gram")
    assert list(naive.features) == list(gram.features)
    assert naive.intercept == gram.intercept
    assert np.array_equal(naive.coefficients, gram.coefficients)


def test_stepwise_gram_matches_naive_on_saturated_fit():
    # n close to p with near-zero final residual: the regime where the
    # gram identity y'y - b.beta cancels catastrophically
    rng = np.random.default_rng(3)
    design = (rng.random((24, 40)) < 0.4).astype(float)
    target = design @ rng.normal(size=40)  # exactly representable
    naive = stepwise_select(design, target, f_threshold=4.0,
                            method="naive")
    gram = stepwise_select(design, target, f_threshold=4.0,
                           method="gram")
    assert list(naive.features) == list(gram.features)
    assert np.array_equal(naive.coefficients, gram.coefficients)


def test_stepwise_forced_duplicates_deduped():
    design, target, _ = _synthetic(p=10, informative=(2, 7))
    for method in ("naive", "gram"):
        duped = stepwise_select(design, target, forced_features=[1, 1, 2],
                                method=method)
        clean = stepwise_select(design, target, forced_features=[1, 2],
                                method=method)
        assert list(duped.features) == list(clean.features)
        assert np.array_equal(duped.coefficients, clean.coefficients)


def test_stepwise_integer_target_matches_float():
    design, target, _ = _synthetic(p=12, informative=(2, 7), noise=0.3)
    rounded = np.round(target).astype(int)
    for method in ("naive", "gram"):
        from_int = stepwise_select(design, rounded, method=method)
        from_float = stepwise_select(design, rounded.astype(float),
                                     method=method)
        assert list(from_int.features) == list(from_float.features)
        assert np.array_equal(from_int.coefficients,
                              from_float.coefficients)


def test_stepwise_rejects_unknown_method():
    design, target, _ = _synthetic(p=5, informative=(2,))
    with pytest.raises(ValueError, match="method"):
        stepwise_select(design, target, method="fast")


def test_fit_full_gram_cache_is_bit_identical():
    from repro.core.regression import GramCache

    design, target, _ = _synthetic(p=10, informative=(2, 7))
    plain = fit_full(design, target)
    cached = fit_full(design, target, gram=GramCache(design, target))
    assert plain.intercept == cached.intercept
    assert np.array_equal(plain.coefficients, cached.coefficients)


def test_fit_full_accepts_integer_target():
    design, target, _ = _synthetic(p=8, informative=(1, 4), noise=0.2)
    model = fit_full(design, np.round(target).astype(int))
    assert model.r_squared > 0.8
