"""Tests for the data cache (repro.uarch.cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch import CacheConfig, DataCache


def small_cache(ways=2, sets=4, line=16):
    return DataCache(CacheConfig(size_bytes=ways * sets * line,
                                 line_bytes=line, ways=ways))


def test_geometry():
    config = CacheConfig()  # the paper's 32 KB cache
    assert config.size_bytes == 32 * 1024
    assert config.num_sets * config.ways * config.line_bytes == \
        config.size_bytes


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=32, ways=2)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, line_bytes=24, ways=2)


def test_cold_miss_then_hit():
    cache = small_cache()
    assert cache.access(0x100, is_store=False) is False
    assert cache.access(0x100, is_store=False) is True
    assert cache.access(0x10F, is_store=False) is True  # same line
    assert cache.access(0x110, is_store=False) is False  # next line
    assert cache.hits == 2 and cache.misses == 2


def test_lru_eviction():
    cache = small_cache(ways=2, sets=1, line=16)
    cache.access(0x000, False)          # A
    cache.access(0x010, False)          # B
    cache.access(0x000, False)          # touch A -> B becomes LRU
    cache.access(0x020, False)          # C evicts B
    assert cache.access(0x000, False) is True    # A survives
    assert cache.access(0x010, False) is False   # B was evicted


def test_dirty_writeback_counted():
    cache = small_cache(ways=1, sets=1, line=16)
    cache.access(0x000, is_store=True)   # dirty line
    cache.access(0x010, is_store=False)  # evicts dirty -> writeback
    assert cache.writebacks == 1
    cache.access(0x020, is_store=False)  # evicts clean -> no writeback
    assert cache.writebacks == 1


def test_probe_is_non_destructive():
    cache = small_cache()
    assert cache.probe(0x40) is False
    assert cache.misses == 0
    cache.access(0x40, False)
    assert cache.probe(0x40) is True
    assert cache.hits == 0 and cache.misses == 1


def test_flush_resets():
    cache = small_cache()
    cache.access(0x40, False)
    cache.flush()
    assert cache.accesses == 0
    assert cache.access(0x40, False) is False


def test_warm_prefills():
    cache = small_cache()
    cache.warm([0x100, 0x200])
    cache.hits = cache.misses = 0
    assert cache.access(0x100, False) is True
    assert cache.access(0x200, False) is True


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_occupancy_invariant(addresses):
    """No set ever holds more lines than its associativity, and repeated
    access to the same address always hits after a miss."""
    cache = small_cache(ways=2, sets=4, line=16)
    for address in addresses:
        cache.access(address, is_store=False)
        for lines in cache._sets.values():
            assert len(lines) <= 2
        assert cache.probe(address)
    assert cache.accesses == len(addresses)


@given(st.lists(st.integers(0, 0x3FF), min_size=2, max_size=50))
@settings(max_examples=100, deadline=None)
def test_small_working_set_all_hits_after_warmup(addresses):
    """A working set that fits entirely in the cache never misses after
    the first pass."""
    cache = DataCache(CacheConfig(size_bytes=32 * 1024, line_bytes=32,
                                  ways=2))
    for address in addresses:
        cache.access(address, False)
    cache_hits_before = cache.hits
    for address in addresses:
        assert cache.access(address, False) is True
    assert cache.hits == cache_hits_before + len(addresses)
