# Development gates. `make check` is the one-stop pre-commit target.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test docstrings docs bench

check: test docstrings docs

test:
	$(PYTHON) -m pytest -x -q

docstrings:
	$(PYTHON) tools/check_docstrings.py

docs:
	$(PYTHON) tools/check_docs.py

# Not part of `check` (runs ~1 min): the sequential-vs-batched campaign
# benchmark that writes benchmarks/results/BENCH_sim.json.
bench:
	cd benchmarks && $(PYTHON) -m pytest test_perf_campaign.py -x -q
