# Development gates. `make check` is the one-stop pre-commit target.

PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint lint-cold docstrings docs bench bench-quick

check: test lint

test:
	$(PYTHON) -m pytest -x -q

# repro-lint: AST-based invariant analyzer (determinism, numerical
# safety, error contracts, API hygiene, whole-program dataflow —
# including the docstring and docs gates that used to be separate
# scripts).  Zero unsuppressed findings is the bar; see
# docs/static-analysis.md.  Incremental by default (per-module
# summaries cached under .repro-lint-cache/); `lint-cold` forces a
# full from-scratch analysis with guaranteed-identical findings.
lint:
	$(PYTHON) -m tools.analysis

lint-cold:
	$(PYTHON) -m tools.analysis --no-cache

# Deprecated: kept as thin wrappers over `tools.analysis` for one
# release.  `make check` runs the full analyzer via `lint` instead.
docstrings:
	$(PYTHON) tools/check_docstrings.py

docs:
	$(PYTHON) tools/check_docs.py

# Not part of `check` (runs a few minutes): the sequential-vs-batched
# campaign benchmark (BENCH_sim.json), the model-building fast-path
# benchmark (BENCH_train.json), the columnar trace-engine benchmark
# (BENCH_trace.json), the supervised-campaign survival/resume
# benchmark (BENCH_resume.json), the run-record overhead benchmark
# (BENCH_observability.json), the incremental-lint benchmark
# (BENCH_lint.json), and the signal-engine benchmark
# (BENCH_signal.json) under benchmarks/results/.
bench:
	cd benchmarks && $(PYTHON) -m pytest test_perf_campaign.py \
		test_perf_training.py test_perf_trace.py \
		test_perf_signal.py test_robustness_resume.py \
		test_perf_observability.py test_perf_lint.py -x -q

# Tiny-size smoke runs of the training, trace, signal, resume, and
# observability benchmarks (seconds, not minutes); they write
# BENCH_*.quick.json so the committed full-size artifacts are never
# clobbered.
bench-quick:
	cd benchmarks && REPRO_BENCH_QUICK=1 $(PYTHON) -m pytest \
		test_perf_training.py test_perf_trace.py \
		test_perf_signal.py test_robustness_resume.py \
		test_perf_observability.py test_perf_lint.py -x -q
