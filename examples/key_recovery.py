#!/usr/bin/env python3
"""Design-stage key-recovery check on simulated signals.

The paper's vision: software developers "detect and mitigate information
leakage problems for security-sensitive applications" without measuring
anything.  This example runs an RSA-style square-and-multiply modular
exponentiation through EMSim, mounts an SPA attack on the *simulated*
signal, recovers the secret exponent, then verifies that the constant-time
rewrite closes the channel — all before any hardware exists.

Simulation internals are mapped in docs/architecture.md; the
``balance`` mitigation pass is also available from the CLI
(docs/cli.md).
"""

import numpy as np

from repro import EMSim, HardwareDevice, train_emsim
from repro.leakage import (capacity_per_cycle, duration_separation,
                           recover_exponent)
from repro.workloads import modexp_program

SECRET_EXPONENT = 0xB00F
MODULUS = 40961


def main() -> None:
    device = HardwareDevice()
    print("training EMSim once...")
    model = train_emsim(device)
    simulator = EMSim(model, core_config=device.core_config)

    print()
    print(f"secret exponent: {SECRET_EXPONENT:#06x}")
    for constant_time in (False, True):
        label = "constant-time" if constant_time else "naive (leaky)"
        program = modexp_program(7, SECRET_EXPONENT, MODULUS,
                                 constant_time=constant_time)
        simulated = simulator.simulate(program)
        result = recover_exponent(simulated.trace, program)
        recovered = result.exponent()
        separation = duration_separation(result.durations)
        verdict = "KEY RECOVERED" if recovered == SECRET_EXPONENT \
            else "attack failed"
        print(f"\n-- {label} implementation "
              f"({simulated.num_cycles} cycles) --")
        print(f"  per-bit durations: {result.durations}")
        print(f"  duration-cluster separation: {separation:.1f} cycles")
        print(f"  SPA on the simulated signal recovers "
              f"{recovered:#06x}  -> {verdict}")

    # automated mitigation: the compiler pass balances the branch and
    # the same attack is re-run on the simulated signal to verify it
    from repro.leakage import balance_branch_timing
    program = modexp_program(7, SECRET_EXPONENT, MODULUS)
    balanced, report = balance_branch_timing(program)
    simulated = simulator.simulate(balanced)
    result = recover_exponent(simulated.trace, balanced)
    print(f"\n-- automated balancing pass "
          f"({report.transformed} branch transformed, "
          f"+{report.added_instructions} instructions) --")
    print(f"  SPA after mitigation recovers {result.exponent():#06x}  "
          f"-> {'KEY RECOVERED' if result.exponent() == SECRET_EXPONENT else 'attack defeated'}")

    # mutual-information map: which cycles leak a single key bit?
    print("\n-- leakage capacity of one key bit (simulated traces) --")
    rng = np.random.default_rng(3)
    secrets, traces = [], []
    for _ in range(60):
        bit = int(rng.integers(0, 2))
        exponent = (0x2A << 2) | (bit << 1) | 1  # vary one bit only
        program = modexp_program(7, exponent, MODULUS, bits=8)
        traces.append(simulator.simulate(program).signal)
        secrets.append(bit)
    capacity = capacity_per_cycle(secrets, traces,
                                  device.samples_per_cycle)
    top = np.argsort(capacity)[-3:][::-1]
    print(f"  max leakage: {capacity.max():.2f} bits/trace at cycles "
          f"{sorted(int(c) for c in top)}")
    print("  (a constant-time rewrite drives this to ~0 at the "
          "bit-dependent cycles)")


if __name__ == "__main__":
    main()
