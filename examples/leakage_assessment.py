#!/usr/bin/env python3
"""Side-channel leakage estimation without a lab (paper §VI-A).

Runs the two assessments of the paper's use-case section purely in
simulation and checks them against the (synthetic) hardware:

* TVLA on AES-128: fixed-vs-random Welch t-test over the traces;
* SAVAT for instruction pairs: spectral spike energy of A/B alternation.

Both sweeps parallelize via ``workers=N`` on
``repro.leakage.collect_tvla_traces`` and ``savat_matrix`` (see
docs/architecture.md, "The batch layer"); the CLI front-end is
``python -m repro savat`` (docs/cli.md).
"""

import numpy as np

from repro import EMSim, HardwareDevice, train_emsim
from repro.leakage import (DEFAULT_KEY, aes_program, format_matrix,
                           savat_pair, tvla)

AES_ROUNDS = 2       # reduced-round variant keeps the demo fast
NUM_TRACES = 16
NOISE_RMS = 0.08
SAVAT_PAIRS = (("LDM", "NOP"), ("LDC", "NOP"), ("ADD", "NOP"),
               ("MUL", "DIV"), ("LDM", "LDC"), ("NOP", "NOP"))


def tvla_assessment(device, simulator):
    """Fixed-vs-random TVLA on AES, real vs simulated."""
    spc = device.samples_per_cycle
    noise = np.random.default_rng(99)

    def traces(source, fixed):
        rng = np.random.default_rng(7)
        plaintexts = [list(range(16)) if fixed else
                      list(rng.integers(0, 256, 16))
                      for _ in range(NUM_TRACES)]
        return [source(plaintext) for plaintext in plaintexts]

    def real(plaintext):
        program = aes_program(DEFAULT_KEY, plaintext, rounds=AES_ROUNDS)
        return device.capture_single(program, noise_rms=NOISE_RMS).signal

    def simulated(plaintext):
        program = aes_program(DEFAULT_KEY, plaintext, rounds=AES_ROUNDS)
        signal = simulator.simulate(program).signal
        return signal + noise.normal(0, NOISE_RMS, size=signal.shape)

    print("-- TVLA on AES-128 (fixed vs random plaintexts) --")
    for label, source in (("measured", real), ("simulated", simulated)):
        result = tvla(traces(source, True), traces(source, False))
        profile = ", ".join(f"{value:5.1f}"
                            for value in result.phase_profile(spc))
        print(f"  {label:>9s}: max|t| = {result.max_abs_t:6.1f}  "
              f"leaks = {result.leaks}  "
              f"profile over time = [{profile}]")


def savat_assessment(device, simulator):
    """SAVAT values for instruction pairs, real vs simulated."""
    spc = device.samples_per_cycle

    def real_source(program):
        measurement = device.capture_ideal(program)
        return measurement.signal, measurement.num_cycles

    def sim_source(program):
        result = simulator.simulate(program)
        return result.signal, result.num_cycles

    print()
    print("-- SAVAT (signal available to attacker), real vs simulated --")
    for kind_a, kind_b in SAVAT_PAIRS:
        real = savat_pair(real_source, kind_a, kind_b, spc)
        sim = savat_pair(sim_source, kind_a, kind_b, spc)
        print(f"  {kind_a:>4s}/{kind_b:<4s}: real={real.value:7.3f}  "
              f"simulated={sim.value:7.3f}")
    print("  (paper Table II: simulated values closely track measured)")


def main() -> None:
    device = HardwareDevice()
    print("training EMSim...")
    model = train_emsim(device)
    simulator = EMSim(model, core_config=device.core_config)
    tvla_assessment(device, simulator)
    savat_assessment(device, simulator)


if __name__ == "__main__":
    main()
