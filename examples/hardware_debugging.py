#!/usr/bin/env python3
"""Zero-overhead hardware debugging via EM reference signals (§VI-B).

Reproduces the paper's Fig. 11 case study: a multiplier that silently uses
only the lower 8 bits of each operand.  EMSim's simulated signal acts as
the golden reference; a device whose multiplier radiates less than the
reference (relative to the rest of the chip, calibrated on a known-good
unit) is flagged — with zero on-chip test infrastructure.

The trace → amplitude → kernel pipeline the reference rides on is
described in docs/architecture.md; the fitting methodology in
docs/METHODOLOGY.md.
"""

from repro import DE0_CV, DeviceInstance, EMSim, HardwareDevice, \
    train_emsim
from repro.leakage import (buggy_multiplier, calibrated_deficit,
                           multiplier_stress_program, unit_relative_check)
from repro.signal import estimate_cycle_amplitudes

DETECTION_THRESHOLD = 0.05  # 5% localized emission deficit


def main() -> None:
    print("== EM-based hardware debugging (paper Fig. 11) ==")
    golden_device = HardwareDevice()
    print("training EMSim on the known-good device...")
    model = train_emsim(golden_device)
    simulator = EMSim(model, core_config=golden_device.core_config)

    program = multiplier_stress_program(num_muls=32)
    reference = simulator.simulate(program)
    print(f"reference program: {len(program)} instructions, "
          f"{reference.num_cycles} cycles, 32 MULs")

    def unit_check(device):
        measurement = device.capture_ideal(program)
        amplitudes = estimate_cycle_amplitudes(
            measurement.signal, model.config.kernel,
            golden_device.samples_per_cycle)
        return unit_relative_check(reference.amplitudes, amplitudes,
                                   reference.trace,
                                   em_class="muldiv_final")

    calibration = unit_check(golden_device)
    print(f"calibration (golden unit): multiplier/global emission ratio "
          f"= {calibration.unit_ratio / calibration.global_ratio:.3f}")
    print()

    devices_under_test = [
        ("unit #1 (healthy)",
         HardwareDevice(instance=DeviceInstance(board=DE0_CV,
                                                instance_id=1))),
        ("unit #2 (healthy)",
         HardwareDevice(instance=DeviceInstance(board=DE0_CV,
                                                instance_id=2))),
        ("unit #3 (buggy 8-bit multiplier)",
         HardwareDevice(alu_bug=buggy_multiplier)),
    ]
    for name, device in devices_under_test:
        check = unit_check(device)
        deficit = calibrated_deficit(check, calibration)
        verdict = "DEFECTIVE" if deficit > DETECTION_THRESHOLD else "pass"
        print(f"  {name:<34s} multiplier emission deficit "
              f"{deficit:+6.1%}  -> {verdict}")

    print()
    print("the buggy multiplier computes only low-8-bit products, so its")
    print("result registers flip far fewer bits in the final Execute")
    print("cycle - visible as a localized EM deficit, no JTAG required.")


if __name__ == "__main__":
    main()
