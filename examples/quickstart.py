#!/usr/bin/env python3
"""Quickstart: train EMSim once, then simulate EM signals for your code.

Mirrors the paper's workflow end-to-end:

1. stand up the measurement bench (the synthetic stand-in for the
   FPGA + magnetic probe + oscilloscope);
2. build the EMSim model from microbenchmark measurements (baseline
   amplitudes, activity-factor regression, MISO coefficients);
3. simulate the EM side-channel signal of an arbitrary program and
   check it against the bench's "real" emission.

The layering behind these three steps is mapped in
docs/architecture.md; the equivalent command-line workflow
(``python -m repro train`` / ``simulate`` / ``accuracy``) is documented
in docs/cli.md.
"""

import numpy as np

from repro import EMSim, HardwareDevice, assemble, train_emsim
from repro.signal import per_cycle_similarities, simulation_accuracy

SOURCE = """
# sum of squares 1..10, with a data-dependent branch mix
    li   t0, 10
    li   a0, 0
loop:
    mul  t1, t0, t0
    add  a0, a0, t1
    addi t0, t0, -1
    bnez t0, loop
    ebreak
"""


def main() -> None:
    print("== EMSim quickstart ==")
    device = HardwareDevice()
    print(f"bench: {device.name}, probe at die center")

    print("training EMSim (probes + regression + MISO fit)...")
    model = train_emsim(device)
    print(model.summary())
    print()
    print("baseline amplitude table A(class, stage):")
    print(model.amplitude_table())

    simulator = EMSim(model, core_config=device.core_config)
    program = assemble(SOURCE, name="sum_of_squares")

    simulated = simulator.simulate(program)
    measured = device.capture_ideal(program)
    spc = device.samples_per_cycle
    length = min(len(simulated.signal), len(measured.signal))
    accuracy = simulation_accuracy(simulated.signal[:length],
                                   measured.signal[:length], spc)

    print()
    print(f"program: {program.name} "
          f"({len(program)} instructions, {simulated.num_cycles} cycles)")
    print(f"simulation accuracy vs measured signal: {accuracy:.1%} "
          f"(paper reports ~94.1%)")

    worst = np.argsort(per_cycle_similarities(
        simulated.signal[:length], measured.signal[:length], spc))[:3]
    print(f"hardest cycles to predict: {sorted(int(c) for c in worst)}")
    print()
    print("per-cycle amplitude trace (first 24 cycles):")
    labels = simulated.trace.instruction_labels("E")
    for cycle in range(min(24, simulated.num_cycles)):
        bar = "#" * int(10 * simulated.amplitudes[cycle])
        print(f"  cycle {cycle:3d}  E={labels[cycle]:<12s} "
              f"X={simulated.amplitudes[cycle]:5.2f} {bar}")


if __name__ == "__main__":
    main()
