#!/usr/bin/env python3
"""EM-aware microarchitectural design exploration.

The paper envisions architects using EMSim "to estimate the EM-related
side-channel leakages without requiring to physically measure any
signals".  This example does exactly that: it sweeps core design knobs
(cache latencies, multiplier latency, branch predictor) and reports how
each choice changes both performance *and* a leakage metric (SAVAT of a
key-dependent instruction pair) — all in simulation.

Sweeps like this are campaign-shaped: docs/architecture.md ("The batch
layer") shows how to fan them out over workers; docs/cli.md documents
the ``--profile`` flag for finding where the time goes.
"""

from dataclasses import replace

from repro import CoreConfig, EMSim, HardwareDevice, train_emsim
from repro.leakage import savat_pair
from repro.uarch import CacheConfig
from repro.workloads import checksum

DESIGNS = {
    "baseline (paper's core)": CoreConfig(),
    "fast cache (no hit penalty)": CoreConfig(
        cache=CacheConfig(hit_extra_cycles=0)),
    "slow memory (miss +6)": CoreConfig(
        cache=CacheConfig(miss_extra_cycles=6)),
    "1-cycle multiplier": CoreConfig(mul_latency=1),
    "8-cycle multiplier": CoreConfig(mul_latency=8),
    "static not-taken predictor": CoreConfig(predictor="not-taken"),
    "gshare predictor": CoreConfig(predictor="gshare"),
    "no forwarding": CoreConfig(forwarding=False),
}


def main() -> None:
    device = HardwareDevice()
    print("training EMSim once on the baseline core...")
    model = train_emsim(device)
    workload = checksum(32)
    spc = device.samples_per_cycle

    print()
    print(f"{'design':<30s} {'cycles':>7s} {'IPC':>6s} "
          f"{'SAVAT(MUL/NOP)':>15s}")
    for name, config in DESIGNS.items():
        simulator = EMSim(model, core_config=config)
        result = simulator.simulate(workload)
        retired = result.trace.instructions_retired
        ipc = retired / result.num_cycles

        def sim_source(program, simulator=simulator):
            output = simulator.simulate(program)
            return output.signal, output.num_cycles

        leakage = savat_pair(sim_source, "MUL", "NOP", spc).value
        print(f"{name:<30s} {result.num_cycles:>7d} {ipc:>6.2f} "
              f"{leakage:>15.3f}")

    print()
    print("note: retraining A/c on the actual silicon of each design is")
    print("required for absolute numbers (paper §V-C); the sweep shows")
    print("relative, design-stage trends.")


if __name__ == "__main__":
    main()
