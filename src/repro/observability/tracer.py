"""Lightweight span tracer with cross-process spool/merge support.

A *span* is one finished, timed region: a name, its slash-joined
nesting path, a start offset and duration on the monotonic clock
(:func:`repro.profiling.monotonic` — never a wall clock), optional
attributes, and the recording pid.  Spans are recorded through the
context-manager :meth:`Tracer.span`; while the tracer is disabled (the
default) the context manager is a no-op, so un-instrumented runs stay
bit-identical.

Working inside :class:`repro.parallel.SupervisedPool` workers: fork
gives every worker a copy of the enabled tracer and metrics registry,
but their recordings would die with the process.  The pool trampoline
therefore calls :func:`flush_worker_records` after every item, which
appends the worker's *unflushed* spans and metric deltas to a
per-process JSONL spool file; after the campaign the parent calls
:func:`merge_spool` to fold every worker's records back into its own
tracer and registry.  The flush baseline is reset at worker start
(:func:`reset_flush_baseline`) so spans inherited from the parent at
fork time — including after a mid-campaign pool rebuild — are never
double-counted.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager, suppress
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..profiling import monotonic
from .metrics import get_metrics


@dataclass
class Span:
    """One finished, timed region (see module docstring)."""

    name: str
    path: str
    start: float
    seconds: float
    attributes: Dict[str, object] = field(default_factory=dict)
    pid: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form used by the spool files and the manifest."""
        return {"name": self.name, "path": self.path,
                "start": self.start, "seconds": self.seconds,
                "attributes": dict(self.attributes), "pid": self.pid}


class Tracer:
    """Collects finished spans; nesting is tracked per process.

    Spans are appended on *exit*, so ``spans`` holds only completed
    regions in completion order (children before their parent).
    """

    def __init__(self) -> None:
        self.enabled = False
        self.spans: List[Span] = []
        self._stack: List[str] = []
        self._origin = 0.0

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[None]:
        """Time the enclosed block as a span named ``name``.

        Keyword arguments become span attributes.  No-op (beyond one
        attribute check) while the tracer is disabled.
        """
        if not self.enabled:
            yield
            return
        self._stack.append(name)
        path = "/".join(self._stack)
        start = monotonic()
        try:
            yield
        finally:
            self._stack.pop()
            self.spans.append(Span(
                name=name, path=path, start=start - self._origin,
                seconds=monotonic() - start,
                attributes=dict(attributes), pid=os.getpid()))

    def merge(self, records: Iterable[Dict[str, object]]) -> None:
        """Fold span dicts (from a worker spool) into this tracer."""
        for record in records:
            self.spans.append(Span(
                name=str(record.get("name", "")),
                path=str(record.get("path", "")),
                start=float(record.get("start", 0.0)),
                seconds=float(record.get("seconds", 0.0)),
                attributes=dict(record.get("attributes", {})),
                pid=int(record.get("pid", 0))))

    def by_name(self) -> Dict[str, Dict[str, float]]:
        """Per-name call counts and summed seconds, sorted by name."""
        summary: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            entry = summary.setdefault(span.name,
                                       {"calls": 0, "seconds": 0.0})
            entry["calls"] += 1
            entry["seconds"] += span.seconds
        return {name: summary[name] for name in sorted(summary)}

    def reset(self) -> None:
        """Drop recorded spans and restart the relative time origin."""
        self.spans = []
        self._stack = []
        self._origin = monotonic()


_GLOBAL = Tracer()

#: Directory under which per-campaign spool directories are created;
#: ``None`` (the default) falls back to the system temp directory.
_SPOOL_ROOT: Optional[str] = None

#: Per-process high-water marks for :func:`flush_worker_records`.
_FLUSHED: Dict[str, object] = {"spans": 0, "metrics": {}}


def get_tracer() -> Tracer:
    """The process-wide tracer (workers inherit it across fork)."""
    return _GLOBAL


def enable_tracing() -> Tracer:
    """Enable the global tracer; a fresh enable restarts its origin."""
    if not _GLOBAL.enabled:
        _GLOBAL.reset()
        _GLOBAL.enabled = True
    return _GLOBAL


def disable_tracing() -> None:
    """Stop recording spans (already-recorded spans are kept)."""
    _GLOBAL.enabled = False


def set_spool_root(path: Optional[str]) -> None:
    """Anchor worker spool directories under ``path`` (``None`` resets
    to the system temp directory)."""
    global _SPOOL_ROOT
    _SPOOL_ROOT = path


def create_spool() -> Optional[str]:
    """A fresh spool directory for one pooled campaign, or ``None``
    when tracing is disabled (so the pool skips spooling entirely)."""
    if not _GLOBAL.enabled:
        return None
    return tempfile.mkdtemp(prefix="spool-", dir=_SPOOL_ROOT)


def reset_flush_baseline() -> None:
    """Mark everything recorded so far as already flushed.

    Called from the worker initializer: spans and metrics inherited
    from the parent at fork time belong to the parent and must not be
    re-spooled by the child.
    """
    _FLUSHED["spans"] = len(_GLOBAL.spans)
    _FLUSHED["metrics"] = get_metrics().snapshot()


def flush_worker_records(spool: str, index: int) -> None:
    """Append this process's unflushed spans and metric deltas to its
    per-pid spool file (one JSON line per flush).

    Called from the pool trampoline after every item; quiet items (no
    new spans, no metric changes) write nothing.
    """
    tracer = _GLOBAL
    registry = get_metrics()
    mark = int(_FLUSHED["spans"])
    spans = [span.to_dict() for span in tracer.spans[mark:]]
    _FLUSHED["spans"] = len(tracer.spans)
    metrics = registry.delta(_FLUSHED["metrics"])
    _FLUSHED["metrics"] = registry.snapshot()
    if not spans and not metrics:
        return
    record = {"pid": os.getpid(), "index": index,
              "spans": spans, "metrics": metrics}
    path = os.path.join(spool, f"records-{os.getpid()}.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def merge_spool(spool: Optional[str]) -> None:
    """Fold every worker spool file back into the parent tracer and
    metrics registry, then remove the spool directory.

    Tolerates a torn final line (a worker killed mid-write): the
    partial record is skipped, matching the checkpoint journal's
    torn-tail policy.
    """
    if spool is None:
        return
    tracer = _GLOBAL
    registry = get_metrics()
    for name in sorted(os.listdir(spool)):
        path = os.path.join(spool, name)
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                tracer.merge(record.get("spans", []))
                registry.merge(record.get("metrics", {}))
        os.unlink(path)
    with suppress(OSError):
        os.rmdir(spool)
