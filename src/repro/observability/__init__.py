"""Run-record observability: span tracer, metrics registry, manifests.

Three cooperating layers (see ``docs/observability.md``):

* :mod:`repro.observability.tracer` — context-manager span tracer on
  the monotonic clock, with a spool/merge protocol that carries worker
  spans and metric deltas back across :class:`repro.parallel.SupervisedPool`
  process boundaries;
* :mod:`repro.observability.metrics` — deterministic counters, gauges,
  and fixed-edge histograms, absorbing the legacy profiler counters
  through :func:`repro.profiling.set_counter_sink`;
* :mod:`repro.observability.manifest` / ``report`` — per-run JSONL
  events plus one atomic ``manifest.json`` (schema ``repro-manifest/1``)
  and the Markdown renderer behind ``repro report``.

Everything is off by default: without ``--trace-dir`` (or an explicit
:func:`start_run`) every hook is a no-op and runs are bit-identical to
an un-instrumented build.
"""

from .manifest import (MANIFEST_SCHEMA, CampaignRecord, RunRecorder,
                       config_hash, current_manifest_path, finish_run,
                       get_recorder, record_campaign, start_run)
from .metrics import (DEFAULT_TIME_EDGES, Histogram, MetricsRegistry,
                      disable_metrics, enable_metrics, get_metrics)
from .report import render_report, validate_manifest
from .tracer import (Span, Tracer, create_spool, disable_tracing,
                     enable_tracing, flush_worker_records, get_tracer,
                     merge_spool, reset_flush_baseline, set_spool_root)

__all__ = [
    "CampaignRecord",
    "DEFAULT_TIME_EDGES",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "RunRecorder",
    "Span",
    "Tracer",
    "config_hash",
    "create_spool",
    "current_manifest_path",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "finish_run",
    "flush_worker_records",
    "get_metrics",
    "get_recorder",
    "get_tracer",
    "merge_spool",
    "record_campaign",
    "render_report",
    "reset_flush_baseline",
    "set_spool_root",
    "start_run",
    "validate_manifest",
]
