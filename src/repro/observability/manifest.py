"""Run manifests: a JSONL event stream plus one atomic ``manifest.json``.

A *run* is one CLI invocation (or one test/bench driver) that may
execute several campaigns.  While a run recorder is active it appends
schema-tagged events to ``events.jsonl`` (sequence-numbered, with
elapsed monotonic seconds — never wall-clock time) and, on
:func:`finish_run`, writes a single ``manifest.json`` atomically
(tmp file + ``os.replace``) under schema ``repro-manifest/1``:
package version, per-campaign config hashes and seeds, worker counts,
trace-cache hit/miss totals, item-outcome ledger summaries, checkpoint
linkage, the metrics snapshot, and a span digest.

Instrumented code never talks to the recorder directly; it wraps
campaigns in :func:`record_campaign`, which yields a no-op handle when
no recorder is active — that guarantee is what keeps runs without
``--trace-dir`` bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager, suppress
from typing import Any, Dict, Iterator, List, Optional

from ..profiling import monotonic
from ..robustness import ConfigurationError
from .metrics import disable_metrics, enable_metrics, get_metrics
from .tracer import (disable_tracing, enable_tracing, get_tracer,
                     set_spool_root)

#: Version tag stamped on both the manifest and the event stream.
MANIFEST_SCHEMA = "repro-manifest/1"
EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "manifest.json"


def config_hash(meta: Dict[str, Any]) -> str:
    """SHA-256 over the sorted-JSON form of a campaign's config meta,
    so identical configurations hash identically across runs."""
    digest = hashlib.sha256()
    digest.update(json.dumps(meta, sort_keys=True, default=str)
                  .encode("utf-8"))
    return digest.hexdigest()


class CampaignRecord:
    """Mutable per-campaign record handed to instrumented code."""

    def __init__(self, name: str, meta: Optional[Dict[str, Any]] = None):
        self.name = name
        self.meta = dict(meta or {})
        self.fields: Dict[str, Any] = {}
        self.seconds = 0.0

    def ledger(self, ledger: Any) -> None:
        """Attach a :class:`repro.parallel.CampaignLedger` summary."""
        counts = dict(ledger.counts())
        self.fields["items"] = sum(counts.values())
        self.fields["ledger"] = counts
        self.fields["pool_rebuilds"] = int(ledger.pool_rebuilds)
        self.fields["resumed"] = len(ledger.resumed)
        self.fields["complete"] = bool(ledger.complete)

    def checkpoint(self, path: Optional[str]) -> None:
        """Link the checkpoint journal backing this campaign, if any."""
        if path:
            self.fields["checkpoint"] = str(path)

    def set(self, key: str, value: Any) -> None:
        """Record an arbitrary campaign-level field."""
        self.fields[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form embedded in the manifest."""
        document: Dict[str, Any] = {
            "name": self.name,
            "meta": self.meta,
            "config_hash": config_hash(self.meta),
            "seconds": self.seconds,
        }
        document.update(self.fields)
        return document


class _NullCampaign:
    """No-op recording handle used when no run recorder is active."""

    def ledger(self, ledger: Any) -> None:
        """Discard (no recorder active)."""

    def checkpoint(self, path: Optional[str]) -> None:
        """Discard (no recorder active)."""

    def set(self, key: str, value: Any) -> None:
        """Discard (no recorder active)."""


_NULL_CAMPAIGN = _NullCampaign()


class RunRecorder:
    """Owns one run's event stream and final manifest.

    Prefer the module-level :func:`start_run`/:func:`finish_run` pair,
    which also toggle the tracer, the metrics registry, and the worker
    spool root; construct directly only in tests.
    """

    def __init__(self, trace_dir: str, manifest: bool = True,
                 command: Optional[str] = None):
        self.trace_dir = str(trace_dir)
        self.manifest = bool(manifest)
        self.command = command
        self.campaigns: List[CampaignRecord] = []
        self._seq = 0
        self._origin = monotonic()
        os.makedirs(self.trace_dir, exist_ok=True)
        self.events_path = os.path.join(self.trace_dir, EVENTS_FILENAME)
        self.manifest_path = os.path.join(self.trace_dir,
                                          MANIFEST_FILENAME)
        self._events = open(self.events_path, "w", encoding="utf-8")
        self.event("start", schema=MANIFEST_SCHEMA, command=command)

    def event(self, kind: str, **fields: Any) -> None:
        """Append one sequence-numbered event line (flushed, not
        fsynced: events are a trace, not crash-recovery state)."""
        if self._events is None:
            return
        record: Dict[str, Any] = {
            "seq": self._seq,
            "elapsed": round(monotonic() - self._origin, 6),
            "event": kind,
        }
        record.update(fields)
        self._seq += 1
        self._events.write(json.dumps(record, sort_keys=True,
                                      default=str) + "\n")
        self._events.flush()

    @contextmanager
    def campaign(self, name: str,
                 meta: Optional[Dict[str, Any]] = None
                 ) -> Iterator[CampaignRecord]:
        """Record one campaign: start/end events plus a
        :class:`CampaignRecord` collected into the manifest."""
        record = CampaignRecord(name, meta)
        self.event("campaign_start", campaign=name, meta=record.meta)
        start = monotonic()
        try:
            yield record
        finally:
            record.seconds = round(monotonic() - start, 6)
            self.campaigns.append(record)
            self.event("campaign_end", campaign=name,
                       seconds=record.seconds)

    def build_manifest(self) -> Dict[str, Any]:
        """Assemble the ``repro-manifest/1`` document (pure; no I/O)."""
        import repro  # noqa: deferred to dodge package-init cycles
        from ..core.trace_cache import get_trace_cache
        tracer = get_tracer()
        registry = get_metrics()
        seeds = sorted({record.meta["seed"]
                        for record in self.campaigns
                        if "seed" in record.meta})
        worker_counts = [int(record.meta["workers"])
                         for record in self.campaigns
                         if "workers" in record.meta]
        by_name = {name: {"calls": int(entry["calls"]),
                          "seconds": round(entry["seconds"], 6)}
                   for name, entry in tracer.by_name().items()}
        return {
            "schema": MANIFEST_SCHEMA,
            "version": getattr(repro, "__version__", "unknown"),
            "command": self.command,
            "seeds": seeds,
            "workers": max(worker_counts) if worker_counts else None,
            "campaigns": [record.to_dict()
                          for record in self.campaigns],
            "cache": get_trace_cache().stats.as_dict(),
            "metrics": registry.to_dict(),
            "spans": {
                "count": len(tracer.spans),
                "total_seconds": round(sum(span.seconds for span
                                           in tracer.spans), 6),
                "by_name": by_name,
            },
            "events": EVENTS_FILENAME,
        }

    def finalize(self) -> Optional[str]:
        """Close the event stream and atomically write the manifest.

        Returns the manifest path, or ``None`` when manifest writing
        was disabled (``--no-manifest``).
        """
        self.event("finish", campaigns=len(self.campaigns))
        if self._events is not None:
            self._events.close()
            self._events = None
        if not self.manifest:
            return None
        document = self.build_manifest()
        tmp_path = self.manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
        os.replace(tmp_path, self.manifest_path)
        return self.manifest_path


_RECORDER: Optional[RunRecorder] = None


def get_recorder() -> Optional[RunRecorder]:
    """The active run recorder, or ``None`` outside a recorded run."""
    return _RECORDER


def current_manifest_path() -> Optional[str]:
    """Where the active run's manifest will land, or ``None``."""
    if _RECORDER is None or not _RECORDER.manifest:
        return None
    return _RECORDER.manifest_path


def start_run(trace_dir: str, manifest: bool = True,
              command: Optional[str] = None) -> RunRecorder:
    """Open a recorded run: create ``trace_dir``, start the event
    stream, enable tracing + metrics, and anchor worker spools under
    ``trace_dir/spool``.  One run may be active at a time."""
    global _RECORDER
    if _RECORDER is not None:
        raise ConfigurationError(
            "a run recorder is already active; call finish_run() first")
    recorder = RunRecorder(trace_dir, manifest=manifest, command=command)
    enable_tracing()
    enable_metrics()
    spool_root = os.path.join(recorder.trace_dir, "spool")
    os.makedirs(spool_root, exist_ok=True)
    set_spool_root(spool_root)
    _RECORDER = recorder
    return recorder


def finish_run() -> Optional[str]:
    """Finalize the active run (if any): write the manifest, disable
    tracing + metrics, and return the manifest path or ``None``."""
    global _RECORDER
    if _RECORDER is None:
        return None
    recorder = _RECORDER
    _RECORDER = None
    path = recorder.finalize()
    with suppress(OSError):
        os.rmdir(os.path.join(recorder.trace_dir, "spool"))
    set_spool_root(None)
    disable_tracing()
    disable_metrics()
    return path


@contextmanager
def record_campaign(name: str,
                    meta: Optional[Dict[str, Any]] = None
                    ) -> Iterator[Any]:
    """Record a campaign into the active run recorder, if any.

    This is the one hook instrumented campaign code calls.  Without an
    active recorder it yields a shared no-op handle, adding only a
    ``None`` check to the fault-free path — runs without
    ``--trace-dir`` stay bit-identical.
    """
    recorder = _RECORDER
    if recorder is None:
        yield _NULL_CAMPAIGN
        return
    with recorder.campaign(name, meta) as record:
        yield record
