"""Manifest schema validation and Markdown run-report rendering.

Backs the ``repro report`` CLI subcommand: load a ``manifest.json``,
validate it against ``repro-manifest/1``, and render a human-readable
Markdown digest, optionally joined with a checkpoint-journal summary
(:func:`repro.robustness.checkpoint.journal_summary`).

Rendering is deterministic: sections and table rows are emitted in
sorted order with fixed number formats, so reports are golden-file
testable and diffable across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..robustness import ConfigurationError
from .manifest import MANIFEST_SCHEMA

#: Top-level keys every ``repro-manifest/1`` document must carry.
REQUIRED_KEYS = ("schema", "version", "campaigns", "cache", "metrics",
                 "spans", "events")

#: Keys every campaign entry must carry.
CAMPAIGN_KEYS = ("name", "meta", "config_hash", "seconds")


def validate_manifest(document: Any) -> Dict[str, Any]:
    """Check ``document`` against ``repro-manifest/1``.

    Returns the document unchanged when valid; raises
    :class:`repro.robustness.ConfigurationError` naming every problem
    found (not just the first) otherwise.
    """
    if not isinstance(document, dict):
        raise ConfigurationError("run manifest must be a JSON object")
    problems: List[str] = []
    schema = document.get("schema")
    if schema != MANIFEST_SCHEMA:
        problems.append(f"schema must be {MANIFEST_SCHEMA!r}, "
                        f"got {schema!r}")
    for key in REQUIRED_KEYS:
        if key not in document:
            problems.append(f"missing required key {key!r}")
    campaigns = document.get("campaigns", [])
    if not isinstance(campaigns, list):
        problems.append("'campaigns' must be a list")
    else:
        for position, campaign in enumerate(campaigns):
            if not isinstance(campaign, dict):
                problems.append(f"campaigns[{position}] must be "
                                "an object")
                continue
            for key in CAMPAIGN_KEYS:
                if key not in campaign:
                    problems.append(f"campaigns[{position}] missing "
                                    f"{key!r}")
    for key in ("metrics", "cache", "spans"):
        if key in document and not isinstance(document[key], dict):
            problems.append(f"{key!r} must be an object")
    if problems:
        raise ConfigurationError("invalid run manifest: "
                                 + "; ".join(problems))
    return document


def _table(headers: Sequence[str],
           rows: Sequence[Sequence[Any]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row)
                     + " |")
    return lines


def render_report(document: Dict[str, Any],
                  journal: Optional[Dict[str, Any]] = None) -> str:
    """Render a validated manifest (and optional journal summary from
    :func:`repro.robustness.checkpoint.journal_summary`) to Markdown."""
    lines: List[str] = []
    title = document.get("command") or "campaign"
    lines += [f"# Run report: {title}", ""]
    lines.append(f"- schema: `{document['schema']}`")
    lines.append(f"- repro version: `{document['version']}`")
    seeds = document.get("seeds") or []
    if seeds:
        lines.append("- seeds: "
                     + ", ".join(str(seed) for seed in seeds))
    workers = document.get("workers")
    if workers is not None:
        lines.append(f"- max workers: {workers}")
    lines.append(f"- events: `{document['events']}`")

    campaigns = document.get("campaigns") or []
    if campaigns:
        lines += ["", "## Campaigns", ""]
        rows = []
        for campaign in campaigns:
            ledger = campaign.get("ledger") or {}
            rows.append([
                campaign["name"],
                campaign.get("items", "-"),
                ledger.get("ok", "-"),
                ledger.get("retried", "-"),
                ledger.get("timeout", "-"),
                ledger.get("quarantined", "-"),
                campaign.get("resumed", "-"),
                campaign.get("pool_rebuilds", "-"),
                f"{campaign['seconds']:.2f}",
                f"`{campaign['config_hash'][:12]}`",
            ])
        lines += _table(["campaign", "items", "ok", "retried",
                         "timeout", "quarantined", "resumed",
                         "rebuilds", "seconds", "config"], rows)
        checkpoints = [(campaign["name"], campaign["checkpoint"])
                       for campaign in campaigns
                       if campaign.get("checkpoint")]
        if checkpoints:
            lines += ["", "### Checkpoints", ""]
            for name, path in checkpoints:
                lines.append(f"- {name}: `{path}`")

    cache = document.get("cache") or {}
    lines += ["", "## Trace cache", ""]
    lines += _table(["hits", "misses", "evictions", "disk_hits"],
                    [[cache.get(key, 0) for key in
                      ("hits", "misses", "evictions", "disk_hits")]])

    metrics = document.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines += ["", "## Counters", ""]
        lines += _table(["counter", "value"],
                        [[f"`{name}`", counters[name]]
                         for name in sorted(counters)])
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines += ["", "## Gauges", ""]
        lines += _table(["gauge", "value"],
                        [[f"`{name}`", gauges[name]]
                         for name in sorted(gauges)])
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines += ["", "## Histograms", ""]
        rows = []
        for name in sorted(histograms):
            histogram = histograms[name]
            count = int(histogram.get("count", 0))
            total = float(histogram.get("total", 0.0))
            mean = total / count if count else 0.0
            rows.append([f"`{name}`", count, f"{total:.3f}",
                         f"{mean:.4f}"])
        lines += _table(["histogram", "count", "total", "mean"], rows)

    spans = document.get("spans") or {}
    by_name = spans.get("by_name") or {}
    if by_name:
        lines += ["", "## Spans", ""]
        rows = [[f"`{name}`", int(by_name[name]["calls"]),
                 f"{float(by_name[name]['seconds']):.3f}"]
                for name in sorted(by_name)]
        lines += _table(["span", "calls", "seconds"], rows)

    if journal:
        lines += ["", "## Checkpoint journal", ""]
        lines.append(f"- path: `{journal['path']}`")
        lines.append(f"- schema: `{journal['schema']}`")
        lines.append(f"- records: {journal['records']}")
        meta = journal.get("meta") or {}
        if meta:
            lines.append("- meta: `"
                         + json.dumps(meta, sort_keys=True) + "`")
        if journal.get("torn_tail"):
            lines.append("- torn tail detected (partial final record "
                         "ignored)")
    return "\n".join(lines) + "\n"
