"""Deterministic metrics registry: counters, gauges, fixed-edge histograms.

The registry is the one sink for run-level quantitative telemetry.  It
absorbs the ad-hoc profiler counters (``supervise.*``,
``trace_cache.*``, ``batch.*``, ...) through a compatibility shim: when
the registry is enabled it installs itself as the
:func:`repro.profiling.set_counter_sink`, so every
``Profiler.count(name)`` call — even on a disabled profiler — is
mirrored into the registry without touching any call site.

Histograms use *fixed* bucket edges chosen at registration time so the
exported bucket counts are deterministic across runs and machines: the
same sequence of observations always lands in the same buckets,
regardless of timing jitter in unrelated code.

Nothing here reads a wall clock; values are supplied by callers (who
use :func:`repro.profiling.monotonic` for durations).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

from ..profiling import set_counter_sink
from ..robustness import ConfigurationError

#: Default histogram bucket edges for durations in seconds: a coarse
#: 1-2-5 ladder from 1 ms to 10 s.  Fixed edges keep exported bucket
#: counts deterministic run-to-run.
DEFAULT_TIME_EDGES = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
                      0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


class Histogram:
    """Histogram with fixed, immutable bucket edges.

    ``counts`` has ``len(edges) + 1`` entries: observations are binned
    with ``bisect_right``, so ``counts[i]`` holds values in
    ``(edges[i-1], edges[i]]`` and the last bucket is overflow.
    """

    def __init__(self, edges: Sequence[float] = DEFAULT_TIME_EDGES):
        self.edges = tuple(float(edge) for edge in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its (fixed) bucket."""
        value = float(value)
        self.counts[bisect.bisect_right(self.edges, value)] += 1
        self.total += value
        self.count += 1

    def add_counts(self, counts: Sequence[int], count: int,
                   total: float) -> None:
        """Fold pre-binned bucket counts (from a worker delta) in."""
        for position, value in enumerate(counts):
            self.counts[position] += int(value)
        self.count += int(count)
        self.total += float(total)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form: edges, bucket counts, count, total."""
        return {"edges": list(self.edges), "counts": list(self.counts),
                "count": self.count, "total": self.total}


class MetricsRegistry:
    """Named counters, gauges, and histograms with merge/delta support.

    Recording methods are no-ops while ``enabled`` is ``False`` (the
    default), which keeps un-instrumented runs bit-identical and the
    disabled-path cost to one attribute check.  ``merge``/``delta``
    work regardless of the enabled flag so a parent process can fold
    worker snapshots in after disabling collection.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ----------------------------------------------------

    def increment(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float,
                edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        """Record ``value`` into histogram ``name``.

        The edges are fixed on first use; later calls must agree.
        """
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(edges)
            self.histograms[name] = histogram
        elif histogram.edges != tuple(float(edge) for edge in edges):
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different edges")
        histogram.observe(value)

    # -- export / transport -------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot with deterministically sorted keys."""
        return {
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name]
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].as_dict()
                           for name in sorted(self.histograms)},
        }

    def snapshot(self) -> Dict[str, object]:
        """Alias of :meth:`to_dict`, named for use as a delta baseline."""
        return self.to_dict()

    def delta(self, baseline: Dict[str, object]) -> Dict[str, object]:
        """Changes since ``baseline`` (a prior :meth:`snapshot`).

        Counters and histogram buckets are differenced; gauges report
        their current value (last write wins on merge).  Empty sections
        are omitted so quiet items spool nothing.
        """
        result: Dict[str, object] = {}
        base_counters = baseline.get("counters", {})
        counters = {}
        for name in sorted(self.counters):
            diff = self.counters[name] - base_counters.get(name, 0)
            if diff:
                counters[name] = diff
        if counters:
            result["counters"] = counters
        if self.gauges:
            result["gauges"] = {name: self.gauges[name]
                                for name in sorted(self.gauges)}
        base_histograms = baseline.get("histograms", {})
        histograms = {}
        for name in sorted(self.histograms):
            current = self.histograms[name].as_dict()
            prior = base_histograms.get(name)
            if prior and list(prior["edges"]) == current["edges"]:
                counts = [a - b for a, b in
                          zip(current["counts"], prior["counts"])]
                if not any(counts):
                    continue
                histograms[name] = {
                    "edges": current["edges"], "counts": counts,
                    "count": current["count"] - prior["count"],
                    "total": current["total"] - prior["total"]}
            else:
                histograms[name] = current
        if histograms:
            result["histograms"] = histograms
        return result

    def merge(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`to_dict`/:meth:`delta` document into this
        registry (counters and buckets sum; gauges take the incoming
        value)."""
        for name, value in sorted(data.get("counters", {}).items()):
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for name, value in sorted(data.get("gauges", {}).items()):
            self.gauges[name] = float(value)
        for name, payload in sorted(data.get("histograms", {}).items()):
            edges = tuple(float(edge) for edge in payload["edges"])
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = Histogram(edges)
                self.histograms[name] = histogram
            elif histogram.edges != edges:
                raise ConfigurationError(
                    f"histogram {name!r} merged with different edges")
            histogram.add_counts(payload["counts"], payload["count"],
                                 payload["total"])

    def reset(self) -> None:
        """Drop all recorded values (the enabled flag is unchanged)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (workers inherit it across fork)."""
    return _GLOBAL


def enable_metrics() -> MetricsRegistry:
    """Enable the global registry and install the profiler-counter
    compatibility shim, so legacy ``Profiler.count`` call sites feed
    the registry without modification."""
    _GLOBAL.enabled = True
    set_counter_sink(_GLOBAL.increment)
    return _GLOBAL


def disable_metrics() -> None:
    """Disable collection and uninstall the profiler-counter shim.

    Recorded values are kept so callers can export after disabling;
    use :meth:`MetricsRegistry.reset` to clear them.
    """
    _GLOBAL.enabled = False
    set_counter_sink(None)
