"""The trained EMSim model: amplitudes, floors, MISO coefficients.

Prediction (Eq. 9 of the paper, with explicit event handling from §IV):

    X[n] = delta + sum_s  contribution(s, n)

    contribution = 0                              stage stalled
                 = F_s                            stage flows a NOP/bubble
                 = F_s + M_s * alpha_s[n] * A(c, s)   stage runs class c

``A(c, s)`` is the *baseline hardware amplitude* of behavioural class ``c``
in stage ``s``, measured as the deviation from the all-NOP signal;
``alpha`` the activity factor; ``F_s`` the per-stage NOP floor and ``M_s``
the fitted MISO combination coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..uarch.latches import STAGES
from ..uarch.trace import ActivityTrace
from .config import EMSimConfig, ModelSwitches
from .factors import (ActivityFactorModel, AverageActivity,
                      RegressionActivity, UnitActivity)


@dataclass
class EMSimModel:
    """All trained parameters of one EMSim instance."""

    config: EMSimConfig
    amplitudes: Dict[Tuple[str, str], float] = field(default_factory=dict)
    floors: Dict[str, float] = field(default_factory=dict)
    miso: Dict[str, float] = field(default_factory=dict)
    intercept: float = 0.0
    regression_activity: RegressionActivity = \
        field(default_factory=RegressionActivity)
    average_activity: AverageActivity = field(default_factory=AverageActivity)
    # per-stage beta scaling for off-base probe positions (paper §V-D);
    # 1.0 everywhere at the training position
    beta: Dict[str, float] = field(default_factory=dict)
    nop_level: float = 0.0
    trained_on: str = ""

    # ------------------------------------------------------------------
    # parameter lookup
    # ------------------------------------------------------------------
    def amplitude(self, em_class: str, stage: str,
                  switches: Optional[ModelSwitches] = None) -> float:
        """Baseline amplitude A(c, s) with ablation-aware fallbacks."""
        switches = switches or self.config.switches
        if not switches.model_cache and em_class == "load_mem":
            em_class = "load_cache"
        if not switches.per_stage_sources:
            values = [value for (cls, _), value in self.amplitudes.items()
                      if cls == em_class]
            return float(np.mean(values)) if values else 0.0
        key = (em_class, stage)
        if key in self.amplitudes:
            return self.amplitudes[key]
        # dynamic load variants share early-stage behaviour with "load"
        if em_class in ("load_cache", "load_mem") and \
                ("load", stage) in self.amplitudes:
            return self.amplitudes[("load", stage)]
        return 0.0

    def _activity_model(self,
                        switches: ModelSwitches) -> ActivityFactorModel:
        if not switches.data_dependence:
            return UnitActivity()
        if switches.regression_alpha:
            return self.regression_activity
        return self.average_activity

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_cycle_amplitudes(
            self, trace: ActivityTrace,
            switches: Optional[ModelSwitches] = None) -> np.ndarray:
        """Per-cycle predicted signal amplitudes X[n] for a trace.

        The per-stage arithmetic is vectorized: the Python loop only
        resolves each cycle's behavioural class (with the A(c, s) lookups
        memoized per stage), and the Eq. 9 combination runs as one numpy
        expression per stage.  The operation order matches the original
        scalar loop element-for-element, so the output is bit-identical
        — a NOP cycle's zero amplitude contributes ``base + x * 0.0``,
        which equals ``base`` exactly for finite operands, and stalled
        cycles are masked to an exact ``0.0`` afterwards.
        """
        switches = switches or self.config.switches
        activity = self._activity_model(switches)
        cycles = trace.num_cycles
        prediction = np.full(cycles, self.intercept)
        for stage in STAGES:
            floor = self.floors.get(stage, 0.0)
            beta = self.beta.get(stage, 1.0)
            scale = self.miso.get(stage, 1.0) * beta
            alphas = activity.alpha(trace, stage)
            amplitudes = np.zeros(cycles)
            stalled = np.zeros(cycles, dtype=bool)
            cache: Dict[str, float] = {}
            occupancy = None
            for cycle, em_class in enumerate(trace.em_classes(stage)):
                if em_class == "stall":
                    if switches.model_stalls:
                        stalled[cycle] = True
                        continue
                    # ablation: pretend the stalled instruction kept
                    # switching at full activity (the occupancy objects
                    # materialize only on this rarely-taken path)
                    if occupancy is None:
                        occupancy = trace.occupancy[stage]
                    occ = occupancy[cycle]
                    em_class = (occ.instr.cls.value if occ.instr is not None
                                else "nop")
                    if occ.instr is not None and occ.instr.is_load:
                        em_class = "load_cache" if occ.dyn == "hit" \
                            else "load_mem"
                if em_class == "nop":
                    continue
                value = cache.get(em_class)
                if value is None:
                    value = self.amplitude(em_class, stage, switches)
                    cache[em_class] = value
                amplitudes[cycle] = value
            contribution = (floor * beta) + (scale * alphas) * amplitudes
            if stalled.any():
                contribution[stalled] = 0.0
            prediction += contribution
        return prediction

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def amplitude_table(self) -> str:
        """Formatted A(c, s) table (classes x stages)."""
        classes = sorted({cls for cls, _ in self.amplitudes})
        header = "class      " + "".join(f"{stage:>9s}" for stage in STAGES)
        lines = [header]
        for cls in classes:
            row = f"{cls:<11s}"
            for stage in STAGES:
                value = self.amplitudes.get((cls, stage))
                row += f"{value:9.3f}" if value is not None else \
                    "        -"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> str:
        """One-paragraph description of the trained model."""
        kept = self.regression_activity.selected_fraction()
        return (f"EMSimModel(trained_on={self.trained_on!r}, "
                f"classes={len({c for c, _ in self.amplitudes})}, "
                f"nop_level={self.nop_level:.3f}, "
                f"alpha_bits_kept={kept:.1%}, "
                f"miso={{{', '.join(f'{s}: {v:.2f}' for s, v in sorted(self.miso.items()))}}})")
