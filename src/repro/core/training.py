"""EMSim model building against a measurement bench (paper §III & §V-A).

The trainer drives the full methodology:

1. fit the reconstruction-kernel parameters (theta, T0) to a measured
   waveform (Fig. 1);
2. measure the all-NOP baseline level;
3. run zero-operand NOP->inst->NOP isolation probes per behavioural class
   to extract per-stage baseline amplitudes A (Fig. 2) and baseline flip
   counts;
4. run random-operand probes and fit the per-stage activity-factor
   regression with step-wise bit selection (Eq. 8 / Fig. 3);
5. fit the MISO combination coefficients M and the per-stage NOP floors on
   combination microbenchmarks (Eq. 9 / Fig. 4).

Everything operates on *measured* signals only (ideal or scope+modulo
captures) plus the known microarchitecture — no peeking at the emitter's
internal parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.device import HardwareDevice, Measurement
from ..isa.program import Program
from ..observability import get_tracer, record_campaign
from ..parallel import resolve_workers, spawn_seed, supervised_map
from ..profiling import get_profiler, monotonic
from ..robustness.checkpoint import CheckpointJournal
from ..robustness.errors import (CampaignError, ConvergenceError,
                                 ProbeError)
from ..robustness.health import HealthPolicy
from ..robustness.retry import (AcquisitionStats, CaptureSupervisor,
                                RetryPolicy)
from .trace_cache import trace_key
from ..leakage.streaming import WelfordAccumulator
from ..signal.kernels import DampedSineKernel
from ..signal.metrics import simulation_accuracy
from ..signal.reconstruction import estimate_cycle_amplitudes, reconstruct
from ..uarch.latches import STAGES, STAGE_REGISTERS
from ..uarch.trace import ActivityTrace
from .activity import stage_design_matrix
from .config import EMSimConfig
from .factors import AverageActivity, RegressionActivity
from .microbench import (REPRESENTATIVES, coverage_groups,
                         double_load_probe, isolation_probe, pair_probe,
                         probe_instruction_seq, repeat_probe)
from .model import EMSimModel
from .regression import (LinearModel, RobustFitInfo, fit_linear,
                         irls_solve, mad_outlier_mask, stepwise_select)

_AMPLITUDE_EPS = 1e-3

# Per-process capture state for the trainer's worker pool, installed by
# the pool initializer (inherited by memory under the fork start method).
_POOL_STATE: dict = {}


def _pool_measure_init(device, method: str, repetitions: int,
                       retry: RetryPolicy, health: HealthPolicy,
                       allow_degradation: bool, seed: int) -> None:
    """Build one capture supervisor per pool worker."""
    _POOL_STATE.update(
        device=device, method=method, repetitions=repetitions, seed=seed,
        supervisor=CaptureSupervisor(device, retry=retry, health=health,
                                     allow_degradation=allow_degradation))


def _pool_measure(item):
    """Capture one indexed probe inside a pool worker.

    The worker's device RNG (and fault injector, if any) is reseeded
    from ``(trainer seed, probe index)``, so every probe's capture is
    deterministic and independent of worker count and scheduling.  The
    capture goes through the batched repetition engine.
    """
    index, program = item
    device = _POOL_STATE["device"]
    device.rng = spawn_seed(_POOL_STATE["seed"], index)
    injector = getattr(device, "fault_injector", None)
    if injector is not None:
        injector.reseed(spawn_seed(_POOL_STATE["seed"], index, stream=1))
    return _POOL_STATE["supervisor"].measure(
        program, method=_POOL_STATE["method"],
        repetitions=_POOL_STATE["repetitions"], batched=True)


@dataclass
class TrainingReport:
    """Accounting of one training run: acquisition + fit robustness.

    ``acquisition`` counts retried/rejected/degraded probes (the bench
    side); ``stage_outliers`` and the fit infos count observations the
    robust regression down-weighted or rejected (the fitting side).
    """

    acquisition: AcquisitionStats = field(default_factory=AcquisitionStats)
    robust_fitting: bool = False
    stage_outliers: Dict[str, int] = field(default_factory=dict)
    joint_fit: Optional[RobustFitInfo] = None
    miso_fit: Optional[RobustFitInfo] = None
    degraded_probes: List[str] = field(default_factory=list)
    # streaming summary of the deconvolution loop (probe count, mean
    # per-cycle amplitude level, pooled dispersion) — folded one probe
    # at a time by the trainer's Welford accumulator
    deconvolution: Optional[Dict[str, float]] = None

    def summary(self) -> str:
        """Multi-line run report (printed by ``repro train``)."""
        lines = [f"acquisition: {self.acquisition.summary()}"]
        if self.degraded_probes:
            lines.append("degraded probes: " +
                         ", ".join(sorted(set(self.degraded_probes))))
        lines.append(f"robust fitting: "
                     f"{'on' if self.robust_fitting else 'off'}")
        if self.stage_outliers:
            rejected = ", ".join(
                f"{stage}: {count}" for stage, count in
                sorted(self.stage_outliers.items()))
            lines.append(f"alpha outliers rejected per stage: {rejected}")
        if self.joint_fit is not None:
            lines.append(f"joint alpha fit {self.joint_fit.describe()}")
        if self.miso_fit is not None:
            lines.append(f"MISO fit {self.miso_fit.describe()}")
        if self.deconvolution is not None:
            lines.append(
                f"deconvolution: {int(self.deconvolution['probes'])} "
                f"probes, amplitude level "
                f"{self.deconvolution['mean_level']:.4g} "
                f"± {self.deconvolution['dispersion']:.4g}")
        return "\n".join(lines)


def fit_kernel(signal: np.ndarray, samples_per_cycle: int,
               t0_grid: Optional[Sequence[float]] = None,
               theta_grid: Optional[Sequence[float]] = None,
               cached: bool = False) -> DampedSineKernel:
    """Grid-search the damped-sine parameters that best explain a signal.

    For each candidate (t0, theta), deconvolve per-cycle amplitudes and
    score the re-synthesized waveform against the measurement; the best
    scorer wins (the paper's Fig. 1 parameter estimation).
    Every grid point runs through the plan-cached banded deconvolver
    (see :mod:`repro.signal.reconstruction`), so repeated calibrations
    at the same probe length skip all 143 factorizations; ``cached`` is
    retained for API compatibility but both settings land on the same
    engine now that plans are always memoized.
    """
    t0_grid = t0_grid if t0_grid is not None else \
        np.linspace(0.15, 0.45, 13)
    theta_grid = theta_grid if theta_grid is not None else \
        np.linspace(2.0, 7.0, 11)
    best_kernel, best_score = DampedSineKernel(), -np.inf
    for t0 in t0_grid:
        for theta in theta_grid:
            kernel = DampedSineKernel(t0=float(t0), theta=float(theta))
            amplitudes = estimate_cycle_amplitudes(signal, kernel,
                                                   samples_per_cycle,
                                                   method="banded")
            resynth = reconstruct(amplitudes, kernel, samples_per_cycle)
            score = simulation_accuracy(resynth, signal,
                                        samples_per_cycle)
            # penalize wild amplitude swings (over-fitting via alternating
            # huge positive/negative amplitudes)
            roughness = float(np.mean(np.abs(np.diff(amplitudes)))) + 1e-9
            score -= 1e-3 * roughness
            if score > best_score:
                best_kernel, best_score = kernel, score
    return best_kernel


@dataclass
class Trainer:
    """Builds an :class:`EMSimModel` from measurements of one device."""

    device: HardwareDevice
    config: EMSimConfig = field(default_factory=EMSimConfig)
    capture_method: str = "ideal"
    repetitions: int = 100
    activity_probes_per_class: int = 20
    miso_groups: int = 2
    miso_group_size: int = 192
    seed: int = 42
    fit_kernel_parameters: bool = True
    verbose: bool = False
    # probe-capture fan-out: 1 (the default) is the exact legacy
    # sequential path; N > 1 runs probe batches through the batched
    # capture engine on up to N worker processes with deterministic
    # per-probe reseeding (see :meth:`_measure_many`)
    workers: int = 1
    # resilience knobs: health gate + retry around every capture, and
    # robust (Huber-IRLS) fitting so dirty probes cannot poison Eq. 8.
    # ``robust="auto"`` turns robust fitting on exactly when the device
    # carries an active fault plan, keeping fault-free runs bit-identical
    # to the plain least-squares path.
    health_policy: Optional[HealthPolicy] = None
    retry_policy: Optional[RetryPolicy] = None
    strict: bool = False
    robust: object = "auto"
    # campaign supervision: per-probe wall-clock deadline, bounded
    # retries with seeded backoff, and an optional checkpoint journal
    # that makes an interrupted training run resumable.  Setting a
    # timeout or a checkpoint switches batch captures to the supervised
    # per-probe-reseeded engine even at ``workers=1`` (hang/crash
    # detection needs a worker process; resume needs position-stable
    # seeding) — ideal-grid captures are bit-identical either way.
    item_timeout: Optional[float] = None
    max_item_retries: int = 2
    checkpoint: Optional[str] = None
    resume: bool = False
    # model-building fast path: Gram-based step-wise selection, the
    # memoized LU deconvolver, and vectorized joint-fit row assembly.
    # ``fast=False`` is the pre-optimization scalar reference (full
    # dense solve per step-wise candidate, fresh sparse factorization
    # per deconvolution, per-cycle Python row loop) kept for equivalence
    # tests and benchmarking; both paths select identical feature sets
    # and agree on coefficients to well inside 1e-9.
    fast: bool = True

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)
        if self.config.samples_per_cycle != self.device.samples_per_cycle:
            self.config = replace(
                self.config,
                samples_per_cycle=self.device.samples_per_cycle)
        faulty = getattr(self.device, "fault_injector", None) is not None
        if self.robust == "auto":
            self._robust_enabled = faulty
        else:
            self._robust_enabled = bool(self.robust)
        self.supervisor = CaptureSupervisor(
            self.device,
            retry=self.retry_policy or RetryPolicy(seed=self.seed),
            health=self.health_policy or HealthPolicy(),
            allow_degradation=not self.strict,
            log=self._log if self.verbose else None)
        self.report = TrainingReport(robust_fitting=self._robust_enabled)
        self.report.acquisition = self.supervisor.stats
        self._journal: Optional[CheckpointJournal] = None
        self._batch_counter = 0
        # streaming per-cycle amplitude moments folded by _amplitudes:
        # O(samples) observability over the whole deconvolution loop
        # without retaining any probe's amplitude vector
        self._amplitude_stats = WelfordAccumulator()

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def _measure(self, program: Program) -> Measurement:
        """One gated capture through the supervisor (sequential path)."""
        with get_profiler().phase("train.capture"):
            measurement, outcome = self.supervisor.measure(
                program, method=self.capture_method,
                repetitions=self.repetitions)
        if outcome.degraded:
            self.report.degraded_probes.append(outcome.program)
        return measurement

    def _measure_many(self, programs: Sequence[Program]
                      ) -> List[Measurement]:
        """Capture a batch of probe programs, preserving input order.

        ``workers=1`` (the default) is the exact legacy loop: one
        sequential capture per probe off the device's shared RNG
        stream.  With more workers, the probes fan out over a process
        pool: each probe reseeds its (per-process copy of the) device
        from ``(trainer seed, probe index)`` and captures through the
        batched repetition engine, so results are deterministic and
        independent of worker count.  Ideal-grid captures never touch
        the device RNG and therefore match the sequential path
        bit-for-bit; scope+modulo captures follow the per-probe seeding
        scheme instead of the shared stream (a different but equally
        valid noise realization).  Worker-side acquisition accounting
        (retries, rejects, degradations) is folded back into this
        trainer's report.
        """
        programs = list(programs)
        supervise = (self._journal is not None or
                     self.item_timeout is not None)
        if not supervise and (resolve_workers(self.workers) <= 1
                              or len(programs) <= 1):
            return [self._measure(program) for program in programs]
        batch = self._batch_counter
        self._batch_counter += 1

        def key_for(index: int, item) -> str:
            _, program = item
            salt = (f"train:{batch}:{index}:{self.capture_method}:"
                    f"{self.repetitions}:{self.seed}:"
                    f"{self.device._emitter_digest}")
            return trace_key(program, self.device.core_config,
                             core_kind=self.device.core_kind, salt=salt)

        profiler = get_profiler()
        start = monotonic()
        with get_tracer().span("train.measure_many", batch=batch,
                               probes=len(programs)):
            results, ledger = supervised_map(
                _pool_measure, list(enumerate(programs)),
                workers=self.workers,
                initializer=_pool_measure_init,
                initargs=(self.device, self.capture_method,
                          self.repetitions,
                          self.retry_policy or RetryPolicy(seed=self.seed),
                          self.health_policy or HealthPolicy(),
                          not self.strict, self.seed),
                timeout=self.item_timeout,
                max_item_retries=self.max_item_retries,
                seed=self.seed,
                journal=self._journal,
                key_for=key_for if self._journal is not None else None)
        profiler.add_phase("train.capture", monotonic() - start,
                           calls=len(programs))
        if not ledger.complete:
            raise CampaignError(
                f"probe batch {batch} lost {len(ledger.quarantined)} of "
                f"{len(programs)} captures ({ledger.summary()}); "
                f"training needs every probe",
                quarantined=ledger.quarantined)
        measurements: List[Measurement] = []
        for measurement, outcome in results:
            self.supervisor.stats.record(outcome)
            if outcome.degraded:
                self.report.degraded_probes.append(outcome.program)
            measurements.append(measurement)
        return measurements

    def _amplitudes(self, measurement: Measurement) -> np.ndarray:
        """Deconvolve one measurement's per-cycle amplitudes.

        Every deconvolution also folds into the trainer's streaming
        amplitude accumulator (reported as ``deconvolution`` in the
        :class:`TrainingReport`) — one pass, no matrices retained.
        """
        with get_profiler().phase("train.deconvolve"):
            amplitudes = estimate_cycle_amplitudes(
                measurement.signal, self.config.kernel,
                self.config.samples_per_cycle, method="banded")
        self._amplitude_stats.add(amplitudes)
        return amplitudes

    @staticmethod
    def _active_cycles(trace: ActivityTrace, seq: int,
                       stage: str) -> List[int]:
        """Cycles where dynamic instruction ``seq`` is *active* in
        ``stage`` (multi-cycle units are active on first and final
        cycles)."""
        active = trace.active_mask(stage)
        return [cycle for cycle in trace.cycles_of(seq, stage)
                if active[cycle]]

    # ------------------------------------------------------------------
    # training stages
    # ------------------------------------------------------------------
    def train(self) -> EMSimModel:
        """Run the full model-building pipeline.

        With ``checkpoint`` set, the batch captures journal their
        results as they complete (flushed on SIGINT/SIGTERM too), and a
        rerun with ``resume=True`` replays completed probes from the
        journal — producing bit-identical model coefficients to an
        uninterrupted run.
        """
        meta = {"campaign": "train", "device": self.device.name,
                "seed": int(self.seed), "capture": self.capture_method,
                "repetitions": int(self.repetitions)}
        with record_campaign("train", dict(
                meta, workers=resolve_workers(self.workers))) as recording:
            with get_tracer().span("train.pipeline",
                                   device=self.device.name):
                if self.checkpoint is None:
                    model = self._train_stages()
                else:
                    recording.checkpoint(self.checkpoint)
                    self._batch_counter = 0
                    with CheckpointJournal(self.checkpoint, meta=meta,
                                           resume=self.resume) as journal:
                        with journal.guarded():
                            self._journal = journal
                            try:
                                model = self._train_stages()
                            finally:
                                self._journal = None
            recording.set("acquisition", self.supervisor.stats.summary())
        return model

    def _train_stages(self) -> EMSimModel:
        """The five training stages (see the module docstring)."""
        if self.fit_kernel_parameters:
            self._fit_kernel()
        nop_level = self._nop_baseline()
        amplitudes, base_flips = self._baseline_amplitudes(nop_level)
        regression = self._activity_regression(nop_level, amplitudes)
        self._finish_amplitude_stats()
        model = EMSimModel(
            config=self.config,
            amplitudes=amplitudes,
            regression_activity=regression,
            average_activity=AverageActivity(base_flips=base_flips),
            nop_level=nop_level,
            beta={stage: 1.0 for stage in STAGES},
            trained_on=self.device.name)
        self._fit_miso(model)
        return model

    def fit(self) -> EMSimModel:
        """Alias for :meth:`train` (the calibration-loop spelling)."""
        return self.train()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[trainer] {message}")

    def _finish_amplitude_stats(self) -> None:
        """Summarize the streaming deconvolution moments into the report."""
        stats = self._amplitude_stats
        if stats.count < 2:
            return
        self.report.deconvolution = {
            "probes": float(stats.count),
            "mean_level": float(np.mean(stats.mean)),
            "dispersion": float(np.sqrt(np.mean(stats.variance()))),
        }

    def _fit_kernel(self) -> None:
        """Stage 1: estimate kernel shape from a mixed probe signal."""
        probe = isolation_probe("add", rs1_value=0x5A5A5A5A,
                                rs2_value=0x33CC33CC)
        measurement = self._measure(probe)
        kernel = fit_kernel(measurement.signal,
                            self.config.samples_per_cycle,
                            cached=self.fast)
        self.config = replace(self.config, kernel=kernel)
        self._log(f"kernel fit: t0={kernel.t0:.3f} theta={kernel.theta:.2f}")

    def _nop_baseline(self) -> float:
        """Stage 2: steady-state all-NOP amplitude level."""
        probe = isolation_probe("add", rs1_value=0, rs2_value=0)
        measurement = self._measure(probe)
        amplitudes = self._amplitudes(measurement)
        trace = measurement.trace
        # steady NOP cycles: every stage flows a NOP while fetch is still
        # running (probe padding zone) — drain cycles after the last fetch
        # are quieter and would bias the level down
        all_nop = trace.active_mask("F").copy()
        for stage in STAGES:
            all_nop &= np.asarray(trace.em_classes(stage)) == "nop"
        nop_cycles = np.nonzero(all_nop)[0].tolist()
        if not nop_cycles:
            raise ProbeError("no all-NOP cycles found in probe")
        return float(np.median(amplitudes[nop_cycles]))

    def _probe_programs(self) -> Dict[str, Program]:
        """Zero-operand isolation probes, one per behavioural class."""
        programs = {cls: isolation_probe(name)
                    for cls, name in REPRESENTATIVES.items()}
        programs["load_cache"] = double_load_probe("lw")
        return programs

    def _baseline_amplitudes(self, nop_level: float
                             ) -> Tuple[Dict[Tuple[str, str], float],
                                        Dict[str, float]]:
        """Stage 3: per-stage baseline amplitudes A and baseline flips."""
        table: Dict[Tuple[str, str], List[float]] = {}
        flip_rows: Dict[str, List[float]] = {stage: [] for stage in STAGES}

        def note(cls: str, stage: str, value: float) -> None:
            table.setdefault((cls, stage), []).append(value)

        probe_items = list(self._probe_programs().items())
        measurements = self._measure_many(
            [program for _, program in probe_items])
        for (cls, program), measurement in zip(probe_items, measurements):
            amplitudes = self._amplitudes(measurement)
            trace = measurement.trace
            seq = probe_instruction_seq(program)
            if cls == "load_cache":
                # second load of the double probe (first primes the line)
                seq = seq + 1 + 6  # first load + padding NOPs
            for stage in STAGES:
                labels = trace.em_classes(stage)
                for cycle in self._active_cycles(trace, seq, stage):
                    delta = float(amplitudes[cycle]) - nop_level
                    note(labels[cycle], stage, delta)
                    flip_rows[stage].append(
                        float(trace.flip_counts(stage)[cycle]))
            self._log(f"A probe {cls}: done")

        amplitudes_table = {key: float(np.mean(values))
                            for key, values in table.items()}
        base_flips = {stage: float(np.mean(rows)) if rows else 0.0
                      for stage, rows in flip_rows.items()}
        return amplitudes_table, base_flips

    def _activity_probe_values(self) -> List[Tuple[str, int, int, int]]:
        """(class, rs1, rs2, mem_offset) tuples for operand probes."""
        probes = []
        for cls in ("alu", "shift", "muldiv", "load", "store", "branch"):
            for _ in range(self.activity_probes_per_class):
                rs1 = int(self.rng.integers(0, 1 << 32))
                rs2 = int(self.rng.integers(0, 1 << 32))
                offset = int(self.rng.integers(0, 500)) * 4
                probes.append((cls, rs1, rs2, offset))
        return probes

    def _activity_regression(self, nop_level: float,
                             amplitudes: Dict[Tuple[str, str], float]
                             ) -> RegressionActivity:
        """Stage 4: per-stage alpha regression on transition bits.

        Two passes.  First, isolated probes (one non-NOP stage per cycle)
        give direct per-stage alpha observations, on which step-wise
        selection prunes the transition bits (paper §III-B).  Second, the
        selected bits are *re-fit jointly* across stages on a corpus that
        also contains back-to-back identical instructions, so that the
        model learns amplitude collapses when nothing switches.
        """
        rows: Dict[str, List[np.ndarray]] = {stage: [] for stage in STAGES}
        targets: Dict[str, List[float]] = {stage: [] for stage in STAGES}
        probe_measurements = []

        probe_values = self._activity_probe_values()
        probe_programs = [
            isolation_probe(REPRESENTATIVES[cls], rs1_value=rs1,
                            rs2_value=rs2, mem_offset=offset)
            for cls, rs1, rs2, offset in probe_values]
        for (cls, _, _, _), program, measurement in zip(
                probe_values, probe_programs,
                self._measure_many(probe_programs)):
            probe_measurements.append(measurement)
            measured = self._amplitudes(measurement)
            trace = measurement.trace
            seq = probe_instruction_seq(program)
            for stage in STAGES:
                labels = trace.em_classes(stage)
                for cycle in self._active_cycles(trace, seq, stage):
                    base = amplitudes.get((labels[cycle], stage))
                    if base is None:
                        base = amplitudes.get((cls, stage))
                    if base is None or abs(base) < _AMPLITUDE_EPS:
                        continue
                    alpha = (float(measured[cycle]) - nop_level) / base
                    rows[stage].append(
                        stage_design_matrix(trace, stage)[cycle])
                    targets[stage].append(alpha)

        # pass 1: step-wise bit selection on the isolated observations
        selected: Dict[str, np.ndarray] = {}
        for stage in STAGES:
            if len(targets[stage]) < 8:
                continue
            design = np.vstack(rows[stage])
            target = np.asarray(targets[stage])
            if self._robust_enabled:
                # corrupted captures yield wild alpha observations; a MAD
                # screen keeps them out of the F-tests that pick the bits
                outliers = mad_outlier_mask(target)
                rejected = int(outliers.sum())
                if rejected and rejected < len(target) - 8:
                    design = design[~outliers]
                    target = target[~outliers]
                    self.report.stage_outliers[stage] = rejected
                    self._log(f"alpha[{stage}]: rejected {rejected} "
                              f"outlier observation(s)")
            # per-register flip counts (the leading design columns) are
            # always kept; step-wise selection only adds individual bits
            num_counts = len(STAGE_REGISTERS[stage])
            model = stepwise_select(
                design, target,
                f_threshold=self.config.stepwise_f_threshold,
                max_features=self.config.stepwise_max_features,
                forced_features=list(range(num_counts)),
                method="gram" if self.fast else "naive")
            selected[stage] = model.features
            self._log(f"alpha[{stage}]: {len(target)} obs, "
                      f"{model.features.size} bits kept, "
                      f"R2={model.r_squared:.3f}")

        # pass 2: joint refit over isolated + repeated-instruction probes
        # (operands are drawn up front, in the exact legacy order — the
        # captures never consume the trainer RNG — so the probe batch
        # can fan out over workers)
        repeat_programs = []
        for cls in ("alu", "shift", "muldiv", "load", "store"):
            name = REPRESENTATIVES[cls]
            for _ in range(max(2, self.activity_probes_per_class // 4)):
                rs1 = int(self.rng.integers(0, 1 << 32))
                rs2 = int(self.rng.integers(0, 1 << 32))
                repeat_programs.append(repeat_probe(
                    name, rs1_value=rs1, rs2_value=rs2, count=3,
                    mem_offset=int(self.rng.integers(0, 400)) * 4))
        probe_measurements.extend(self._measure_many(repeat_programs))
        return self._joint_alpha_fit(probe_measurements, nop_level,
                                     amplitudes, selected)

    def _joint_alpha_fit(self, measurements, nop_level, amplitudes,
                         selected) -> RegressionActivity:
        """Solve for all stages' (delta_s, c_s) in one ridge regression.

        Model per cycle:  X - X_nop = sum_s A_s * (delta_s + T_s . c_s)
        with A_s the baseline amplitude of the class active in stage s
        (0 for NOP/bubble).  Handles cycles where several stages are
        active at once, which the isolated extraction cannot.
        """
        stage_order = [stage for stage in STAGES if stage in selected]
        column_spans: Dict[str, Tuple[int, int]] = {}
        position = 0
        for stage in stage_order:
            width = 1 + selected[stage].size
            column_spans[stage] = (position, width)
            position += width
        # trailing nuisance columns: one per stage, active when that stage
        # is stalled (a stall shifts the level; skipping those cycles would
        # discard every multi-cycle-unit result observation)
        stall_columns = {stage: position + index
                         for index, stage in enumerate(stage_order)}
        total_columns = position + len(stage_order)

        if self.fast:
            blocks = [self._joint_rows_fast(
                measurement, nop_level, amplitudes, selected, stage_order,
                column_spans, stall_columns, total_columns)
                for measurement in measurements]
            design = np.vstack([block for block, _ in blocks])
            target = np.concatenate([targets for _, targets in blocks])
        else:
            design_rows, target_rows = [], []
            for measurement in measurements:
                rows, values = self._joint_rows_scalar(
                    measurement, nop_level, amplitudes, selected,
                    stage_order, column_spans, stall_columns,
                    total_columns)
                design_rows.extend(rows)
                target_rows.extend(values)
            design = np.vstack(design_rows)
            target = np.asarray(target_rows)
        # ridge LS without global intercept (delta_s plays that role);
        # under fault injection, Huber IRLS so corrupted cycles cannot
        # drag every stage's (delta_s, c_s)
        solution = self._solve_joint(design, target, total_columns)

        models: Dict[str, LinearModel] = {}
        for stage in stage_order:
            start, width = column_spans[stage]
            models[stage] = LinearModel(
                intercept=float(solution[start]),
                coefficients=solution[start + 1:start + width],
                features=selected[stage])
            self._log(f"alpha[{stage}] joint: delta={solution[start]:.3f}")
        return RegressionActivity(models=models)

    def _joint_rows_scalar(self, measurement, nop_level, amplitudes,
                           selected, stage_order, column_spans,
                           stall_columns, total_columns):
        """Legacy per-cycle Python loop building one probe's joint rows."""
        trace = measurement.trace
        measured = self._amplitudes(measurement)
        designs = {stage: stage_design_matrix(trace, stage)
                   for stage in stage_order}
        design_rows, target_rows = [], []
        for cycle in range(trace.num_cycles):
            row = np.zeros(total_columns)
            informative = False
            for stage in stage_order:
                occ = trace.occupancy[stage][cycle]
                label = occ.em_class()
                if label == "stall":
                    row[stall_columns[stage]] = 1.0
                    continue
                if label == "nop":
                    continue
                base = amplitudes.get((label, stage))
                if base is None or abs(base) < _AMPLITUDE_EPS:
                    continue
                start, width = column_spans[stage]
                row[start] = base
                features = designs[stage][cycle][selected[stage]]
                row[start + 1:start + width] = base * features
                informative = True
            if not informative:
                continue
            design_rows.append(row)
            target_rows.append(float(measured[cycle]) - nop_level)
        return design_rows, target_rows

    def _joint_rows_fast(self, measurement, nop_level, amplitudes,
                         selected, stage_order, column_spans,
                         stall_columns, total_columns):
        """Vectorized joint-row assembly for one probe's measurement.

        Builds the whole (cycles, columns) block per stage with mask
        writes and one broadcast product instead of a per-cycle Python
        loop; the per-element products match the scalar path exactly, so
        the kept rows are bit-identical to :meth:`_joint_rows_scalar`.
        """
        trace = measurement.trace
        measured = self._amplitudes(measurement)
        cycles = trace.num_cycles
        block = np.zeros((cycles, total_columns))
        informative = np.zeros(cycles, dtype=bool)
        for stage in stage_order:
            labels = [occ.em_class()
                      for occ in trace.occupancy[stage][:cycles]]
            base = np.zeros(cycles)
            valid = np.zeros(cycles, dtype=bool)
            for cycle, label in enumerate(labels):
                if label == "stall":
                    block[cycle, stall_columns[stage]] = 1.0
                    continue
                if label == "nop":
                    continue
                level = amplitudes.get((label, stage))
                if level is None or abs(level) < _AMPLITUDE_EPS:
                    continue
                base[cycle] = level
                valid[cycle] = True
            if not valid.any():
                continue
            start, width = column_spans[stage]
            block[valid, start] = base[valid]
            if width > 1:
                features = stage_design_matrix(trace, stage)[
                    np.ix_(valid, selected[stage])]
                block[np.ix_(valid, np.arange(start + 1, start + width))] \
                    = base[valid, None] * features
            informative |= valid
        targets = measured[:cycles][informative] - nop_level
        return block[informative], targets

    def _solve_joint(self, design: np.ndarray, target: np.ndarray,
                     total_columns: int) -> np.ndarray:
        """Joint-fit solver: plain ridge, or Huber IRLS when robust.

        The normal-equations product is computed once and shared between
        the plain path, the IRLS warm start, and the divergence
        fallback, so the robust path never pays for it twice.
        """
        gram = design.T @ design
        if not self._robust_enabled:
            return np.linalg.solve(gram + 1e-6 * np.eye(total_columns),
                                   design.T @ target)
        try:
            solution, info = irls_solve(design, target, ridge=1e-6,
                                        gram=gram)
        except ConvergenceError:
            if self.strict:
                raise
            self._log("joint alpha IRLS diverged; falling back to "
                      "plain ridge")
            return np.linalg.solve(gram + 1e-6 * np.eye(total_columns),
                                   design.T @ target)
        self.report.joint_fit = info
        self._log(f"joint alpha fit: {info.describe()}")
        return solution

    # ------------------------------------------------------------------
    # MISO / floor fit (Eq. 9)
    # ------------------------------------------------------------------
    def _miso_training_programs(self) -> List[Program]:
        programs = coverage_groups(group_size=self.miso_group_size,
                                   seed=self.seed + 500,
                                   limit_groups=self.miso_groups)
        programs.append(pair_probe("add", "sll",
                                   rs1_value=0x0F0F0F0F,
                                   rs2_value=0x12345678))
        programs.append(pair_probe("mul", "lw"))
        # probes with long NOP-flow stretches pin down the per-stage
        # floors, which dense combination code barely constrains
        programs.append(isolation_probe("add", padding=12))
        programs.append(isolation_probe("mul", rs1_value=0xDEADBEEF,
                                        rs2_value=0x12345678, padding=12))
        programs.append(repeat_probe("add", rs1_value=0x0F0F0F0F,
                                     rs2_value=0x55AA55AA, count=6,
                                     padding=10))
        programs.append(repeat_probe("lw", count=4, padding=10))
        return programs

    def miso_design(self, model: EMSimModel, trace: ActivityTrace
                    ) -> np.ndarray:
        """(cycles, 10) design: per-stage NOP indicator and alpha*A term."""
        cycles = trace.num_cycles
        design = np.zeros((cycles, 2 * len(STAGES)))
        activity = model.regression_activity
        for index, stage in enumerate(STAGES):
            alphas = activity.alpha(trace, stage)
            for cycle, occ in enumerate(trace.occupancy[stage]):
                em_class = occ.em_class()
                if em_class == "stall":
                    continue
                if em_class == "nop":
                    design[cycle, index] = 1.0
                    continue
                design[cycle, index] = 1.0  # floor present under activity
                design[cycle, len(STAGES) + index] = \
                    alphas[cycle] * model.amplitude(em_class, stage)
        return design

    def _fit_miso(self, model: EMSimModel) -> None:
        """Stage 5: fit floors F_s and coefficients M_s jointly.

        Rows where no stage runs an instruction (pure floor/stall rows)
        are up-weighted: they are rare in dense code but they alone pin
        down the per-stage NOP floors, without which the predicted quiet
        level drifts to the dense-code mean.
        """
        designs, targets = [], []
        for measurement in self._measure_many(
                self._miso_training_programs()):
            measured = self._amplitudes(measurement)
            trace = measurement.trace
            designs.append(self.miso_design(model, trace))
            targets.append(measured[:trace.num_cycles])
        design = np.vstack(designs)
        target = np.concatenate(targets)
        # repro: allow[N201] design entries are exact integer event
        # counts stored as floats; the zero test is exact by
        # construction (it selects rows with no factor activity).
        pure_floor = np.all(design[:, len(STAGES):] == 0.0, axis=1)
        weights = np.where(pure_floor, 25.0, 1.0)
        if self._robust_enabled:
            augmented = np.hstack([np.ones((design.shape[0], 1)), design])
            try:
                solution, info = irls_solve(augmented, target, ridge=1e-6,
                                            base_weights=weights)
                intercept, coef = float(solution[0]), solution[1:]
                self.report.miso_fit = info
                self._log(f"MISO robust fit: {info.describe()}")
            except ConvergenceError:
                if self.strict:
                    raise
                self._log("MISO IRLS diverged; falling back to weighted LS")
                intercept, coef = fit_linear(design, target, ridge=1e-6,
                                             weights=weights)
        else:
            intercept, coef = fit_linear(design, target, ridge=1e-6,
                                         weights=weights)
        model.intercept = float(intercept)
        model.floors = {stage: float(coef[index])
                        for index, stage in enumerate(STAGES)}
        model.miso = {stage: float(coef[len(STAGES) + index])
                      for index, stage in enumerate(STAGES)}
        self._log(f"MISO fit: intercept={model.intercept:.3f} "
                  f"miso={model.miso}")


def train_emsim(device: HardwareDevice,
                config: Optional[EMSimConfig] = None,
                **kwargs: object) -> EMSimModel:
    """One-call training of EMSim against a device bench."""
    trainer = Trainer(device=device, config=config or EMSimConfig(),
                      **kwargs)
    return trainer.train()


def fit_beta(model: EMSimModel, device: HardwareDevice,
             programs: Sequence[Program],
             capture_method: str = "ideal") -> Dict[str, float]:
    """Refit per-stage loss coefficients beta at a new probe position.

    The paper's §V-D procedure: keep A (trained at the base position),
    substitute A -> A*beta, and solve the same linear model for beta.
    Returns the fitted per-stage beta (does not mutate ``model``).
    """
    designs, targets = [], []
    trainer = Trainer(device=device, config=model.config,
                      capture_method=capture_method,
                      fit_kernel_parameters=False)
    for program in programs:
        measurement = trainer._measure(program)
        measured = trainer._amplitudes(measurement)
        trace = measurement.trace
        base = trainer.miso_design(model, trace)
        # fold the already-fitted floors/miso into per-stage columns so
        # beta is a pure per-stage scale
        cycles = trace.num_cycles
        design = np.zeros((cycles, len(STAGES)))
        for index, stage in enumerate(STAGES):
            design[:, index] = (base[:, index] *
                                model.floors.get(stage, 0.0) +
                                base[:, len(STAGES) + index] *
                                model.miso.get(stage, 1.0))
        designs.append(design)
        targets.append(measured[:cycles])
    design = np.vstack(designs)
    target = np.concatenate(targets)
    intercept, coef = fit_linear(design, target, ridge=1e-6)
    del intercept
    betas = {}
    for index, stage in enumerate(STAGES):
        excitation = float(np.abs(design[:, index]).sum())
        # a stage the fit programs barely exercise is unidentifiable;
        # keep the training-position default rather than fitting noise
        betas[stage] = float(coef[index]) if excitation > 1.0 else 1.0
    return betas
