"""Instruction clustering by EM signature (paper §V-A "Model Building").

Measuring all ~3*10^8 instruction combinations is infeasible, so the paper
clusters instructions with similar EM patterns using hierarchical
agglomerative clustering with a cross-correlation distance, finding that the
RV32IM ISA collapses into 7 clusters (Table I) and training only on one
representative per cluster (reducing ~300M measurements to ~16k).

Two linkage engines share one greedy policy: ``method="naive"`` is the
reference O(n^3) loop that re-averages member pair distances from the
original matrix at every step, ``method="lw"`` (the default) maintains
the merged distances incrementally with the Lance-Williams recurrence
for average linkage,

    d(k, a+b) = (n_a * d(k, a) + n_b * d(k, b)) / (n_a + n_b),

scanning pairs in the same lexicographic order with the same strict-<
acceptance, so cluster assignments (Table I) are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..signal.metrics import cross_correlation, normalize_energy


_SILENCE = 1e-12    # matches the energy epsilon in signal.metrics


def signature_distance(first: np.ndarray, second: np.ndarray) -> float:
    """1 - normalized cross-correlation of two signature waveforms."""
    length = min(len(first), len(second))
    return 1.0 - cross_correlation(
        normalize_energy(np.asarray(first[:length], dtype=float)),
        normalize_energy(np.asarray(second[:length], dtype=float)))


def signature_distance_matrix(signatures: Dict[str, np.ndarray]
                              ) -> Tuple[List[str], np.ndarray]:
    """All-pairs :func:`signature_distance` matrix over ``signatures``.

    Returns ``(sorted names, symmetric matrix)`` with a zero diagonal.
    When every signature has the same length (the isolation probes all
    do) the matrix comes from one normalized Gram product instead of
    O(n^2) scalar correlation calls; mixed lengths fall back to the
    per-pair path because each pair is then truncated to its own common
    length before normalization.
    """
    names = sorted(signatures)
    count = len(names)
    matrix = np.zeros((count, count))
    if count == 0:
        return names, matrix
    lengths = {len(signatures[name]) for name in names}
    if len(lengths) == 1:
        stack = np.stack([np.asarray(signatures[name], dtype=float)
                          for name in names])
        rms = np.sqrt(np.mean(stack ** 2, axis=1))
        silent = rms < _SILENCE
        unit = stack / np.where(silent, 1.0, rms)[:, None]
        dots = unit @ unit.T
        energy = np.diag(dots).copy()
        norm = np.sqrt(np.outer(energy, energy))
        corr = dots / np.where(norm < _SILENCE, 1.0, norm)
        # silent signatures follow the cross_correlation conventions:
        # silent-vs-live correlates 0, silent-vs-silent correlates 1
        corr[silent, :] = 0.0
        corr[:, silent] = 0.0
        corr[np.ix_(silent, silent)] = 1.0
        matrix = 1.0 - corr
        np.fill_diagonal(matrix, 0.0)
        return names, matrix
    for i in range(count):
        for j in range(i + 1, count):
            dist = signature_distance(signatures[names[i]],
                                      signatures[names[j]])
            matrix[i, j] = matrix[j, i] = dist
    return names, matrix


@dataclass
class ClusterResult:
    """Outcome of hierarchical clustering over instruction signatures."""

    labels: Dict[str, int]                 # item name -> cluster id
    merge_heights: List[float] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters."""
        return len(set(self.labels.values()))

    def members(self, cluster: int) -> List[str]:
        """Item names in ``cluster``, sorted."""
        return sorted(name for name, label in self.labels.items()
                      if label == cluster)

    def clusters(self) -> List[List[str]]:
        """All clusters as sorted member lists, largest first."""
        groups = [self.members(cluster)
                  for cluster in sorted(set(self.labels.values()))]
        return sorted(groups, key=len, reverse=True)

    def table(self) -> str:
        """Formatted Table-I-style cluster listing."""
        lines = ["cluster  size  members"]
        for index, group in enumerate(self.clusters(), start=1):
            shown = ", ".join(group[:6]) + (", ..." if len(group) > 6
                                            else "")
            lines.append(f"{index:7d}  {len(group):4d}  {shown}")
        return "\n".join(lines)


def _linkage_naive(distance: np.ndarray, target: int,
                   distance_threshold: Optional[float]
                   ) -> Tuple[List[List[int]], List[float]]:
    """Reference average-linkage loop: re-average members every step."""
    count = distance.shape[0]
    clusters: Dict[int, List[int]] = {i: [i] for i in range(count)}
    merge_heights: List[float] = []

    def average_linkage(a: int, b: int) -> float:
        members_a, members_b = clusters[a], clusters[b]
        return float(np.mean([[distance[i, j] for j in members_b]
                              for i in members_a]))

    while len(clusters) > target:
        keys = sorted(clusters)
        best: Tuple[float, int, int] = (np.inf, -1, -1)
        for index_a, a in enumerate(keys):
            for b in keys[index_a + 1:]:
                height = average_linkage(a, b)
                if height < best[0]:
                    best = (height, a, b)
        height, a, b = best
        if distance_threshold is not None and height > distance_threshold:
            break
        clusters[a] = clusters[a] + clusters[b]
        del clusters[b]
        merge_heights.append(height)
    return list(clusters.values()), merge_heights


def _linkage_lw(distance: np.ndarray, target: int,
                distance_threshold: Optional[float]
                ) -> Tuple[List[List[int]], List[float]]:
    """Vectorized average linkage via the Lance-Williams recurrence.

    One working copy of the distance matrix is kept; each merge updates
    row/column ``a`` in O(n) with the size-weighted average of rows ``a``
    and ``b``, and the cheapest active pair is found with a flat argmin
    over the masked upper triangle.  The row-major argmin visits pairs
    in the same lexicographic (a, b) order as the reference scan, so
    exact ties resolve to the same merge.
    """
    count = distance.shape[0]
    work = distance.astype(float, copy=True)
    active = np.ones(count, dtype=bool)
    sizes = np.ones(count, dtype=int)
    members: Dict[int, List[int]] = {i: [i] for i in range(count)}
    upper = np.triu(np.ones((count, count), dtype=bool), 1)
    merge_heights: List[float] = []
    remaining = count
    while remaining > target:
        masked = np.where(upper & active[:, None] & active[None, :],
                          work, np.inf)
        a, b = divmod(int(np.argmin(masked)), count)
        height = float(masked[a, b])
        if distance_threshold is not None and height > distance_threshold:
            break
        others = active.copy()
        others[a] = others[b] = False
        merged = ((sizes[a] * work[a] + sizes[b] * work[b]) /
                  (sizes[a] + sizes[b]))
        work[a] = np.where(others, merged, work[a])
        work[:, a] = work[a]
        sizes[a] += sizes[b]
        active[b] = False
        members[a] = members[a] + members.pop(b)
        merge_heights.append(height)
        remaining -= 1
    return [members[key] for key in sorted(members)], merge_heights


def agglomerative_cluster(signatures: Dict[str, np.ndarray],
                          num_clusters: Optional[int] = 7,
                          distance_threshold: Optional[float] = None,
                          method: str = "lw") -> ClusterResult:
    """Average-linkage hierarchical agglomerative clustering.

    ``signatures`` maps item name -> signature waveform.  Merging stops
    when ``num_clusters`` remain, or — if ``distance_threshold`` is given —
    when the cheapest merge exceeds the threshold (whichever first).
    ``method`` picks the linkage engine: ``"lw"`` (default) is the
    vectorized Lance-Williams path, ``"naive"`` the reference loop; both
    follow the identical greedy merge policy.
    """
    if method not in ("lw", "naive"):
        raise ValueError(f"unknown clustering method: {method!r}")
    names, distance = signature_distance_matrix(signatures)
    count = len(names)
    if count == 0:
        return ClusterResult(labels={})
    target = num_clusters if num_clusters is not None else 1
    linkage = _linkage_lw if method == "lw" else _linkage_naive
    groups, merge_heights = linkage(distance, target, distance_threshold)

    labels: Dict[str, int] = {}
    for cluster_id, members in enumerate(sorted(groups, key=min)):
        for index in members:
            labels[names[index]] = cluster_id
    return ClusterResult(labels=labels, merge_heights=merge_heights)


def cluster_instruction_signatures(
        signatures: Dict[str, np.ndarray],
        num_clusters: int = 7) -> ClusterResult:
    """Cluster per-instruction NOP->inst->NOP signature waveforms.

    This is exactly the paper's Table-I construction: the signatures come
    from the isolation probes, and items whose waveforms cross-correlate
    strongly land in one cluster.
    """
    return agglomerative_cluster(signatures, num_clusters=num_clusters)
