"""Instruction clustering by EM signature (paper §V-A "Model Building").

Measuring all ~3*10^8 instruction combinations is infeasible, so the paper
clusters instructions with similar EM patterns using hierarchical
agglomerative clustering with a cross-correlation distance, finding that the
RV32IM ISA collapses into 7 clusters (Table I) and training only on one
representative per cluster (reducing ~300M measurements to ~16k).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..signal.metrics import cross_correlation, normalize_energy


def signature_distance(first: np.ndarray, second: np.ndarray) -> float:
    """1 - normalized cross-correlation of two signature waveforms."""
    length = min(len(first), len(second))
    return 1.0 - cross_correlation(
        normalize_energy(np.asarray(first[:length], dtype=float)),
        normalize_energy(np.asarray(second[:length], dtype=float)))


@dataclass
class ClusterResult:
    """Outcome of hierarchical clustering over instruction signatures."""

    labels: Dict[str, int]                 # item name -> cluster id
    merge_heights: List[float] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters."""
        return len(set(self.labels.values()))

    def members(self, cluster: int) -> List[str]:
        """Item names in ``cluster``, sorted."""
        return sorted(name for name, label in self.labels.items()
                      if label == cluster)

    def clusters(self) -> List[List[str]]:
        """All clusters as sorted member lists, largest first."""
        groups = [self.members(cluster)
                  for cluster in sorted(set(self.labels.values()))]
        return sorted(groups, key=len, reverse=True)

    def table(self) -> str:
        """Formatted Table-I-style cluster listing."""
        lines = ["cluster  size  members"]
        for index, group in enumerate(self.clusters(), start=1):
            shown = ", ".join(group[:6]) + (", ..." if len(group) > 6
                                            else "")
            lines.append(f"{index:7d}  {len(group):4d}  {shown}")
        return "\n".join(lines)


def agglomerative_cluster(signatures: Dict[str, np.ndarray],
                          num_clusters: Optional[int] = 7,
                          distance_threshold: Optional[float] = None
                          ) -> ClusterResult:
    """Average-linkage hierarchical agglomerative clustering.

    ``signatures`` maps item name -> signature waveform.  Merging stops
    when ``num_clusters`` remain, or — if ``distance_threshold`` is given —
    when the cheapest merge exceeds the threshold (whichever first).
    """
    names = sorted(signatures)
    count = len(names)
    if count == 0:
        return ClusterResult(labels={})
    distance = np.zeros((count, count))
    for i in range(count):
        for j in range(i + 1, count):
            dist = signature_distance(signatures[names[i]],
                                      signatures[names[j]])
            distance[i, j] = distance[j, i] = dist

    clusters: Dict[int, List[int]] = {i: [i] for i in range(count)}
    merge_heights: List[float] = []

    def average_linkage(a: int, b: int) -> float:
        members_a, members_b = clusters[a], clusters[b]
        return float(np.mean([[distance[i, j] for j in members_b]
                              for i in members_a]))

    target = num_clusters if num_clusters is not None else 1
    while len(clusters) > target:
        keys = sorted(clusters)
        best: Tuple[float, int, int] = (np.inf, -1, -1)
        for index_a, a in enumerate(keys):
            for b in keys[index_a + 1:]:
                height = average_linkage(a, b)
                if height < best[0]:
                    best = (height, a, b)
        height, a, b = best
        if distance_threshold is not None and height > distance_threshold:
            break
        clusters[a] = clusters[a] + clusters[b]
        del clusters[b]
        merge_heights.append(height)

    labels: Dict[str, int] = {}
    for cluster_id, members in enumerate(sorted(clusters.values(),
                                                key=min)):
        for index in members:
            labels[names[index]] = cluster_id
    return ClusterResult(labels=labels, merge_heights=merge_heights)


def cluster_instruction_signatures(
        signatures: Dict[str, np.ndarray],
        num_clusters: int = 7) -> ClusterResult:
    """Cluster per-instruction NOP->inst->NOP signature waveforms.

    This is exactly the paper's Table-I construction: the signatures come
    from the isolation probes, and items whose waveforms cross-correlate
    strongly land in one cluster.
    """
    return agglomerative_cluster(signatures, num_clusters=num_clusters)
