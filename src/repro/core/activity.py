"""Transition-vector extraction and flip counting (paper §III-B).

Bridges the microarchitectural trace and the EM model: per-stage
transition-bit matrices for the regression activity model (Eq. 8), and the
flip-count statistics behind the naive averaging activity factor (Eq. 7).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..uarch.latches import (STAGES, STAGE_REGISTERS, stage_bit_count,
                             stage_register_offsets)
from ..uarch.trace import ActivityTrace


def stage_transition_matrices(trace: ActivityTrace) -> Dict[str, np.ndarray]:
    """Per-stage (cycles, bits) transition matrices for one trace."""
    return {stage: trace.transition_matrix(stage) for stage in STAGES}


def stage_feature_names(stage: str) -> list:
    """Names of the activity-regression features for ``stage``.

    The design is [per-register flip counts | raw transition bits]: the
    counts summarize how much each latch register switched (a strong
    aggregate predictor when many bits carry similar weight), the raw bits
    let the regression single out the heavy wires the paper identified
    (ALU output, memory buses).
    """
    names = [f"count:{name}" for name, _ in STAGE_REGISTERS[stage]]
    for register, (_, width) in stage_register_offsets(stage).items():
        names.extend(f"bit:{register}[{bit}]" for bit in range(width))
    return names


def stage_design_matrix(trace: ActivityTrace, stage: str) -> np.ndarray:
    """(cycles, registers + bits) activity-regression design for a stage.

    Column layout matches :func:`stage_feature_names`.
    """
    bits = trace.transition_matrix(stage).astype(float)
    offsets = stage_register_offsets(stage)
    counts = np.stack(
        [bits[:, start:start + width].sum(axis=1)
         for _, (start, width) in sorted(offsets.items(),
                                         key=lambda item: item[1][0])],
        axis=1)
    return np.hstack([counts, bits])


def stage_flip_counts(trace: ActivityTrace) -> Dict[str, np.ndarray]:
    """Per-stage (cycles,) flip-count vectors for one trace."""
    return {stage: trace.flip_counts(stage) for stage in STAGES}


def stage_class_labels(trace: ActivityTrace) -> Dict[str, List[str]]:
    """Per-stage per-cycle behavioural class labels."""
    return {stage: trace.em_classes(stage) for stage in STAGES}


def average_alpha(flips_new: np.ndarray, flips_base: float,
                  stage: str) -> np.ndarray:
    """Eq. 7: ``alpha = 1 + (flips_new - flips_base) / flips_total``.

    ``flips_total`` is the maximum possible number of flips, i.e. the
    stage's tracked bit count.
    """
    flips_total = stage_bit_count(stage)
    return 1.0 + (np.asarray(flips_new, dtype=float) - flips_base) / \
        flips_total
