"""Linear regression with step-wise feature selection (paper §III-B).

EMSim fits activity factors with a linear model over transition bits
(Eq. 8) and prunes statistically insignificant bits with step-wise
regression based on F-tests — "we managed to reduce the size of T by more
than 65%".  This module provides the ridge-regularized least-squares fit
and the forward step-wise selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class LinearModel:
    """A fitted linear model ``y ~ intercept + X[:, features] @ coef``."""

    intercept: float
    coefficients: np.ndarray
    features: np.ndarray          # column indices into the full design
    residual_variance: float = 0.0
    r_squared: float = 0.0

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predict for a full design matrix (all columns present)."""
        design = np.atleast_2d(np.asarray(design, dtype=float))
        if self.features.size == 0:
            return np.full(design.shape[0], self.intercept)
        return self.intercept + design[:, self.features] @ self.coefficients


def fit_linear(design: np.ndarray, target: np.ndarray,
               ridge: float = 1e-8,
               weights: Optional[np.ndarray] = None
               ) -> Tuple[float, np.ndarray]:
    """(Weighted) least-squares fit with intercept: (intercept, coef)."""
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    augmented = np.hstack([np.ones((design.shape[0], 1)), design])
    if weights is not None:
        scale = np.sqrt(np.asarray(weights, dtype=float))[:, None]
        augmented = augmented * scale
        target = target * scale[:, 0]
    gram = augmented.T @ augmented
    gram += ridge * np.eye(gram.shape[0])
    solution = np.linalg.solve(gram, augmented.T @ target)
    return float(solution[0]), solution[1:]


def _rss(design: np.ndarray, target: np.ndarray,
         columns: List[int], ridge: float) -> float:
    if columns:
        intercept, coef = fit_linear(design[:, columns], target, ridge)
        predictions = intercept + design[:, columns] @ coef
    else:
        predictions = np.full_like(target, target.mean())
    residuals = target - predictions
    return float(residuals @ residuals)


def stepwise_select(design: np.ndarray, target: np.ndarray,
                    f_threshold: float = 4.0,
                    max_features: Optional[int] = None,
                    ridge: float = 1e-8,
                    forced_features: Optional[List[int]] = None
                    ) -> LinearModel:
    """Forward step-wise regression with a partial-F entry criterion.

    Starting from the intercept-only model, repeatedly adds the candidate
    column whose inclusion yields the largest partial F-statistic

        F = (RSS_old - RSS_new) / (RSS_new / (n - p - 1))

    and stops when no candidate reaches ``f_threshold`` (or
    ``max_features`` is hit).  Columns with no variance are never
    considered — exactly the pruning of non-contributing transition bits
    the paper describes.
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    n_samples, n_columns = design.shape
    variances = design.var(axis=0)
    selected: List[int] = [col for col in (forced_features or [])
                           if variances[col] > 0]
    candidates = [col for col in range(n_columns)
                  if variances[col] > 0 and col not in selected]
    rss_current = _rss(design, target, selected, ridge)

    while candidates:
        if max_features is not None and len(selected) >= max_features:
            break
        best_column, best_rss = None, rss_current
        for column in candidates:
            rss_new = _rss(design, target, selected + [column], ridge)
            if rss_new < best_rss:
                best_column, best_rss = column, rss_new
        if best_column is None:
            break
        dof = n_samples - len(selected) - 2
        if dof <= 0:
            break
        denom = best_rss / dof
        f_stat = (rss_current - best_rss) / denom if denom > 0 else \
            float("inf")
        if f_stat < f_threshold:
            break
        selected.append(best_column)
        candidates.remove(best_column)
        rss_current = best_rss

    if selected:
        intercept, coef = fit_linear(design[:, selected], target, ridge)
        predictions = intercept + design[:, selected] @ coef
    else:
        intercept, coef = float(target.mean()), np.zeros(0)
        predictions = np.full_like(target, intercept)
    residuals = target - predictions
    total = target - target.mean()
    total_ss = float(total @ total)
    return LinearModel(
        intercept=intercept,
        coefficients=np.asarray(coef, dtype=float),
        features=np.asarray(selected, dtype=int),
        residual_variance=float(residuals @ residuals) /
        max(1, n_samples - len(selected) - 1),
        r_squared=1.0 - float(residuals @ residuals) / total_ss
        if total_ss > 0 else 1.0)


def fit_full(design: np.ndarray, target: np.ndarray,
             ridge: float = 1e-6) -> LinearModel:
    """Fit using every column (no selection); for ablation comparisons."""
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    intercept, coef = fit_linear(design, target, ridge)
    predictions = intercept + design @ coef
    residuals = target - predictions
    total = target - target.mean()
    total_ss = float(total @ total)
    return LinearModel(
        intercept=intercept, coefficients=coef,
        features=np.arange(design.shape[1]),
        residual_variance=float(residuals @ residuals) /
        max(1, design.shape[0] - design.shape[1] - 1),
        r_squared=1.0 - float(residuals @ residuals) / total_ss
        if total_ss > 0 else 1.0)
