"""Linear regression with step-wise feature selection (paper §III-B).

EMSim fits activity factors with a linear model over transition bits
(Eq. 8) and prunes statistically insignificant bits with step-wise
regression based on F-tests — "we managed to reduce the size of T by more
than 65%".  This module provides the ridge-regularized least-squares fit
and the forward step-wise selector.

The selector has two engines sharing one search policy:

* ``method="naive"`` — the reference implementation: every candidate
  column at every step is scored with a full dense solve over the data
  (O(steps x columns) passes over the design matrix);
* ``method="gram"`` (the default) — the fast path: the augmented Gram
  matrix ``[1|X]^T [1|X]`` and moment vector ``[1|X]^T y`` are built
  once (:class:`GramCache`) and every candidate's residual sum of
  squares comes from a rank-1 Schur-complement update of the current
  subset's inverse — the same selections, with final coefficients
  refitted through the exact reference solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..robustness.errors import ConfigurationError, ConvergenceError


@dataclass
class LinearModel:
    """A fitted linear model ``y ~ intercept + X[:, features] @ coef``."""

    intercept: float
    coefficients: np.ndarray
    features: np.ndarray          # column indices into the full design
    residual_variance: float = 0.0
    r_squared: float = 0.0

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predict for a full design matrix (all columns present)."""
        design = np.atleast_2d(np.asarray(design, dtype=float))
        if self.features.size == 0:
            return np.full(design.shape[0], self.intercept)
        return self.intercept + design[:, self.features] @ self.coefficients


def fit_linear(design: np.ndarray, target: np.ndarray,
               ridge: float = 1e-8,
               weights: Optional[np.ndarray] = None
               ) -> Tuple[float, np.ndarray]:
    """(Weighted) least-squares fit with intercept: (intercept, coef)."""
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    augmented = np.hstack([np.ones((design.shape[0], 1)), design])
    if weights is not None:
        scale = np.sqrt(np.asarray(weights, dtype=float))[:, None]
        augmented = augmented * scale
        target = target * scale[:, 0]
    gram = augmented.T @ augmented
    gram += ridge * np.eye(gram.shape[0])
    solution = np.linalg.solve(gram, augmented.T @ target)
    return float(solution[0]), solution[1:]


def _rss(design: np.ndarray, target: np.ndarray,
         columns: List[int], ridge: float) -> float:
    target = np.asarray(target, dtype=float)
    if columns:
        intercept, coef = fit_linear(design[:, columns], target, ridge)
        predictions = intercept + design[:, columns] @ coef
    else:
        predictions = np.full_like(target, target.mean())
    residuals = target - predictions
    return float(residuals @ residuals)


class GramCache:
    """Precomputed normal equations for one ``(design, target)`` pair.

    Builds the augmented Gram matrix ``G = [1|X]^T [1|X]``, the moment
    vector ``b = [1|X]^T y`` and ``y^T y`` exactly once; ridge solutions
    and residual sums of squares for arbitrary column subsets then come
    from small dense solves on submatrices of ``G`` instead of fresh
    O(n p^2) passes over the data.  Shared by the step-wise selector's
    fast path, :func:`fit_full`, and the trimmed robust refit.
    """

    def __init__(self, design: np.ndarray, target: np.ndarray):
        self.design = np.asarray(design, dtype=float)
        self.target = np.asarray(target, dtype=float)
        self.n_samples = self.design.shape[0]
        self.augmented = np.hstack(
            [np.ones((self.n_samples, 1)), self.design])
        self.gram = self.augmented.T @ self.augmented
        self.moment = self.augmented.T @ self.target
        self.target_ss = float(self.target @ self.target)

    def indices(self, columns: Sequence[int]) -> np.ndarray:
        """Augmented-matrix indices (intercept first) for design columns."""
        columns = np.asarray(list(columns), dtype=int)
        return np.concatenate(([0], columns + 1))

    def solve(self, columns: Sequence[int],
              ridge: float) -> Tuple[float, np.ndarray]:
        """Ridge solution ``(intercept, coef)`` over ``columns``.

        Solves the same normal equations :func:`fit_linear` would build
        for the column subset, without touching the data again.
        """
        idx = self.indices(columns)
        sub = self.gram[np.ix_(idx, idx)] + ridge * np.eye(len(idx))
        solution = np.linalg.solve(sub, self.moment[idx])
        return float(solution[0]), solution[1:]

    def solve_rows(self, keep: np.ndarray, ridge: float
                   ) -> Tuple[float, np.ndarray]:
        """Ridge solution over all columns using only rows where ``keep``.

        The full Gram matrix is *downdated* by the dropped rows' outer
        products — O(dropped x p^2) instead of O(n p^2) per refit, which
        is what makes the trimmed-LS rounds cheap when few rows drop.
        """
        dropped = self.augmented[~keep]
        gram = self.gram - dropped.T @ dropped
        moment = self.moment - dropped.T @ self.target[~keep]
        gram = gram + ridge * np.eye(gram.shape[0])
        solution = np.linalg.solve(gram, moment)
        return float(solution[0]), solution[1:]

    def _state(self, columns, ridge: float):
        """(aug indices, inverse, beta, ridge-fit RSS) for a subset."""
        idx = self.indices(columns)
        sub = self.gram[np.ix_(idx, idx)] + ridge * np.eye(len(idx))
        inverse = np.linalg.inv(sub)
        beta = inverse @ self.moment[idx]
        rss = (self.target_ss - float(self.moment[idx] @ beta) -
               ridge * float(beta @ beta))
        return idx, inverse, beta, max(rss, 0.0)


def _dedupe_preserving(columns) -> List[int]:
    """Drop duplicate column indices, keeping first-occurrence order."""
    seen = set()
    unique = []
    for column in columns:
        if column not in seen:
            seen.add(column)
            unique.append(column)
    return unique


def _stepwise_naive(design: np.ndarray, target: np.ndarray,
                    f_threshold: float, max_features: Optional[int],
                    ridge: float, selected: List[int],
                    candidates: List[int]) -> List[int]:
    """Reference search loop: full dense solve per candidate per step."""
    n_samples = design.shape[0]
    rss_current = _rss(design, target, selected, ridge)
    while candidates:
        if max_features is not None and len(selected) >= max_features:
            break
        best_column, best_rss = None, rss_current
        for column in candidates:
            rss_new = _rss(design, target, selected + [column], ridge)
            if rss_new < best_rss:
                best_column, best_rss = column, rss_new
        if best_column is None:
            break
        dof = n_samples - len(selected) - 2
        if dof <= 0:
            break
        denom = best_rss / dof
        f_stat = (rss_current - best_rss) / denom if denom > 0 else \
            float("inf")
        if f_stat < f_threshold:
            break
        selected.append(best_column)
        candidates.remove(best_column)
        rss_current = best_rss
    return selected


def _stepwise_gram(cache: GramCache, f_threshold: float,
                   max_features: Optional[int], ridge: float,
                   selected: List[int],
                   candidates: List[int]) -> List[int]:
    """Fast search loop: every candidate scored by a rank-1 Schur update.

    With the current subset's inverse ``C = (G_S + ridge I)^-1`` in hand,
    adding candidate column c drops the penalized objective by
    ``gamma^2 d`` where ``d = (G_cc + ridge) - g^T C g`` is the Schur
    complement and ``gamma = (b_c - beta^T g) / d``; one matrix product
    scores *all* candidates of a step at once.

    The sweep scores are used for *shortlisting* only.  Every candidate
    whose sweep drop is within a safety margin of the best is rescored
    with the exact reference :func:`_rss` and the winner chosen by the
    naive engine's strict-``<`` scan in candidate order, so exact ties
    (duplicate design columns are common in transition matrices) break
    toward the same column the naive engine keeps.  The decision
    quantities — the accepted candidate's residual sum of squares and
    the partial-F statistic — come from those exact rescores, which
    also sidesteps the sweep's weakness: the ``y^T y - b . beta``
    identity cancels catastrophically once the fit is nearly exact.
    The shortlist is a handful of columns in practice, so each step
    costs a few dense solves instead of one per candidate.
    """
    design, target = cache.design, cache.target
    n_samples = cache.n_samples
    gram, moment = cache.gram, cache.moment
    _, inverse, beta, _ = cache._state(selected, ridge)
    idx = list(cache.indices(selected))
    rss_current = _rss(design, target, selected, ridge)
    noise_floor = 1e-9 * max(cache.target_ss, 1e-30)
    while candidates:
        if max_features is not None and len(selected) >= max_features:
            break
        if rss_current <= noise_floor:
            # the residual sits at the roundoff floor of y^T y, so
            # sweep scores are pure noise; scan every candidate exactly
            # (this only happens on the last step or two of a saturated
            # fit, so the per-candidate saving elsewhere survives)
            shortlist = range(len(candidates))
        else:
            cand = np.asarray(candidates, dtype=int) + 1
            cross = gram[np.ix_(idx, cand)]
            projected = inverse @ cross
            schur = (gram[cand, cand] + ridge -
                     np.einsum("km,km->m", cross, projected))
            positive = schur > 0
            gamma = ((moment[cand] - beta @ cross) /
                     np.where(positive, schur, 1.0))
            # objective drop per candidate, up to a candidate-
            # independent constant (the current RSS) and the
            # ridge-norm correction
            drop = (gamma ** 2 * schur - ridge *
                    (2.0 * gamma * (beta @ projected) - gamma ** 2 *
                     (np.einsum("km,km->m", projected, projected) + 1.0)))
            drop = np.where(positive, drop, -np.inf)
            top = float(np.max(drop))
            if not np.isfinite(top):
                break
            # margin covers the sweep's roundoff so the true argmin
            # (and every exact tie) lands in the shortlist;
            # flatnonzero keeps candidate order for the naive
            # engine's first-tie-wins scan
            margin = 1e-2 * abs(top) + 1e-10 * cache.target_ss
            shortlist = np.flatnonzero(drop >= top - margin)
        best = None
        best_rss = rss_current
        for short in shortlist:
            rss_new = _rss(design, target,
                           selected + [candidates[short]], ridge)
            if rss_new < best_rss:
                best_rss = rss_new
                best = int(short)
        if best is None:
            break
        dof = n_samples - len(selected) - 2
        if dof <= 0:
            break
        denom = best_rss / dof
        f_stat = (rss_current - best_rss) / denom if denom > 0 else \
            float("inf")
        if f_stat < f_threshold:
            break
        selected.append(candidates.pop(best))
        idx, inverse, beta, _ = cache._state(selected, ridge)
        idx = list(idx)
        rss_current = best_rss
    return selected


def stepwise_select(design: np.ndarray, target: np.ndarray,
                    f_threshold: float = 4.0,
                    max_features: Optional[int] = None,
                    ridge: float = 1e-8,
                    forced_features: Optional[List[int]] = None,
                    method: str = "gram") -> LinearModel:
    """Forward step-wise regression with a partial-F entry criterion.

    Starting from the intercept-only model, repeatedly adds the candidate
    column whose inclusion yields the largest partial F-statistic

        F = (RSS_old - RSS_new) / (RSS_new / (n - p - 1))

    and stops when no candidate reaches ``f_threshold`` (or
    ``max_features`` is hit).  Columns with no variance are never
    considered — exactly the pruning of non-contributing transition bits
    the paper describes.  Duplicate ``forced_features`` are dropped
    (first occurrence wins) so repeated indices cannot double-enter the
    design and skew the F-test degrees of freedom.

    ``method`` selects the search engine: ``"gram"`` (default) scores
    candidates through the precomputed Gram matrix, ``"naive"`` is the
    reference full-solve-per-candidate loop.  Both follow the identical
    greedy policy; the final model is always refitted with
    :func:`fit_linear` on the selected columns, so coefficients agree
    with the reference path whenever the selections do.
    """
    if method not in ("gram", "naive"):
        raise ConfigurationError(f"unknown step-wise method: {method!r}")
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    n_samples, n_columns = design.shape
    variances = design.var(axis=0)
    selected: List[int] = [
        col for col in _dedupe_preserving(forced_features or [])
        if variances[col] > 0]
    candidates = [col for col in range(n_columns)
                  if variances[col] > 0 and col not in selected]
    if method == "gram":
        selected = _stepwise_gram(GramCache(design, target), f_threshold,
                                  max_features, ridge, selected,
                                  candidates)
    else:
        selected = _stepwise_naive(design, target, f_threshold,
                                   max_features, ridge, selected,
                                   candidates)

    if selected:
        intercept, coef = fit_linear(design[:, selected], target, ridge)
        predictions = intercept + design[:, selected] @ coef
    else:
        intercept, coef = float(target.mean()), np.zeros(0)
        predictions = np.full_like(target, intercept)
    residuals = target - predictions
    total = target - target.mean()
    total_ss = float(total @ total)
    return LinearModel(
        intercept=intercept,
        coefficients=np.asarray(coef, dtype=float),
        features=np.asarray(selected, dtype=int),
        residual_variance=float(residuals @ residuals) /
        max(1, n_samples - len(selected) - 1),
        r_squared=1.0 - float(residuals @ residuals) / total_ss
        if total_ss > 0 else 1.0)


def fit_full(design: np.ndarray, target: np.ndarray,
             ridge: float = 1e-6,
             gram: Optional[GramCache] = None) -> LinearModel:
    """Fit using every column (no selection); for ablation comparisons.

    ``gram`` optionally reuses an existing :class:`GramCache` built for
    the same ``(design, target)`` pair so the normal equations are not
    recomputed; the solution is identical to the direct solve.
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    cache = gram if gram is not None else GramCache(design, target)
    intercept, coef = cache.solve(range(design.shape[1]), ridge)
    predictions = intercept + design @ coef
    residuals = target - predictions
    total = target - target.mean()
    total_ss = float(total @ total)
    return LinearModel(
        intercept=intercept, coefficients=coef,
        features=np.arange(design.shape[1]),
        residual_variance=float(residuals @ residuals) /
        max(1, design.shape[0] - design.shape[1] - 1),
        r_squared=1.0 - float(residuals @ residuals) / total_ss
        if total_ss > 0 else 1.0)


# ----------------------------------------------------------------------
# robust fitting (IRLS / Huber and trimmed least squares)
# ----------------------------------------------------------------------
# Corrupted probes (burst noise, drift, mis-gated amplitudes) produce
# gross outliers that ordinary least squares lets poison every
# coefficient.  The trainers use the Huber M-estimator solved by
# iteratively reweighted least squares; residuals beyond ``c`` scaled
# MADs contribute linearly instead of quadratically, so a handful of bad
# rows cannot move the fit.

_MAD_TO_SIGMA = 1.4826      # consistency factor for Gaussian residuals
_SCALE_FLOOR = 1e-12


@dataclass
class RobustFitInfo:
    """Diagnostics from one robust (IRLS or trimmed) fit."""

    method: str = "huber"
    iterations: int = 0
    converged: bool = True
    outliers_rejected: int = 0       # rows with final weight < 0.5
    total_observations: int = 0
    final_scale: float = 0.0         # robust residual scale (MAD-based)
    weights: Optional[np.ndarray] = field(default=None, repr=False)

    def describe(self) -> str:
        """One-line fitting summary for training reports."""
        return (f"{self.method}: {self.outliers_rejected}/"
                f"{self.total_observations} observations down-weighted "
                f"in {self.iterations} iterations"
                f"{'' if self.converged else ' (NOT converged)'}")


def mad_scale(residuals: np.ndarray) -> float:
    """Robust residual scale: 1.4826 * median absolute deviation."""
    residuals = np.asarray(residuals, dtype=float)
    if residuals.size == 0:
        return 0.0
    center = float(np.median(residuals))
    return _MAD_TO_SIGMA * float(np.median(np.abs(residuals - center)))


def mad_outlier_mask(values: np.ndarray, threshold: float = 6.0
                     ) -> np.ndarray:
    """Boolean mask of values further than ``threshold`` MADs from the
    median (True = outlier).  Used to screen per-stage alpha observations
    before step-wise selection."""
    values = np.asarray(values, dtype=float)
    scale = mad_scale(values)
    if scale < _SCALE_FLOOR:
        return np.zeros(values.shape, dtype=bool)
    return np.abs(values - np.median(values)) > threshold * scale


def huber_weights(residuals: np.ndarray, scale: float,
                  c: float = 1.345) -> np.ndarray:
    """Huber IRLS weights: 1 inside ``c * scale``, decaying outside."""
    residuals = np.asarray(residuals, dtype=float)
    if scale < _SCALE_FLOOR:
        return np.ones(residuals.shape)
    normalized = np.abs(residuals) / (c * scale)
    weights = np.ones(residuals.shape)
    outside = normalized > 1.0
    weights[outside] = 1.0 / normalized[outside]
    return weights


def irls_solve(matrix: np.ndarray, target: np.ndarray,
               ridge: float = 1e-6, c: float = 1.345,
               max_iter: int = 50, tol: float = 1e-8,
               base_weights: Optional[np.ndarray] = None,
               gram: Optional[np.ndarray] = None
               ) -> Tuple[np.ndarray, RobustFitInfo]:
    """Huber-IRLS solution of ``matrix @ x ~ target``.

    ``matrix`` is used as given (include an intercept column if one is
    wanted); ``base_weights`` multiply the robustness weights, so fixed
    observation weighting (e.g. the MISO pure-floor up-weighting)
    composes with outlier down-weighting.  ``gram`` optionally supplies
    a precomputed ``matrix.T @ matrix``, reused for the unweighted
    initial solve so callers that already built the normal equations
    (e.g. the joint alpha fit) skip one O(n p^2) product.  Raises
    :class:`ConvergenceError` if the iteration produces non-finite
    values; merely hitting ``max_iter`` is reported via
    ``info.converged`` instead, since the estimate is still usable.
    """
    matrix = np.asarray(matrix, dtype=float)
    target = np.asarray(target, dtype=float)
    n_rows, n_cols = matrix.shape
    base = np.ones(n_rows) if base_weights is None else \
        np.asarray(base_weights, dtype=float)

    def solve(weights: np.ndarray,
              gram_matrix: Optional[np.ndarray] = None) -> np.ndarray:
        scaled = matrix * weights[:, None]
        if gram_matrix is None:
            gram_matrix = scaled.T @ matrix
        normal = gram_matrix + ridge * np.eye(n_cols)
        return np.linalg.solve(normal, scaled.T @ target)

    solution = solve(base, gram if base_weights is None else None)
    info = RobustFitInfo(method="huber", total_observations=n_rows)
    robust = np.ones(n_rows)
    for iteration in range(1, max_iter + 1):
        residuals = target - matrix @ solution
        scale = mad_scale(residuals)
        info.final_scale = scale
        if scale < _SCALE_FLOOR:
            # residuals already (near) zero: nothing to reweight
            info.iterations = iteration
            break
        robust = huber_weights(residuals, scale, c=c)
        updated = solve(base * robust)
        if not np.all(np.isfinite(updated)):
            raise ConvergenceError(
                f"IRLS produced non-finite coefficients at iteration "
                f"{iteration}", iterations=iteration)
        shift = float(np.max(np.abs(updated - solution)))
        solution = updated
        info.iterations = iteration
        reference = float(np.max(np.abs(solution))) + 1.0
        if shift <= tol * reference:
            break
    else:
        info.converged = False
    info.weights = base * robust
    info.outliers_rejected = int(np.sum(robust < 0.5))
    return solution, info


def fit_robust(design: np.ndarray, target: np.ndarray,
               ridge: float = 1e-8, c: float = 1.345,
               max_iter: int = 50,
               weights: Optional[np.ndarray] = None
               ) -> Tuple[float, np.ndarray, RobustFitInfo]:
    """Huber-robust analogue of :func:`fit_linear`.

    Returns ``(intercept, coefficients, info)``.
    """
    design = np.asarray(design, dtype=float)
    target = np.asarray(target, dtype=float)
    augmented = np.hstack([np.ones((design.shape[0], 1)), design])
    solution, info = irls_solve(augmented, target, ridge=ridge, c=c,
                                max_iter=max_iter, base_weights=weights)
    return float(solution[0]), solution[1:], info


def fit_trimmed(design: np.ndarray, target: np.ndarray,
                trim: float = 0.1, ridge: float = 1e-8,
                rounds: int = 3) -> Tuple[float, np.ndarray,
                                          RobustFitInfo]:
    """Trimmed least squares: iteratively drop the worst residuals.

    Each round refits on the (1 - ``trim``) fraction of observations
    with the smallest absolute residuals — a blunter alternative to
    IRLS, useful when corruption is heavy-tailed rather than smooth.
    The per-round refits reuse one :class:`GramCache`, downdating the
    full normal equations by the dropped rows instead of re-scanning
    the kept data each round.
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim fraction must be in [0, 0.5): {trim!r}")
    cache = GramCache(design, target)
    design, target = cache.design, cache.target
    n_rows = cache.n_samples
    keep = np.ones(n_rows, dtype=bool)
    intercept, coef = cache.solve(range(design.shape[1]), ridge)
    kept_rows = n_rows
    info = RobustFitInfo(method="trimmed", total_observations=n_rows)
    for round_index in range(1, rounds + 1):
        residuals = np.abs(target - (intercept + design @ coef))
        kept_rows = max(design.shape[1] + 2,
                        int(np.ceil((1.0 - trim) * n_rows)))
        threshold = np.partition(residuals, kept_rows - 1)[kept_rows - 1]
        keep = residuals <= threshold
        intercept, coef = cache.solve_rows(keep, ridge)
        info.iterations = round_index
    info.outliers_rejected = int(n_rows - keep.sum())
    info.weights = keep.astype(float)
    residuals = target[keep] - (intercept + design[keep] @ coef)
    info.final_scale = mad_scale(residuals)
    return float(intercept), coef, info
