"""The EMSim facade: program in, simulated EM side-channel signal out.

Integrates the trained :class:`~repro.core.model.EMSimModel` with the
cycle-accurate core — the paper's vision of EMSim "integrated into a
cycle-accurate simulator" usable by hardware/software/compiler developers
without any measurement equipment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..isa.program import Program
from ..profiling import get_profiler
from ..robustness.errors import ConfigurationError
from ..signal.reconstruction import reconstruct
from ..uarch.config import CoreConfig, DEFAULT_CONFIG
from ..uarch.oracle import collect_oracle
from ..uarch.pipeline import Pipeline
from ..uarch.trace import ActivityTrace
from .config import ModelSwitches
from .model import EMSimModel


@dataclass
class SimulatedSignal:
    """EMSim output for one program run."""

    amplitudes: np.ndarray        # per-cycle predicted amplitudes X[n]
    signal: np.ndarray            # reconstructed analog waveform
    trace: ActivityTrace
    samples_per_cycle: int

    @property
    def num_cycles(self) -> int:
        """Simulated clock cycles."""
        return len(self.amplitudes)


class EMSim:
    """A trained EM side-channel simulator for one device design."""

    def __init__(self, model: EMSimModel,
                 core_config: CoreConfig = DEFAULT_CONFIG,
                 switches: Optional[ModelSwitches] = None,
                 core_kind: str = "in-order"):
        if core_kind not in ("in-order", "out-of-order"):
            raise ConfigurationError(f"unknown core kind: {core_kind!r}")
        self.model = model
        self.core_config = core_config
        self.switches = switches or model.config.switches
        self.core_kind = core_kind

    # ------------------------------------------------------------------
    def _effective_core_config(self) -> CoreConfig:
        """Core configuration as seen by the (possibly ablated) model.

        Disabling cache modeling means EMSim's internal timing model
        believes every access is a hit (Fig. 6 bottom); misprediction
        modeling off means EMSim's fetch is oracle-perfect (Fig. 7).
        """
        config = self.core_config
        if not self.switches.model_cache:
            config = replace(config,
                             cache=replace(config.cache,
                                           miss_extra_cycles=0))
        return config

    def run_trace(self, program: Program,
                  max_cycles: Optional[int] = None) -> ActivityTrace:
        """Run the program on EMSim's internal microarchitecture model.

        Traces are served from the content-addressed trace cache: the
        key covers the *effective* (ablation-adjusted) core config plus
        the mispredict-ablation flag, so each switch combination caches
        independently and ablation sweeps never cross-contaminate.
        """
        from .trace_cache import get_trace_cache
        config = self._effective_core_config()
        salt = f"sim:mispredicts={self.switches.model_mispredicts}"

        def runner() -> ActivityTrace:
            with get_profiler().phase("sim.trace"):
                return self._run_trace_uncached(program, config,
                                                max_cycles)

        return get_trace_cache().get_or_run(
            program, config, runner, core_kind=self.core_kind,
            max_cycles=max_cycles, salt=salt, category="sim")

    def _run_trace_uncached(self, program: Program, config: CoreConfig,
                            max_cycles: Optional[int]) -> ActivityTrace:
        """The actual core execution behind :meth:`run_trace`."""
        if self.core_kind == "out-of-order":
            from ..uarch.ooo import OutOfOrderCore
            if not self.switches.model_mispredicts:
                raise ConfigurationError(
                    "the no-mispredict ablation is only implemented "
                    "for the in-order core")
            core = OutOfOrderCore(program, config=config)
            return core.run(max_cycles=max_cycles)
        oracle = None
        if not self.switches.model_mispredicts:
            oracle = collect_oracle(program)
        core = Pipeline(program, config=config, oracle=oracle)
        return core.run(max_cycles=max_cycles)

    def simulate_trace(self, trace: ActivityTrace) -> SimulatedSignal:
        """Predict the signal for an existing activity trace."""
        profiler = get_profiler()
        with profiler.phase("sim.predict"):
            amplitudes = self.model.predict_cycle_amplitudes(
                trace, switches=self.switches)
        samples_per_cycle = self.model.config.samples_per_cycle
        with profiler.phase("sim.reconstruct"):
            signal = reconstruct(amplitudes, self.model.config.kernel,
                                 samples_per_cycle)
        return SimulatedSignal(amplitudes=amplitudes, signal=signal,
                               trace=trace,
                               samples_per_cycle=samples_per_cycle)

    def simulate(self, program: Program,
                 max_cycles: Optional[int] = None) -> SimulatedSignal:
        """Full flow: execute the program, predict its EM signal."""
        return self.simulate_trace(self.run_trace(program,
                                                  max_cycles=max_cycles))

    def simulate_many(self, programs: Sequence[Program],
                      max_cycles: Optional[int] = None,
                      workers: int = 1) -> List["SimulatedSignal"]:
        """Simulate many programs through the batched fan-out engine.

        Convenience wrapper around
        :class:`~repro.core.batch.BatchSimulator`: traces and per-cycle
        amplitude predictions run per program (optionally on a worker
        pool), and the waveform reconstructions share one cached kernel
        response.  Results are in input order and numerically identical
        to calling :meth:`simulate` per program.
        """
        from .batch import BatchSimulator
        return BatchSimulator(self, workers=workers).simulate_many(
            programs, max_cycles=max_cycles)

    def with_switches(self, **flags: bool) -> "EMSim":
        """A variant simulator with some model switches toggled."""
        return EMSim(self.model, core_config=self.core_config,
                     switches=replace(self.switches, **flags),
                     core_kind=self.core_kind)
