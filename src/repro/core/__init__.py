"""EMSim core: model, training, clustering, microbenchmarks, simulator."""

from .ablations import ABLATIONS, all_simulators, make_simulator
from .activity import (average_alpha, stage_class_labels,
                       stage_flip_counts, stage_transition_matrices)
from .batch import BatchSimulator, CampaignProbe, measurement_campaign
from .clustering import (ClusterResult, agglomerative_cluster,
                         cluster_instruction_signatures,
                         signature_distance, signature_distance_matrix)
from .config import EMSimConfig, FULL_MODEL, ModelSwitches
from .factors import (ActivityFactorModel, AverageActivity,
                      RegressionActivity, UnitActivity)
from .microbench import (CLASS_MEMBERS, REPRESENTATIVES, all_combinations,
                         combination_group, coverage_groups,
                         double_load_probe, isolation_probe, pair_probe,
                         probe_instruction_seq, repeat_probe,
                         warmed_branch_probe)
from .model import EMSimModel
from .persistence import (load_model, model_from_dict, model_to_dict,
                          save_model)
from .regression import (GramCache, LinearModel, RobustFitInfo, fit_full,
                         fit_linear, fit_robust, fit_trimmed, irls_solve,
                         mad_outlier_mask, stepwise_select)
from .simulator import EMSim, SimulatedSignal
from .trace_cache import (CacheStats, TraceCache, configure_trace_cache,
                          get_trace_cache, trace_cache_disabled, trace_key)
from .training import (Trainer, TrainingReport, fit_beta, fit_kernel,
                       train_emsim)

__all__ = [
    "ABLATIONS",
    "ActivityFactorModel",
    "AverageActivity",
    "BatchSimulator",
    "CLASS_MEMBERS",
    "CacheStats",
    "CampaignProbe",
    "ClusterResult",
    "EMSim",
    "EMSimConfig",
    "EMSimModel",
    "FULL_MODEL",
    "GramCache",
    "LinearModel",
    "ModelSwitches",
    "REPRESENTATIVES",
    "RegressionActivity",
    "RobustFitInfo",
    "SimulatedSignal",
    "TraceCache",
    "Trainer",
    "TrainingReport",
    "UnitActivity",
    "agglomerative_cluster",
    "all_combinations",
    "all_simulators",
    "average_alpha",
    "cluster_instruction_signatures",
    "combination_group",
    "configure_trace_cache",
    "coverage_groups",
    "double_load_probe",
    "fit_beta",
    "fit_full",
    "fit_kernel",
    "fit_linear",
    "fit_robust",
    "fit_trimmed",
    "get_trace_cache",
    "irls_solve",
    "isolation_probe",
    "load_model",
    "mad_outlier_mask",
    "make_simulator",
    "measurement_campaign",
    "model_from_dict",
    "model_to_dict",
    "pair_probe",
    "save_model",
    "probe_instruction_seq",
    "repeat_probe",
    "warmed_branch_probe",
    "signature_distance",
    "signature_distance_matrix",
    "stage_class_labels",
    "stage_flip_counts",
    "stage_transition_matrices",
    "stepwise_select",
    "trace_cache_disabled",
    "trace_key",
    "train_emsim",
]
