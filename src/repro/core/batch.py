"""Batched, parallel fan-out for simulation and measurement campaigns.

Two campaign shapes dominate this codebase:

* **re-simulation** — run many programs through EMSim's
  trace -> amplitude -> reconstruction flow (accuracy sweeps, SAVAT,
  ablation studies);
* **measurement** — capture many probe programs on a device bench and
  deconvolve their per-cycle amplitudes (model training, TVLA corpora).

:class:`BatchSimulator` and :func:`measurement_campaign` run both as a
single ordered fan-out over :func:`~repro.parallel.parallel_map`: items
are chunked over a process pool when ``workers > 1`` (falling back to an
in-process loop on single-CPU machines), every item is reseeded from
``(campaign seed, item index)`` so results never depend on worker count
or scheduling, and the per-item hot loops go through the batched engine
(the emitter's lag-factored fast evaluator, the cached kernel response,
and the cached multi-RHS deconvolver).

Numerical contract: batched campaign results agree with the sequential
path (``workers=1``) to well inside 1e-9 max abs difference; the
re-simulation fan-out is bit-identical.

Both fan-outs sit on top of the content-addressed trace cache
(:mod:`repro.core.trace_cache`): ``EMSim.run_trace`` and the device's
``run_trace``/``capture_reference`` serve repeated (program, config)
pairs from cache, so campaigns that replay a corpus — or repeat
programs within one — skip the pipeline re-execution.  Worker processes
each hold their own process-local cache (the parent's entries are
inherited by fork at spawn time); determinism is unaffected because
cached traces are bit-identical to fresh runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..hardware.device import HardwareDevice
from ..isa.program import Program
from ..observability import get_metrics, get_tracer, record_campaign
from ..parallel import (CampaignLedger, parallel_map, resolve_workers,
                        spawn_seed, supervised_map)
from ..profiling import get_profiler, monotonic
from ..robustness.checkpoint import CheckpointJournal
from ..robustness.errors import CampaignError
from ..robustness.health import CaptureQuality
from ..signal.kernels import DEFAULT_KERNEL, Kernel
from ..signal.reconstruction import (batch_estimate_cycle_amplitudes,
                                     batch_reconstruct,
                                     estimate_cycle_amplitudes)
from .simulator import EMSim, SimulatedSignal
from .trace_cache import trace_key

__all__ = ["BatchSimulator", "CampaignProbe", "campaign_probe_key",
           "measurement_campaign", "supervised_campaign"]


# Per-process worker state, installed by the pool initializer.  With the
# fork start method the initargs are inherited by memory, so even heavy
# objects (a device bench, a trained simulator) cost nothing to install.
_WORKER_STATE: dict = {}


# ---------------------------------------------------------------------------
# batched re-simulation
# ---------------------------------------------------------------------------
def _simulate_init(simulator: EMSim, max_cycles: Optional[int]) -> None:
    """Install the simulator in a pool worker (or the in-process loop)."""
    _WORKER_STATE["simulator"] = simulator
    _WORKER_STATE["max_cycles"] = max_cycles


def _simulate_item(item):
    """Trace + amplitude prediction for one indexed program.

    Reconstruction is deliberately left to the parent so all programs
    share one cached kernel response (and the waveforms never cross the
    process boundary twice).
    """
    _, program = item
    simulator: EMSim = _WORKER_STATE["simulator"]
    trace = simulator.run_trace(program,
                                max_cycles=_WORKER_STATE["max_cycles"])
    amplitudes = simulator.model.predict_cycle_amplitudes(
        trace, switches=simulator.switches)
    return trace, amplitudes


class BatchSimulator:
    """Runs many programs through one :class:`~repro.core.simulator.EMSim`.

    The fan-out covers the full trace -> amplitude -> reconstruction
    flow: traces and per-cycle amplitude predictions run per program
    (optionally on a worker pool), and all waveform reconstructions
    share a single cached kernel response.  Results come back in input
    order and are **bit-identical** to calling
    :meth:`~repro.core.simulator.EMSim.simulate` once per program — the
    amplitude predictor is exactly the sequential one and the batch
    reconstruction performs the same per-trace convolution.
    """

    def __init__(self, simulator: EMSim, workers: int = 1,
                 item_timeout: Optional[float] = None,
                 max_item_retries: int = 0):
        self.simulator = simulator
        self.workers = workers
        self.item_timeout = item_timeout
        self.max_item_retries = max_item_retries

    def simulate_many(self, programs: Sequence,
                      max_cycles: Optional[int] = None
                      ) -> List[SimulatedSignal]:
        """Simulate every program; returns results in input order."""
        programs = list(programs)
        profiler = get_profiler()
        with get_tracer().span("batch.simulate_many",
                               programs=len(programs),
                               workers=self.workers):
            results = parallel_map(
                _simulate_item, list(enumerate(programs)),
                workers=self.workers,
                initializer=_simulate_init,
                initargs=(self.simulator, max_cycles),
                timeout=self.item_timeout,
                max_item_retries=self.max_item_retries)
            model = self.simulator.model
            samples_per_cycle = model.config.samples_per_cycle
            signals = batch_reconstruct(
                [amplitudes for _, amplitudes in results],
                model.config.kernel, samples_per_cycle)
        profiler.count("batch.programs", len(programs))
        return [SimulatedSignal(amplitudes=amplitudes, signal=signal,
                                trace=trace,
                                samples_per_cycle=samples_per_cycle)
                for (trace, amplitudes), signal in zip(results, signals)]


# ---------------------------------------------------------------------------
# batched measurement campaigns
# ---------------------------------------------------------------------------
@dataclass
class CampaignProbe:
    """One probe's result from a measurement campaign.

    Carries the folded reference and its deconvolved per-cycle
    amplitudes but deliberately *not* the activity trace — campaign
    consumers (benchmarks, leakage sweeps) work on signals, and traces
    are the costly part of shipping results across process boundaries.
    """

    index: int
    program_name: str
    signal: np.ndarray
    amplitudes: np.ndarray
    quality: Optional[CaptureQuality] = None
    capture_seconds: float = 0.0
    deconvolve_seconds: float = 0.0


def _campaign_init(device, seed: int, repetitions: int,
                   max_cycles: Optional[int], kernel: Kernel,
                   samples_per_cycle: int, batched: bool) -> None:
    """Install per-process campaign state."""
    _WORKER_STATE.update(
        device=device, seed=seed, repetitions=repetitions,
        max_cycles=max_cycles, kernel=kernel,
        samples_per_cycle=samples_per_cycle, batched=batched)


def _campaign_item(item) -> CampaignProbe:
    """Capture + deconvolve one indexed probe program.

    The device RNG and (if present) the fault injector are reseeded
    from ``(campaign seed, probe index)`` before the capture, so the
    probe's result is a pure function of the campaign seed and its
    position — independent of worker count, chunking, or who captured
    the previous probe.
    """
    index, program = item
    device = _WORKER_STATE["device"]
    seed = _WORKER_STATE["seed"]
    device.rng = spawn_seed(seed, index)
    injector = getattr(device, "fault_injector", None)
    if injector is not None:
        injector.reseed(spawn_seed(seed, index, stream=1))
    batched = _WORKER_STATE["batched"]
    start = monotonic()
    measurement = device.capture_reference(
        program, repetitions=_WORKER_STATE["repetitions"],
        max_cycles=_WORKER_STATE["max_cycles"], batched=batched)
    captured = monotonic()
    kernel = _WORKER_STATE["kernel"]
    samples_per_cycle = _WORKER_STATE["samples_per_cycle"]
    if batched:
        amplitudes = batch_estimate_cycle_amplitudes(
            [measurement.signal], kernel, samples_per_cycle)[0]
    else:
        amplitudes = estimate_cycle_amplitudes(
            measurement.signal, kernel, samples_per_cycle)
    done = monotonic()
    return CampaignProbe(index=index, program_name=measurement.program_name,
                         signal=measurement.signal, amplitudes=amplitudes,
                         quality=measurement.quality,
                         capture_seconds=captured - start,
                         deconvolve_seconds=done - captured)


def campaign_probe_key(device: HardwareDevice, program: Program,
                       index: int, seed: int, repetitions: int,
                       kernel: Kernel, samples_per_cycle: int,
                       max_cycles: Optional[int], batched: bool) -> str:
    """Checkpoint key for one campaign probe.

    Built on :func:`~repro.core.trace_cache.trace_key` — the same
    content hash the trace cache uses for the program/config pair —
    salted with everything else that determines the probe's result:
    campaign seed, probe index, repetition count, kernel, sample rate,
    engine choice, and the device's emitter digest.  A resumed campaign
    therefore only reuses a journaled probe when rerunning it would be
    bit-identical anyway.
    """
    salt = (f"campaign:{seed}:{index}:{repetitions}:{kernel!r}:"
            f"{samples_per_cycle}:{batched}:{device.name}:"
            f"{device._emitter_digest}")
    return trace_key(program, device.core_config,
                     core_kind=device.core_kind, max_cycles=max_cycles,
                     salt=salt)


def supervised_campaign(device: HardwareDevice,
                        programs: Sequence[Program],
                        repetitions: int = 50,
                        workers: int = 1,
                        seed: int = 0,
                        kernel: Kernel = DEFAULT_KERNEL,
                        samples_per_cycle: Optional[int] = None,
                        max_cycles: Optional[int] = None,
                        item_timeout: Optional[float] = None,
                        max_item_retries: int = 2,
                        journal: Optional[CheckpointJournal] = None,
                        ) -> "tuple[List[Optional[CampaignProbe]], CampaignLedger]":
    """Supervised measurement campaign: ``(probes, ledger)``.

    The crash-safe core of :func:`measurement_campaign`: probes fan out
    through :func:`~repro.parallel.supervised_map`, so hung workers are
    killed at ``item_timeout``, crashed workers indict only the probe
    they were running, failures retry with seeded backoff, and probes
    that exhaust ``max_item_retries`` leave a ``None`` slot plus a
    ledger row instead of sinking the campaign.  With a ``journal``,
    completed probes are checkpointed under :func:`campaign_probe_key`
    and a resumed run replays them bit-identically without capturing.
    """
    programs = list(programs)
    effective = resolve_workers(workers)
    batched = effective > 1
    if samples_per_cycle is None:
        samples_per_cycle = device.samples_per_cycle

    def key_for(index: int, item) -> str:
        _, program = item
        return campaign_probe_key(device, program, index, seed,
                                  repetitions, kernel, samples_per_cycle,
                                  max_cycles, batched)

    meta = {"campaign": "measurement", "device": device.name,
            "seed": int(seed), "repetitions": int(repetitions),
            "programs": len(programs), "workers": effective}
    with record_campaign("measurement", meta) as recording:
        with get_tracer().span("campaign.measurement",
                               programs=len(programs), workers=effective):
            probes, ledger = supervised_map(
                _campaign_item, list(enumerate(programs)),
                workers=workers,
                initializer=_campaign_init,
                initargs=(device, seed, repetitions, max_cycles, kernel,
                          samples_per_cycle, batched),
                timeout=item_timeout,
                max_item_retries=max_item_retries,
                seed=seed,
                journal=journal,
                key_for=key_for if journal is not None else None)
        recording.ledger(ledger)
        recording.checkpoint(getattr(journal, "path", None))
    profiler = get_profiler()
    registry = get_metrics()
    for probe in probes:
        if probe is None:
            continue
        profiler.add_phase("campaign.capture", probe.capture_seconds)
        profiler.add_phase("campaign.deconvolve", probe.deconvolve_seconds)
        registry.observe("campaign.capture_seconds",
                         probe.capture_seconds)
        registry.observe("campaign.deconvolve_seconds",
                         probe.deconvolve_seconds)
    profiler.count("campaign.programs", len(probes))
    return probes, ledger


def measurement_campaign(device: HardwareDevice,
                         programs: Sequence[Program],
                         repetitions: int = 50,
                         workers: int = 1,
                         seed: int = 0,
                         kernel: Kernel = DEFAULT_KERNEL,
                         samples_per_cycle: Optional[int] = None,
                         max_cycles: Optional[int] = None,
                         item_timeout: Optional[float] = None,
                         max_item_retries: int = 2,
                         checkpoint: Optional[str] = None,
                         resume: bool = False) -> List[CampaignProbe]:
    """Capture and deconvolve every program on a device bench.

    The campaign primitive behind ``repro bench``: each probe runs the
    scope+modulo reference capture and a per-cycle amplitude
    deconvolution, with per-probe deterministic reseeding (see
    :func:`_campaign_item`).

    ``workers=1`` is the sequential baseline: the legacy per-repetition
    capture loop and the uncached deconvolver, one probe at a time.
    ``workers > 1`` switches to the batched engine — the emitter's fast
    evaluator, the vectorized repetition fold, and the cached multi-RHS
    deconvolver — and fans the probes out over (up to) that many worker
    processes; on machines with fewer CPUs the pool shrinks to the CPU
    count (a single-CPU machine runs the batched engine in-process,
    which is where most of the speedup lives anyway).  Because both
    engines reseed identically per probe, results differ only by the
    batched engine's floating-point reordering: max abs difference is
    well inside 1e-9.

    Supervision (see :func:`supervised_campaign` for the mechanics):
    ``item_timeout`` bounds each probe's wall clock, failed probes
    retry up to ``max_item_retries`` times with seeded backoff, and
    ``checkpoint`` names a journal file that makes the campaign
    resumable (``resume=True`` replays completed probes from it).
    This function needs *every* probe, so items still missing after
    supervision raise :class:`~repro.robustness.errors.CampaignError`
    (exit code 18) naming the quarantined indices.
    """
    programs = list(programs)  # generators must not be consumed twice
    if checkpoint is not None:
        meta = {"campaign": "measurement", "device": device.name,
                "seed": int(seed), "repetitions": int(repetitions),
                "programs": len(programs)}
        with CheckpointJournal(checkpoint, meta=meta,
                               resume=resume) as journal:
            with journal.guarded():
                probes, ledger = supervised_campaign(
                    device, programs, repetitions=repetitions,
                    workers=workers, seed=seed, kernel=kernel,
                    samples_per_cycle=samples_per_cycle,
                    max_cycles=max_cycles, item_timeout=item_timeout,
                    max_item_retries=max_item_retries, journal=journal)
    else:
        probes, ledger = supervised_campaign(
            device, programs, repetitions=repetitions, workers=workers,
            seed=seed, kernel=kernel,
            samples_per_cycle=samples_per_cycle, max_cycles=max_cycles,
            item_timeout=item_timeout,
            max_item_retries=max_item_retries)
    if not ledger.complete:
        raise CampaignError(
            f"measurement campaign lost {len(ledger.quarantined)} of "
            f"{len(probes)} probes ({ledger.summary()})",
            quarantined=ledger.quarantined)
    return probes
