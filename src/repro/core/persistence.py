"""Saving and loading trained EMSim models.

The paper envisions trained parameters being distributed "as a library
(similar to that of for other properties such as power, timing, etc.)" —
trained once per board, then reused by developers without measurement
hardware.  Models serialize to a single JSON document.

Because a model library outlives the machine that trained it, the file
format is defensive: saves are atomic (a crash mid-write leaves the old
file intact), every document carries a ``format_version`` plus a SHA-256
payload checksum, and any corruption — truncation, tampering, garbage —
surfaces as a :class:`~repro.robustness.errors.ModelFormatError` naming
the file and the reason instead of a bare JSON traceback.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from typing import Any, Dict

import numpy as np

from ..robustness.errors import ModelFormatError
from ..signal.kernels import DampedSineKernel
from .config import EMSimConfig, ModelSwitches
from .factors import AverageActivity, RegressionActivity
from .model import EMSimModel
from .regression import LinearModel

FORMAT_VERSION = 2
"""Version 2 adds the ``checksum`` integrity field; version-1 documents
(no checksum) are still accepted for backward compatibility."""

SUPPORTED_VERSIONS = (1, 2)

_REQUIRED_FIELDS = ("config", "amplitudes", "floors", "miso", "intercept",
                    "nop_level", "beta", "alpha_models", "base_flips")


def _linear_model_to_dict(model: LinearModel) -> Dict[str, Any]:
    return {
        "intercept": model.intercept,
        "coefficients": np.asarray(model.coefficients).tolist(),
        "features": np.asarray(model.features).tolist(),
        "residual_variance": model.residual_variance,
        "r_squared": model.r_squared,
    }


def _linear_model_from_dict(data: Dict[str, Any]) -> LinearModel:
    return LinearModel(
        intercept=float(data["intercept"]),
        coefficients=np.asarray(data["coefficients"], dtype=float),
        features=np.asarray(data["features"], dtype=int),
        residual_variance=float(data.get("residual_variance", 0.0)),
        r_squared=float(data.get("r_squared", 0.0)))


def payload_checksum(data: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON payload, ``checksum`` excluded.

    Canonical means sorted keys and no whitespace, so the digest is
    stable across pretty-printing and key-ordering differences.
    """
    payload = {key: value for key, value in data.items()
               if key != "checksum"}
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def model_to_dict(model: EMSimModel) -> Dict[str, Any]:
    """Serialize a trained model to plain JSON-safe data."""
    kernel = model.config.kernel
    data = {
        "format_version": FORMAT_VERSION,
        "trained_on": model.trained_on,
        "config": {
            "samples_per_cycle": model.config.samples_per_cycle,
            "kernel": {"t0": kernel.t0, "theta": kernel.theta,
                       "phase": getattr(kernel, "phase", 0.0)},
            "stepwise_f_threshold": model.config.stepwise_f_threshold,
            "stepwise_max_features": model.config.stepwise_max_features,
        },
        "amplitudes": [{"cls": cls, "stage": stage, "value": value}
                       for (cls, stage), value in
                       sorted(model.amplitudes.items())],
        "floors": model.floors,
        "miso": model.miso,
        "intercept": model.intercept,
        "nop_level": model.nop_level,
        "beta": model.beta,
        "alpha_models": {stage: _linear_model_to_dict(linear)
                         for stage, linear in
                         model.regression_activity.models.items()},
        "base_flips": model.average_activity.base_flips,
    }
    data["checksum"] = payload_checksum(data)
    return data


def model_from_dict(data: Dict[str, Any],
                    path: str = "<memory>") -> EMSimModel:
    """Rebuild a trained model from :func:`model_to_dict` output.

    ``path`` is only used for error messages; pass the source filename
    when loading from disk so corruption reports name the file.
    """
    if not isinstance(data, dict):
        raise ModelFormatError(
            f"expected a JSON object, got {type(data).__name__}",
            path=path)
    version = data.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ModelFormatError(
            f"unsupported model format: {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})",
            path=path)
    stored = data.get("checksum")
    if stored is not None:
        expected = payload_checksum(data)
        if stored != expected:
            raise ModelFormatError(
                f"checksum mismatch (stored {stored[:12]}…, computed "
                f"{expected[:12]}…) — file is corrupt or was edited",
                path=path)
    elif version >= 2:
        raise ModelFormatError(
            "format version 2 document has no checksum field "
            "(truncated or hand-edited?)", path=path)
    missing = [field for field in _REQUIRED_FIELDS if field not in data]
    if missing:
        raise ModelFormatError(
            f"missing required fields: {', '.join(missing)}", path=path)
    try:
        config_data = data["config"]
        config = EMSimConfig(
            samples_per_cycle=int(config_data["samples_per_cycle"]),
            kernel=DampedSineKernel(**config_data["kernel"]),
            switches=ModelSwitches(),
            stepwise_f_threshold=float(config_data["stepwise_f_threshold"]),
            stepwise_max_features=int(
                config_data["stepwise_max_features"]))
        return EMSimModel(
            config=config,
            amplitudes={(entry["cls"], entry["stage"]):
                        float(entry["value"])
                        for entry in data["amplitudes"]},
            floors={stage: float(value)
                    for stage, value in data["floors"].items()},
            miso={stage: float(value)
                  for stage, value in data["miso"].items()},
            intercept=float(data["intercept"]),
            nop_level=float(data["nop_level"]),
            beta={stage: float(value)
                  for stage, value in data["beta"].items()},
            regression_activity=RegressionActivity(models={
                stage: _linear_model_from_dict(linear)
                for stage, linear in data["alpha_models"].items()}),
            average_activity=AverageActivity(base_flips={
                stage: float(value)
                for stage, value in data["base_flips"].items()}),
            trained_on=str(data.get("trained_on", "")))
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(f"malformed field: {exc}",
                               path=path) from exc


def save_model(model: EMSimModel, path: str) -> None:
    """Write a trained model to ``path`` as JSON, atomically.

    The document is written to a temporary file in the destination
    directory, fsynced, then renamed over ``path`` — a crash at any
    point leaves either the previous file or none, never a truncated
    one.
    """
    data = model_to_dict(model)
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(data, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise


def load_model(path: str) -> EMSimModel:
    """Load a trained model previously written by :func:`save_model`.

    Raises :class:`~repro.robustness.errors.ModelFormatError` (naming
    the file and the reason) on unreadable, truncated, tampered, or
    otherwise invalid documents.
    """
    try:
        with open(path) as handle:
            raw = handle.read()
    except OSError as exc:
        raise ModelFormatError(f"cannot read file: {exc.strerror}",
                               path=path) from exc
    if not raw.strip():
        raise ModelFormatError("file is empty", path=path)
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ModelFormatError(
            f"invalid JSON at line {exc.lineno}, column {exc.colno}: "
            f"{exc.msg} (truncated write?)", path=path) from exc
    return model_from_dict(data, path=path)
