"""Saving and loading trained EMSim models.

The paper envisions trained parameters being distributed "as a library
(similar to that of for other properties such as power, timing, etc.)" —
trained once per board, then reused by developers without measurement
hardware.  Models serialize to a single JSON document.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from ..signal.kernels import DampedSineKernel
from .config import EMSimConfig, ModelSwitches
from .factors import AverageActivity, RegressionActivity
from .model import EMSimModel
from .regression import LinearModel

FORMAT_VERSION = 1


def _linear_model_to_dict(model: LinearModel) -> Dict[str, Any]:
    return {
        "intercept": model.intercept,
        "coefficients": np.asarray(model.coefficients).tolist(),
        "features": np.asarray(model.features).tolist(),
        "residual_variance": model.residual_variance,
        "r_squared": model.r_squared,
    }


def _linear_model_from_dict(data: Dict[str, Any]) -> LinearModel:
    return LinearModel(
        intercept=float(data["intercept"]),
        coefficients=np.asarray(data["coefficients"], dtype=float),
        features=np.asarray(data["features"], dtype=int),
        residual_variance=float(data.get("residual_variance", 0.0)),
        r_squared=float(data.get("r_squared", 0.0)))


def model_to_dict(model: EMSimModel) -> Dict[str, Any]:
    """Serialize a trained model to plain JSON-safe data."""
    kernel = model.config.kernel
    return {
        "format_version": FORMAT_VERSION,
        "trained_on": model.trained_on,
        "config": {
            "samples_per_cycle": model.config.samples_per_cycle,
            "kernel": {"t0": kernel.t0, "theta": kernel.theta,
                       "phase": getattr(kernel, "phase", 0.0)},
            "stepwise_f_threshold": model.config.stepwise_f_threshold,
            "stepwise_max_features": model.config.stepwise_max_features,
        },
        "amplitudes": [{"cls": cls, "stage": stage, "value": value}
                       for (cls, stage), value in
                       sorted(model.amplitudes.items())],
        "floors": model.floors,
        "miso": model.miso,
        "intercept": model.intercept,
        "nop_level": model.nop_level,
        "beta": model.beta,
        "alpha_models": {stage: _linear_model_to_dict(linear)
                         for stage, linear in
                         model.regression_activity.models.items()},
        "base_flips": model.average_activity.base_flips,
    }


def model_from_dict(data: Dict[str, Any]) -> EMSimModel:
    """Rebuild a trained model from :func:`model_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported model format: "
                         f"{data.get('format_version')!r}")
    config_data = data["config"]
    config = EMSimConfig(
        samples_per_cycle=int(config_data["samples_per_cycle"]),
        kernel=DampedSineKernel(**config_data["kernel"]),
        switches=ModelSwitches(),
        stepwise_f_threshold=float(config_data["stepwise_f_threshold"]),
        stepwise_max_features=int(config_data["stepwise_max_features"]))
    return EMSimModel(
        config=config,
        amplitudes={(entry["cls"], entry["stage"]): float(entry["value"])
                    for entry in data["amplitudes"]},
        floors={stage: float(value)
                for stage, value in data["floors"].items()},
        miso={stage: float(value)
              for stage, value in data["miso"].items()},
        intercept=float(data["intercept"]),
        nop_level=float(data["nop_level"]),
        beta={stage: float(value)
              for stage, value in data["beta"].items()},
        regression_activity=RegressionActivity(models={
            stage: _linear_model_from_dict(linear)
            for stage, linear in data["alpha_models"].items()}),
        average_activity=AverageActivity(base_flips={
            stage: float(value)
            for stage, value in data["base_flips"].items()}),
        trained_on=str(data.get("trained_on", "")))


def save_model(model: EMSimModel, path: str) -> None:
    """Write a trained model to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(model_to_dict(model), handle, indent=1)


def load_model(path: str) -> EMSimModel:
    """Load a trained model previously written by :func:`save_model`."""
    with open(path) as handle:
        return model_from_dict(json.load(handle))
