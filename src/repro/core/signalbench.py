"""Measurement core for ``repro bench --mode signal``.

Times the streaming signal-analytics engine against the seed's direct
paths on three axes, matching the acceptance floors in
docs/architecture.md ("Signal fast path"):

* **synthesis** — the planned overlap-add/FFT engine vs the direct
  ``np.convolve`` oracle on a >= 4096-cycle trace, floor **3x**;
* **deconvolution** — a cold banded-Cholesky batch estimate vs a cold
  legacy sparse-LU rebuild (geometry caches cleared for *both* arms
  every repetition), floor **2x**;
* **TVLA memory** — peak traced allocation of a streaming Welford
  assessment vs the batch materialize-then-test path over the same
  2048-trace campaign, floor **5x** smaller.

Every ratio is gated on agreement first: the engine's synthesis and
amplitude estimates must match their oracles to within 1e-9, and the
streaming t-values must match the batch Welch statistic to within
1e-9, before any timing is reported — the speedups can never come from
computing something different.  Both the CLI bench and
``benchmarks/test_perf_signal.py`` call :func:`run_signal_bench`.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Dict, Tuple

import numpy as np

from ..leakage.streaming import StreamingTTest
from ..leakage.tvla import welch_t_statistic
from ..signal.kernels import DampedSineKernel
from ..signal.reconstruction import (batch_estimate_cycle_amplitudes,
                                     clear_plan_caches, reconstruct)
from .tracebench import _paired_best


def _campaign_trace(seed: int, samples: int, fixed: bool) -> np.ndarray:
    """One deterministic synthetic campaign trace.

    Fixed-group traces share a data-dependent ridge on top of the
    common carrier, so the assessment has genuine leakage to find; the
    generator owns no state between calls, which is what lets the
    streaming arm run without retaining traces.
    """
    rng = np.random.default_rng(seed)
    carrier = np.sin(np.linspace(0.0, 40.0, samples))
    trace = carrier + 0.35 * rng.standard_normal(samples)
    if fixed:
        trace[samples // 3::7] += 0.08
    return trace


def _tvla_batch(traces: int, samples: int) -> np.ndarray:
    """Batch arm: materialize both trace groups, then one Welch test."""
    fixed = np.vstack([_campaign_trace(seed, samples, True)
                       for seed in range(traces)])
    random = np.vstack([_campaign_trace(traces + seed, samples, False)
                        for seed in range(traces)])
    return welch_t_statistic(fixed, random)


def _tvla_streaming(traces: int, samples: int) -> np.ndarray:
    """Streaming arm: fold each trace as generated, retain none."""
    accumulator = StreamingTTest()
    for seed in range(traces):
        accumulator.add_fixed(_campaign_trace(seed, samples, True))
    for seed in range(traces):
        accumulator.add_random(
            _campaign_trace(traces + seed, samples, False))
    return accumulator.t_values()


def _traced_peak(function) -> Tuple[Any, int]:
    """Run ``function`` under tracemalloc; return (result, peak bytes)."""
    tracemalloc.start()
    try:
        result = function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def run_signal_bench(cycles: int = 4096,
                     deconv_traces: int = 24,
                     deconv_cycles: int = 256,
                     tvla_traces: int = 1024,
                     tvla_cycles: int = 128,
                     samples_per_cycle: int = 20,
                     reps: int = 5) -> Dict[str, Any]:
    """Run the signal-engine benchmark and return its metrics document.

    ``cycles`` sizes the synthesis trace, ``deconv_traces`` x
    ``deconv_cycles`` the batch deconvolution, and ``tvla_traces``
    (per group) x ``tvla_cycles`` the memory comparison; ``reps`` is
    the best-of repetition count for the timed sections.  Oracle
    agreement (<= 1e-9) is asserted before any ratio is reported.
    """
    kernel = DampedSineKernel()
    spc = samples_per_cycle
    rng = np.random.default_rng(20260808)

    # -- synthesis: planned engine vs the direct np.convolve oracle ----
    amplitudes = rng.uniform(0.1, 2.0, size=cycles)
    direct = reconstruct(amplitudes, kernel, spc, method="direct")
    engine = reconstruct(amplitudes, kernel, spc)   # builds + caches plan
    synthesis_error = float(np.max(np.abs(engine - direct)))
    assert synthesis_error <= 1e-9, \
        f"synthesis engine disagrees with oracle by {synthesis_error:g}"
    # the engine arm is sub-millisecond at realistic sizes, so one call
    # per timed sample would let scheduler jitter swamp the ratio; each
    # sample times a small inner batch instead and both arms divide by
    # the same count
    inner = 4

    def _direct_batch() -> None:
        for _ in range(inner):
            reconstruct(amplitudes, kernel, spc, method="direct")

    def _engine_batch() -> None:
        for _ in range(inner):
            reconstruct(amplitudes, kernel, spc)

    direct_seconds, engine_seconds = _paired_best(
        _direct_batch, _engine_batch, reps)
    direct_seconds /= inner
    engine_seconds /= inner

    # -- deconvolution: cold banded Cholesky vs cold sparse-LU rebuild -
    true_amplitudes = rng.uniform(0.1, 2.0,
                                  size=(deconv_traces, deconv_cycles))
    signals = [reconstruct(row, kernel, spc) for row in true_amplitudes]
    banded = batch_estimate_cycle_amplitudes(signals, kernel, spc,
                                             method="banded")
    legacy = batch_estimate_cycle_amplitudes(signals, kernel, spc,
                                             method="lu")
    deconv_error = float(max(np.max(np.abs(b - l))
                             for b, l in zip(banded, legacy)))
    assert deconv_error <= 1e-9, \
        f"banded deconvolution disagrees with LU by {deconv_error:g}"

    def cold(method: str):
        clear_plan_caches()
        return batch_estimate_cycle_amplitudes(signals, kernel, spc,
                                               method=method)

    lu_seconds, banded_seconds = _paired_best(
        lambda: cold("lu"), lambda: cold("banded"), reps)

    # -- TVLA memory: streaming Welford vs batch materialization -------
    samples = tvla_cycles * spc
    batch_t, batch_peak = _traced_peak(
        lambda: _tvla_batch(tvla_traces, samples))
    stream_t, stream_peak = _traced_peak(
        lambda: _tvla_streaming(tvla_traces, samples))
    tvla_error = float(np.max(np.abs(batch_t - stream_t)))
    assert tvla_error <= 1e-9, \
        f"streaming t-values disagree with batch by {tvla_error:g}"

    return {
        "benchmark": "signal_engine",
        "reps": reps,
        "samples_per_cycle": spc,
        "synthesis_cycles": cycles,
        "direct_synth_seconds": direct_seconds,
        "engine_synth_seconds": engine_seconds,
        "synthesis_speedup": direct_seconds / engine_seconds,
        "synthesis_max_error": synthesis_error,
        "deconv_traces": deconv_traces,
        "deconv_cycles": deconv_cycles,
        "lu_deconv_seconds": lu_seconds,
        "banded_deconv_seconds": banded_seconds,
        "batch_deconv_speedup": lu_seconds / banded_seconds,
        "deconv_max_error": deconv_error,
        "tvla_traces_per_group": tvla_traces,
        "tvla_samples": samples,
        "batch_tvla_peak_bytes": batch_peak,
        "streaming_tvla_peak_bytes": stream_peak,
        "tvla_rss_ratio": batch_peak / stream_peak,
        "tvla_max_error": tvla_error,
        "oracle_agreement": True,
    }
