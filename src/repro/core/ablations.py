"""Named model ablations matching the paper's degradation experiments.

Each entry maps to one "what happens if we don't model X" study:

======================  =========================================  =======
ablation                meaning                                    figure
======================  =========================================  =======
``single-source``       whole processor as one EM source            Fig. 2
``avg-alpha``           Eq. 7 flip averaging instead of LR          Fig. 3
``no-data``             ignore operand values entirely              §III-B
``no-stall``            stalled stages keep radiating               Fig. 5
``no-cache``            every access treated as a cache hit         Fig. 6
``no-mispredict``       fetch modeled as never mispredicting        Fig. 7
======================  =========================================  =======
"""

from __future__ import annotations

from typing import Dict

from ..uarch.config import CoreConfig, DEFAULT_CONFIG
from .model import EMSimModel
from .simulator import EMSim

ABLATIONS: Dict[str, Dict[str, bool]] = {
    "full": {},
    "single-source": {"per_stage_sources": False},
    "avg-alpha": {"regression_alpha": False},
    "no-data": {"data_dependence": False},
    "no-stall": {"model_stalls": False},
    "no-cache": {"model_cache": False},
    "no-mispredict": {"model_mispredicts": False},
}
"""Ablation name -> :class:`ModelSwitches` overrides."""


def make_simulator(model: EMSimModel, ablation: str = "full",
                   core_config: CoreConfig = DEFAULT_CONFIG) -> EMSim:
    """Build an :class:`EMSim` with one named ablation applied."""
    if ablation not in ABLATIONS:
        raise ValueError(f"unknown ablation {ablation!r}; "
                         f"choose from {sorted(ABLATIONS)}")
    simulator = EMSim(model, core_config=core_config)
    overrides = ABLATIONS[ablation]
    return simulator.with_switches(**overrides) if overrides else simulator


def all_simulators(model: EMSimModel,
                   core_config: CoreConfig = DEFAULT_CONFIG
                   ) -> Dict[str, EMSim]:
    """One simulator per ablation, keyed by name."""
    return {name: make_simulator(model, name, core_config)
            for name in ABLATIONS}
