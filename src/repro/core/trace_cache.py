"""Content-addressed cache for pipeline simulation artifacts.

The trainers, microbench probes, and campaign drivers repeatedly
re-simulate *identical* ``(program, CoreConfig)`` pairs: every probe is
captured several times per fit, calibration sweeps rerun the same probe
corpus fit after fit, and campaigns replay programs across repetitions.
The pipeline is pure — the same program under the same configuration
always yields the same :class:`~repro.uarch.trace.ActivityTrace` — so
those re-simulations are wasted work.

This module keys each artifact by a SHA-256 digest of everything the
result depends on: the full ``repr`` of the (frozen, deterministic)
core configuration, the core kind, the cycle limit, the program's entry
point, encoded machine code, and initialized data words — plus a caller
salt for derived values (e.g. ideal-capture measurements, which also
depend on the emitter).  The program *name* is deliberately excluded:
two identically-encoded programs share an entry.  Invalidation is
therefore automatic — touch any input and the key changes.

Storage is a bounded in-memory LRU with an optional on-disk layer (one
file per digest, written atomically).  Activity traces are written as
compact ``repro-trace/1`` codec bytes; every other artifact kind is
pickled.  Reads discriminate by the codec magic, so legacy pickle
entries — including pre-columnar traces — keep loading, and a corrupt
or truncated file of either flavour is just a miss.  Every lookup feeds
hit/miss counters into :mod:`repro.profiling` so ``--profile`` shows
cache effectiveness per category.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from ..isa.program import Program
from ..profiling import get_profiler
from ..uarch.config import CoreConfig
from ..uarch.trace import ActivityTrace
from ..uarch.tracecodec import (TraceCodecError, decode_trace, encode_trace,
                                is_encoded_trace)


@lru_cache(maxsize=128)
def _config_bytes(config: CoreConfig) -> bytes:
    """Memoized ``repr`` bytes of a (frozen, hashable) core config.

    Building the dataclass repr walks every field; the same few config
    objects are hashed thousands of times per fit, so this is one of
    the two hot spots of :func:`trace_key`.
    """
    return repr(config).encode()


def trace_key(program: Program, config: CoreConfig,
              core_kind: str = "in-order",
              max_cycles: Optional[int] = None, salt: str = "") -> str:
    """Content digest for ``program`` simulated under ``config``.

    Two calls return the same key exactly when the simulation inputs are
    byte-for-byte the same: machine code, initialized data, entry point,
    core configuration (``CoreConfig`` is a frozen dataclass whose
    ``repr`` is deterministic and exhaustive), core kind, and cycle
    limit.  ``salt`` namespaces derived artifacts that add inputs of
    their own (e.g. the emitter digest for ideal captures).  The
    program sections are serialized through bulk numpy casts — the
    byte stream (4-byte little-endian code words, then interleaved
    8-byte-address/1-byte-value pairs in address order) is exactly
    what a per-word loop would produce, at a fraction of the cost —
    and the resulting section digest is memoized on the program
    object, since probe programs are themselves memoized and keyed
    over and over (programs must not be mutated after first use,
    the same contract :mod:`repro.core.microbench` states).
    """
    hasher = hashlib.sha256()
    hasher.update(_config_bytes(config))
    hasher.update(core_kind.encode())
    hasher.update(repr(max_cycles).encode())
    hasher.update(salt.encode())
    content = getattr(program, "_trace_digest", None)
    if content is None:
        sections = hashlib.sha256()
        sections.update(repr(program.entry).encode())
        machine_code = program.machine_code
        code = np.fromiter(machine_code, dtype=np.int64,
                           count=len(machine_code))
        # repro: allow[N203] values are masked to 32 bits on the line
        # above, so the little-endian u4 cast is lossless by design.
        sections.update((code & 0xFFFFFFFF).astype("<u4").tobytes())
        addresses = sorted(program.data)
        data = np.empty(len(addresses),
                        dtype=[("address", "<u8"), ("value", "u1")])
        data["address"] = addresses
        values = np.fromiter(
            (program.data[address] for address in addresses),
            dtype=np.int64, count=len(addresses))
        data["value"] = values & 0xFF
        sections.update(data.tobytes())
        content = sections.digest()
        # memoize on the program when it allows attributes (slotted or
        # frozen programs simply skip the memo and re-hash next time)
        with contextlib.suppress(AttributeError):
            program._trace_digest = content
    hasher.update(content)
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`TraceCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports and tests)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "disk_hits": self.disk_hits}


@dataclass
class TraceCache:
    """Bounded LRU keyed by content digest, with an optional disk layer.

    ``capacity`` bounds the in-memory layer (least recently used entry
    evicted first).  When ``directory`` is set, every stored value is
    also written to ``<directory>/<digest>.pkl`` with an atomic rename
    — activity traces as raw ``repro-trace/1`` codec bytes, everything
    else pickled — and in-memory misses fall through to disk; a corrupt
    or unreadable file of either format is treated as a miss.  ``enabled=False`` turns every
    lookup into a miss without touching storage, which is how the
    ``--no-trace-cache`` flag and :func:`trace_cache_disabled` work.
    """

    capacity: int = 256
    directory: Optional[str] = None
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, Any]" = field(default_factory=OrderedDict)

    def lookup(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key`` or ``None`` on a miss."""
        if not self.enabled:
            return None
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key]
        if self.directory is not None:
            value = self._read_disk(key)
            if value is not None:
                self.stats.disk_hits += 1
                self._remember(key, value)
                return value
        return None

    def store(self, key: str, value: Any) -> None:
        """Insert ``value`` under ``key`` (memory, then disk layer)."""
        if not self.enabled:
            return
        self._remember(key, value)
        if self.directory is not None:
            self._write_disk(key, value)

    def get_or_run(self, program: Program, config: CoreConfig,
                   runner: Callable[[], Any], *,
                   core_kind: str = "in-order",
                   max_cycles: Optional[int] = None, salt: str = "",
                   category: str = "trace") -> Any:
        """Cached value for the keyed inputs, running ``runner`` on miss.

        ``category`` labels the profiler counters
        (``trace_cache.<category>.hits`` / ``.misses``) so distinct
        artifact kinds — raw traces, simulator traces, ideal captures —
        report separately under ``--profile``.
        """
        profiler = get_profiler()
        key = trace_key(program, config, core_kind=core_kind,
                        max_cycles=max_cycles, salt=salt)
        disk_hits_before = self.stats.disk_hits
        value = self.lookup(key)
        if value is not None:
            self.stats.hits += 1
            profiler.count(f"trace_cache.{category}.hits")
            if self.stats.disk_hits != disk_hits_before:
                profiler.count(f"trace_cache.{category}.disk_hits")
            return value
        self.stats.misses += 1
        profiler.count(f"trace_cache.{category}.misses")
        value = runner()
        self.store(key, value)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (the disk layer is untouched)."""
        self._entries.clear()

    def _remember(self, key: str, value: Any) -> None:
        """LRU insert into the in-memory layer, evicting if over capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> str:
        """On-disk path for ``key`` inside the cache directory."""
        return os.path.join(self.directory, f"{key}.pkl")

    def _read_disk(self, key: str) -> Optional[Any]:
        """Load a disk entry, returning ``None`` for any failure.

        The first bytes discriminate the format: the ``repro-trace/1``
        magic means raw codec bytes (the fast path for traces), anything
        else is a pickle — which still covers legacy entries written
        before the codec existed.
        """
        try:
            with open(self._path(key), "rb") as handle:
                payload = handle.read()
            if is_encoded_trace(payload):
                return decode_trace(payload)
            return pickle.loads(payload)
        except (OSError, TraceCodecError, pickle.UnpicklingError,
                EOFError, AttributeError, ImportError):
            return None

    def _write_disk(self, key: str, value: Any) -> None:
        """Atomically write an entry (tmp file + rename); best-effort —
        a full or read-only cache directory must never fail the run.

        Bare activity traces are serialized as ``repro-trace/1`` codec
        bytes (several times smaller and faster to load than their
        pickle); other artifact kinds — measurements, tuples, arrays —
        go through pickle, inside which any embedded trace still
        auto-compacts via :meth:`ActivityTrace.__reduce__`.
        """
        with contextlib.suppress(OSError):
            os.makedirs(self.directory, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="wb", dir=self.directory, suffix=".tmp", delete=False)
            try:
                with handle:
                    if isinstance(value, ActivityTrace):
                        handle.write(encode_trace(value))
                    else:
                        pickle.dump(value, handle,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(handle.name, self._path(key))
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(handle.name)
                raise


_GLOBAL_CACHE = TraceCache(
    directory=os.environ.get("REPRO_TRACE_CACHE_DIR") or None,
    enabled=os.environ.get("REPRO_TRACE_CACHE", "1") != "0")


def get_trace_cache() -> TraceCache:
    """The process-wide trace cache used by device/simulator/trainer."""
    return _GLOBAL_CACHE


def configure_trace_cache(capacity: Optional[int] = None,
                          directory: Optional[str] = None,
                          enabled: Optional[bool] = None,
                          clear: bool = False) -> TraceCache:
    """Adjust the global cache in place; ``None`` keeps a setting.

    ``directory=""`` removes the disk layer, any other string enables
    it.  ``clear=True`` additionally drops the in-memory entries (after
    applying the new settings).  Returns the global cache.
    """
    cache = get_trace_cache()
    if capacity is not None:
        cache.capacity = capacity
    if directory is not None:
        cache.directory = directory or None
    if enabled is not None:
        cache.enabled = enabled
    if clear:
        cache.clear()
    return cache


@contextlib.contextmanager
def trace_cache_disabled() -> Iterator[None]:
    """Context manager that bypasses the global cache inside its body.

    Used by benchmarks to time the uncached path, and by tests asserting
    cached and uncached runs produce bit-identical artifacts.
    """
    cache = get_trace_cache()
    previous = cache.enabled
    cache.enabled = False
    try:
        yield
    finally:
        cache.enabled = previous
