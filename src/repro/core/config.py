"""EMSim model configuration and ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..signal.kernels import DampedSineKernel, Kernel


@dataclass(frozen=True)
class ModelSwitches:
    """Which parts of the EM model are enabled.

    The defaults are full EMSim; each switch corresponds to one of the
    paper's accuracy-degradation experiments (Figs. 2, 3, 5, 6, 7).
    """

    per_stage_sources: bool = True    # False -> single-source (Fig. 2)
    regression_alpha: bool = True     # False -> Eq. 7 averaging (Fig. 3)
    model_stalls: bool = True         # False -> ignore stalls (Fig. 5)
    model_cache: bool = True          # False -> all loads hit (Fig. 6)
    model_mispredicts: bool = True    # False -> oracle fetch (Fig. 7)
    data_dependence: bool = True      # False -> alpha == 1 everywhere

    def describe(self) -> str:
        """Short human-readable ablation tag."""
        disabled = [name for name, enabled in (
            ("single-source", not self.per_stage_sources),
            ("avg-alpha", not self.regression_alpha),
            ("no-stall", not self.model_stalls),
            ("no-cache", not self.model_cache),
            ("no-mispredict", not self.model_mispredicts),
            ("no-data", not self.data_dependence)) if enabled]
        return "+".join(disabled) if disabled else "full"


FULL_MODEL = ModelSwitches()
"""All model features enabled (the paper's EMSim proper)."""


@dataclass(frozen=True)
class EMSimConfig:
    """Static configuration of an EMSim instance."""

    samples_per_cycle: int = 20
    kernel: Kernel = field(default_factory=DampedSineKernel)
    switches: ModelSwitches = FULL_MODEL
    # activity-factor regression hyper-parameters
    stepwise_f_threshold: float = 4.0
    stepwise_max_features: int = 48
    # minimum |A| below which activity scaling is not applied
    amplitude_floor: float = 1e-3

    def with_switches(self, **flags: bool) -> "EMSimConfig":
        """Copy with some :class:`ModelSwitches` fields replaced."""
        return replace(self, switches=replace(self.switches, **flags))
