"""Model-building microbenchmarks (paper §III-B and §V-A).

* *Isolation probes*: NOP -> inst -> NOP sequences with all operands zeroed
  ("operands for inst are all set to r1 and r1 = 0"), from which the
  per-stage baseline amplitudes A are measured.
* *Operand probes*: the same shape with randomized operand values, for
  activity-factor training.
* *Combination groups*: the paper's coverage benchmark — all 7^5 = 16807
  5-tuples of representative-cluster instructions, randomly grouped into
  batches of 1024 combinations (5120 instructions), 17 groups in total,
  plus another set drawn from the full ISA.

The fixed-shape probe builders are memoized: probes are deterministic
functions of their (hashable) arguments, every trainer fit re-requests
the same ones, and returning the identical :class:`Program` object each
time also makes downstream content-addressed trace-cache lookups
(:mod:`repro.core.trace_cache`) hit without re-encoding anything.
Probe programs are treated as immutable everywhere — callers must not
mutate ``instructions``/``data`` on a cached instance.
"""

from __future__ import annotations

import itertools
import random
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction, NOP
from ..robustness.errors import ProbeError
from ..isa.program import Program
from ..workloads.generators import SCRATCH_WORDS, wrap_program

PROBE_PADDING = 6
"""NOPs before/after the probed instruction(s)."""

# Operand registers used by probes: rs values live in x8/x9, rd in x7.
PROBE_RD, PROBE_RS1, PROBE_RS2 = 7, 8, 9

REPRESENTATIVES: Dict[str, str] = {
    "alu": "add",
    "shift": "sll",
    "muldiv": "mul",
    "load": "lw",
    "store": "sw",
    "branch": "bne",
    "jump": "jal",
}
"""Behavioural class -> representative mnemonic (paper Table I picks one
instruction per cluster; the load representative covers both the cache-hit
and memory "clusters" via its dynamic outcome)."""

CLASS_MEMBERS: Dict[str, Tuple[str, ...]] = {
    "alu": ("add", "sub", "and", "or", "xor", "slt", "sltu", "addi",
            "andi", "ori", "xori", "slti", "sltiu"),
    "shift": ("sll", "srl", "sra", "slli", "srli", "srai"),
    "muldiv": ("mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
               "remu"),
    "load": ("lb", "lh", "lw", "lbu", "lhu"),
    "store": ("sb", "sh", "sw"),
    "branch": ("beq", "bne", "blt", "bge", "bltu", "bgeu"),
    "jump": ("jal", "jalr"),
}
"""Static class membership (the paper's Table I composition)."""


def _materialize(name: str, rd: int = PROBE_RD, rs1: int = PROBE_RS1,
                 rs2: int = PROBE_RS2, imm: int = 0,
                 branch_offset: int = 8) -> Instruction:
    """Build one instruction of ``name`` with probe operand conventions."""
    members = {m for group in CLASS_MEMBERS.values() for m in group}
    if name not in members:
        raise ProbeError(f"not a probe-able mnemonic: {name!r}")
    if name in CLASS_MEMBERS["branch"]:
        return Instruction(name, rs1=rs1, rs2=rs2, imm=branch_offset)
    if name in CLASS_MEMBERS["store"]:
        return Instruction(name, rs1=rs1, rs2=rs2, imm=imm)
    if name in CLASS_MEMBERS["load"]:
        return Instruction(name, rd=rd, rs1=rs1, imm=imm)
    if name == "jal":
        return Instruction(name, rd=rd, imm=8)  # skip one instruction
    if name == "jalr":
        return Instruction(name, rd=rd, rs1=rs1, imm=0)
    if name.endswith("i") and name != "sltiu" or name in ("slti", "sltiu"):
        if name in ("slli", "srli", "srai"):
            return Instruction(name, rd=rd, rs1=rs1, imm=imm & 0x1F)
        return Instruction(name, rd=rd, rs1=rs1,
                           imm=((imm + 2048) % 4096) - 2048)
    return Instruction(name, rd=rd, rs1=rs1, rs2=rs2)


def _load_setup(rs1_value: int, rs2_value: int) -> List[Instruction]:
    """li-style setup of the probe operand registers, NOP-separated."""
    def load_imm(reg: int, value: int) -> List[Instruction]:
        value &= 0xFFFFFFFF
        upper = ((value + 0x800) >> 12) & 0xFFFFF
        lower = value & 0xFFF
        if lower >= 0x800:
            lower -= 0x1000
        return [Instruction("lui", rd=reg, imm=upper),
                Instruction("addi", rd=reg, rs1=reg, imm=lower)]

    return (load_imm(PROBE_RS1, rs1_value) +
            load_imm(PROBE_RS2, rs2_value) + [NOP] * 2)


@lru_cache(maxsize=8192)
def isolation_probe(name: str, rs1_value: int = 0, rs2_value: int = 0,
                    padding: int = PROBE_PADDING,
                    mem_offset: int = 0) -> Program:
    """NOP -> inst -> NOP probe program for one mnemonic.

    Zero operand values give the paper's baseline (instruction-dependent)
    probe; non-zero values give operand probes for activity training.
    ``mem_offset`` selects the load/store address (distinct lines produce
    cache misses, repeats produce hits).
    """
    instr = _materialize(name, imm=mem_offset)
    code = (_load_setup(rs1_value, rs2_value) + [NOP] * padding +
            [instr] + [NOP] * padding)
    return wrap_program(code, name=f"probe_{name}", seed_registers=True)


@lru_cache(maxsize=1024)
def double_load_probe(name: str = "lw", offset: int = 0,
                      padding: int = PROBE_PADDING) -> Program:
    """Two identical loads, NOP-separated: first misses, second hits.

    Used to measure the "Cache" (load-hit) cluster separately from the
    memory-load cluster (paper Table I rows 4 and 6).
    """
    load = _materialize(name, imm=offset)
    code = (_load_setup(0, 0) + [NOP] * padding + [load] +
            [NOP] * padding + [load] + [NOP] * padding)
    return wrap_program(code, name=f"double_{name}", seed_registers=True)


@lru_cache(maxsize=8192)
def repeat_probe(name: str, rs1_value: int = 0, rs2_value: int = 0,
                 count: int = 3, padding: int = PROBE_PADDING,
                 mem_offset: int = 0) -> Program:
    """NOP -> inst x count -> NOP probe with identical operands.

    Back-to-back identical instructions produce near-zero latch flips from
    the second instance on; these probes teach the activity-factor
    regression that amplitude collapses without switching (an AA "pair"
    from the paper's full combination space).
    """
    instr = _materialize(name, imm=mem_offset)
    code = (_load_setup(rs1_value, rs2_value) + [NOP] * padding +
            [instr] * count + [NOP] * padding)
    return wrap_program(code, name=f"repeat_{name}x{count}",
                        seed_registers=True)


@lru_cache(maxsize=1024)
def warmed_branch_probe(name: str, rs1_value: int = 0,
                        rs2_value: int = 0, gap: int = PROBE_PADDING,
                        padding: int = PROBE_PADDING) -> Program:
    """Branch probe measured on the *second* dynamic instance.

    The first instance trains the direction predictor and the BTB, so the
    second instance — the one whose signature is measured — executes
    without a misprediction flush regardless of its outcome.  Use
    :func:`probe_instruction_seq` + ``gap + 1`` for the measured seq.
    """
    if name not in CLASS_MEMBERS["branch"]:
        raise ProbeError(f"not a branch: {name!r}")
    branch = _materialize(name)
    code = (_load_setup(rs1_value, rs2_value) + [NOP] * padding +
            [branch] + [NOP] * gap + [branch] + [NOP] * padding)
    return wrap_program(code, name=f"warmed_{name}",
                        seed_registers=True)


@lru_cache(maxsize=4096)
def pair_probe(first: str, second: str, rs1_value: int = 0,
               rs2_value: int = 0,
               padding: int = PROBE_PADDING) -> Program:
    """NOP -> instA -> instB -> NOP probe (MISO combination, Fig. 4)."""
    code = (_load_setup(rs1_value, rs2_value) + [NOP] * padding +
            [_materialize(first), _materialize(second)] + [NOP] * padding)
    return wrap_program(code, name=f"pair_{first}_{second}",
                        seed_registers=True)


def probe_instruction_seq(program: Program) -> int:
    """Dynamic sequence number of the probed instruction in a probe
    program (the first non-NOP after the operand setup)."""
    for index, instr in enumerate(program.instructions):
        if index < 6:      # skip the 6 setup instructions (lui/addi/NOPs)
            continue
        if not instr.is_nop and instr.name != "ebreak":
            return index
    raise ProbeError("no probed instruction found")


# ----------------------------------------------------------------------
# combination coverage groups (paper §V-A "Benchmark")
# ----------------------------------------------------------------------
def all_combinations(classes: Optional[Sequence[str]] = None,
                     window: int = 5) -> List[Tuple[str, ...]]:
    """All ``len(classes)**window`` orderings of representative classes.

    With the default 7 clusters and the 5-stage window this is the
    paper's 7^5 = 16807 combinations.
    """
    classes = tuple(classes or REPRESENTATIVES)
    return list(itertools.product(classes, repeat=window))


def _combination_instruction(cls: str, rng: random.Random,
                             use_full_isa: bool) -> Instruction:
    """One concrete instruction for a class slot in a combination group."""
    pool = CLASS_MEMBERS[cls]
    name = rng.choice(pool) if use_full_isa else REPRESENTATIVES[cls]
    rd = rng.choice((7, 10, 11, 12, 13, 14))
    rs1 = rng.choice((8, 9, 15, 16))
    rs2 = rng.choice((8, 9, 15, 16))
    if cls == "load":
        offset = rng.randrange(0, 4 * SCRATCH_WORDS - 4) & ~3
        return Instruction(name, rd=rd, rs1=3, imm=min(offset, 2044))
    if cls == "store":
        return Instruction(name, rs1=3, rs2=rs2,
                           imm=rng.randrange(0, 2044) & ~3)
    if cls == "branch":
        # short forward branch: data-dependent direction, always safe
        return Instruction(name, rs1=rs1, rs2=rs2, imm=8)
    if cls == "jump":
        return Instruction("jal", rd=rd, imm=8)
    if name in ("slli", "srli", "srai"):
        return Instruction(name, rd=rd, rs1=rs1, imm=rng.randrange(32))
    if name.endswith("i") or name in ("slti", "sltiu"):
        return Instruction(name, rd=rd, rs1=rs1,
                           imm=rng.randrange(-2048, 2048))
    return Instruction(name, rd=rd, rs1=rs1, rs2=rs2)


def _operand_seed(rng: random.Random) -> List[Instruction]:
    """Randomize the operand registers used by combination groups."""
    seeds = []
    for reg in (8, 9, 15, 16):
        value = rng.getrandbits(32)
        upper = ((value + 0x800) >> 12) & 0xFFFFF
        lower = value & 0xFFF
        if lower >= 0x800:
            lower -= 0x1000
        seeds.append(Instruction("lui", rd=reg, imm=upper))
        seeds.append(Instruction("addi", rd=reg, rs1=reg, imm=lower))
    return seeds


def combination_group(combinations: Sequence[Tuple[str, ...]],
                      seed: int = 0, use_full_isa: bool = False,
                      loop_every: int = 64,
                      name: str = "group") -> Program:
    """Materialize one batch of class 5-tuples into a runnable program.

    Instructions of consecutive tuples are concatenated so every tuple's
    five instructions co-reside in the pipeline at some cycle.  Following
    the paper, some tuples are wrapped into short loops with random
    iteration counts ("manually modified branch instructions ... to create
    loops with random instruction and iteration sizes").
    """
    rng = random.Random(seed)
    code: List[Instruction] = _operand_seed(rng)
    for index, combo in enumerate(combinations):
        if loop_every and index and index % loop_every == 0:
            iterations = rng.randrange(2, 5)
            body = [_combination_instruction(cls, rng, use_full_isa)
                    for cls in combo if cls not in ("branch", "jump")]
            if body:
                # NOP guard: a preceding jal/taken branch skips one
                # instruction and must not skip the loop-counter init
                code.append(NOP)
                code.append(Instruction("addi", rd=22, rs1=0,
                                        imm=iterations))
                code.extend(body)
                code.append(Instruction("addi", rd=22, rs1=22, imm=-1))
                # loop while counter > 0 (signed): safe even if the
                # counter were ever skipped or clobbered negative
                code.append(Instruction("blt", rs1=0, rs2=22,
                                        imm=-4 * (len(body) + 1)))
                continue
        for cls in combo:
            code.append(_combination_instruction(cls, rng, use_full_isa))
    return wrap_program(code, name=name, seed_registers=True)


def coverage_groups(group_size: int = 1024, seed: int = 7,
                    use_full_isa: bool = False,
                    limit_groups: Optional[int] = None) -> List[Program]:
    """The paper's 17 groups covering all 7^5 combinations.

    ``limit_groups`` truncates for quick runs; ``use_full_isa`` draws the
    members from the whole ISA instead of the representatives (the paper's
    second set of 17 groups).
    """
    rng = random.Random(seed)
    combos = all_combinations()
    rng.shuffle(combos)
    groups = []
    for start in range(0, len(combos), group_size):
        batch = combos[start:start + group_size]
        index = len(groups)
        groups.append(combination_group(
            batch, seed=seed + 1000 + index, use_full_isa=use_full_isa,
            name=f"{'isa' if use_full_isa else 'rep'}_group_{index:02d}"))
        if limit_groups is not None and len(groups) >= limit_groups:
            break
    return groups
