"""Activity-factor models: how data-dependent bit-flips scale amplitudes.

Three variants, matching the paper's comparison (Fig. 3):

* :class:`UnitActivity` — ``alpha == 1``: no data dependence at all;
* :class:`AverageActivity` — Eq. 7: every bit-flip contributes equally;
* :class:`RegressionActivity` — Eq. 8: per-stage linear regression over
  transition bits with step-wise-selected features (EMSim proper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..uarch.latches import STAGES
from ..uarch.trace import ActivityTrace
from .activity import average_alpha
from .regression import LinearModel

ALPHA_MIN = 0.0
ALPHA_MAX = 4.0


def _clip(alpha: np.ndarray) -> np.ndarray:
    return np.clip(alpha, ALPHA_MIN, ALPHA_MAX)


class ActivityFactorModel:
    """Interface: per-cycle activity factor for each stage of a trace."""

    def alpha(self, trace: ActivityTrace, stage: str) -> np.ndarray:
        """(cycles,) activity factors for ``stage``."""
        raise NotImplementedError


@dataclass
class UnitActivity(ActivityFactorModel):
    """``alpha == 1``: ignores operand values entirely."""

    def alpha(self, trace: ActivityTrace, stage: str) -> np.ndarray:
        """All-ones factors: every cycle at nominal activity."""
        return np.ones(trace.num_cycles)


@dataclass
class AverageActivity(ActivityFactorModel):
    """Eq. 7 flip-count averaging: all bit-flips weighted equally.

    ``base_flips`` holds the per-stage flip count observed in the
    zero-operand baseline probes (``flips_base`` in Eq. 7).
    """

    base_flips: Dict[str, float] = field(default_factory=dict)

    def alpha(self, trace: ActivityTrace, stage: str) -> np.ndarray:
        """Eq. 7 factors from the stage's raw per-cycle flip counts."""
        flips = trace.flip_counts(stage)
        return _clip(average_alpha(flips, self.base_flips.get(stage, 0.0),
                                   stage))


@dataclass
class RegressionActivity(ActivityFactorModel):
    """Eq. 8 linear-regression activity factors (EMSim's model).

    One :class:`LinearModel` per pipeline stage, fit on step-wise-selected
    features of that stage's transition design (per-register flip counts
    followed by raw transition bits, see
    :func:`repro.core.activity.stage_design_matrix`).
    """

    models: Dict[str, LinearModel] = field(default_factory=dict)

    def alpha(self, trace: ActivityTrace, stage: str) -> np.ndarray:
        """Eq. 8 factors from the stage's fitted transition-bit model
        (falls back to all-ones for stages without a fit)."""
        model = self.models.get(stage)
        if model is None:
            return np.ones(trace.num_cycles)
        from .activity import stage_design_matrix
        return _clip(model.predict(stage_design_matrix(trace, stage)))

    def selected_fraction(self) -> float:
        """Fraction of transition features kept across all stages.

        The paper reports the step-wise selection removed more than 65 %
        of the transition bits; this is the complementary keep rate.
        """
        from ..uarch.latches import STAGE_REGISTERS, stage_bit_count
        kept = sum(model.features.size for model in self.models.values())
        total = sum(stage_bit_count(stage) + len(STAGE_REGISTERS[stage])
                    for stage in STAGES if stage in self.models)
        return kept / total if total else 0.0
