"""Measurement core for ``repro bench --mode trace``.

Times the columnar activity-trace engine against the seed's
object-graph recording path (kept as
:class:`~repro.uarch.trace.LegacyActivityTrace`) on one fixed workload,
and the ``repro-trace/1`` codec against the legacy trace pickle.  The
acceptance claims (docs/architecture.md):

* cold single-thread ``simulate`` at least **2x** faster columnar,
* serialized traces at least **3x** smaller than the legacy pickle,
* disk-cache hit deserialization at least **2x** faster than unpickling.

Every timed pair is also checked for **bit-identity** — the columnar
trace must reproduce the legacy path's latch matrices, transition
matrices, occupancy views, EM-class sequences, and event lists exactly,
and the codec round trip must be byte-stable — so the speedups can
never come from computing something different.  Both the CLI bench and
``benchmarks/test_perf_trace.py`` call :func:`run_trace_bench`.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Tuple

import numpy as np

from ..profiling import monotonic
from ..uarch import (STAGES, decode_trace, encode_trace, run_program,
                     run_program_ooo)
from ..workloads import ALL_KERNELS


def _paired_best(baseline: Callable[[], Any],
                 candidate: Callable[[], Any],
                 reps: int) -> Tuple[float, float]:
    """Best-of-``reps`` wall times of an interleaved baseline/candidate
    pair.

    The two arms alternate within every repetition rather than running
    as separate blocks, so machine-load drift (thermal throttling, a
    co-scheduled job appearing mid-bench) hits both arms alike instead
    of skewing whichever block it lands on.
    """
    best_baseline = best_candidate = float("inf")
    for _ in range(reps):
        start = monotonic()
        baseline()
        best_baseline = min(best_baseline, monotonic() - start)
        start = monotonic()
        candidate()
        best_candidate = min(best_candidate, monotonic() - start)
    return best_baseline, best_candidate


def assert_traces_identical(legacy: Any, columnar: Any) -> None:
    """Assert the columnar trace is bit-identical to the legacy oracle."""
    assert legacy.num_cycles == columnar.num_cycles
    for stage in STAGES:
        assert np.array_equal(legacy.values_matrix(stage),
                              np.asarray(columnar.values_matrix(stage)))
        assert np.array_equal(legacy.transition_matrix(stage),
                              columnar.transition_matrix(stage))
        assert legacy.stage_kinds(stage) == columnar.stage_kinds(stage)
        assert legacy.em_classes(stage) == columnar.em_classes(stage)
        assert list(legacy.occupancy[stage]) == \
            list(columnar.occupancy[stage])
    assert np.array_equal(legacy.total_flip_counts(),
                          columnar.total_flip_counts())
    assert legacy.stalls == columnar.stalls
    assert legacy.cache_events == columnar.cache_events
    assert legacy.branch_events == columnar.branch_events
    assert legacy.flushes == columnar.flushes
    assert [(entry.seq, entry.pc, entry.instr, entry.cycle)
            for entry in legacy.retired] == \
        [(entry.seq, entry.pc, entry.instr, entry.cycle)
         for entry in columnar.retired]


def run_trace_bench(kernel: str = "crc32",
                    reps: int = 9) -> Dict[str, Any]:
    """Run the trace-engine benchmark and return its metrics document.

    ``kernel`` names a :data:`repro.workloads.ALL_KERNELS` workload;
    ``reps`` is the best-of repetition count for every timed section.
    Bit-identity between the legacy and columnar paths (both cores) and
    codec round-trip byte-stability are asserted before any ratio is
    reported.
    """
    program = ALL_KERNELS[kernel]()

    # -- correctness gates: identity on both cores, byte-stable codec --
    legacy_trace, _ = run_program(program, legacy_trace=True)
    columnar_trace, _ = run_program(program)
    assert_traces_identical(legacy_trace, columnar_trace)
    legacy_ooo, _ = run_program_ooo(program, legacy_trace=True)
    columnar_ooo, _ = run_program_ooo(program)
    assert_traces_identical(legacy_ooo, columnar_ooo)

    payload = encode_trace(columnar_trace)
    decoded = decode_trace(payload)
    assert encode_trace(decoded) == payload
    assert_traces_identical(legacy_trace, decoded)

    # -- cold simulate: full run_program including trace recording -----
    legacy_seconds, columnar_seconds = _paired_best(
        lambda: run_program(program, legacy_trace=True),
        lambda: run_program(program), reps)
    ooo_legacy_seconds, ooo_columnar_seconds = _paired_best(
        lambda: run_program_ooo(program, legacy_trace=True),
        lambda: run_program_ooo(program), reps)

    # -- serialized size: codec bytes vs the legacy trace's pickle -----
    legacy_pickle = pickle.dumps(legacy_trace,
                                 protocol=pickle.HIGHEST_PROTOCOL)
    encoded_bytes = len(payload)
    pickled_bytes = len(legacy_pickle)

    # -- disk-cache hit latency: deserialization of a cached trace ----
    unpickle_seconds, decode_seconds = _paired_best(
        lambda: pickle.loads(legacy_pickle),
        lambda: decode_trace(payload), reps)

    # -- derived views: vectorized vs per-register transition build ----
    def derive(trace):
        trace._transition_cache.clear()
        for stage in STAGES:
            trace.transition_matrix(stage)

    derive_legacy_seconds, derive_columnar_seconds = _paired_best(
        lambda: derive(legacy_trace),
        lambda: derive(columnar_trace), reps)

    return {
        "benchmark": "trace_engine",
        "kernel": kernel,
        "reps": reps,
        "cycles": columnar_trace.num_cycles,
        "cycles_ooo": columnar_ooo.num_cycles,
        "legacy_simulate_seconds": legacy_seconds,
        "columnar_simulate_seconds": columnar_seconds,
        "simulate_speedup": legacy_seconds / columnar_seconds,
        "legacy_simulate_seconds_ooo": ooo_legacy_seconds,
        "columnar_simulate_seconds_ooo": ooo_columnar_seconds,
        "simulate_speedup_ooo": ooo_legacy_seconds / ooo_columnar_seconds,
        "encoded_bytes": encoded_bytes,
        "legacy_pickle_bytes": pickled_bytes,
        "size_ratio": pickled_bytes / encoded_bytes,
        "decode_seconds": decode_seconds,
        "unpickle_seconds": unpickle_seconds,
        "decode_speedup": unpickle_seconds / decode_seconds,
        "derive_legacy_seconds": derive_legacy_seconds,
        "derive_columnar_seconds": derive_columnar_seconds,
        "derive_speedup": derive_legacy_seconds / derive_columnar_seconds,
        "bit_identical": True,
    }
