"""Synthetic ground-truth hardware: EM sources, boards, probe, bench."""

from .boards import ARTY, BOARDS, BoardProfile, DE0_CV, DE1, DeviceInstance
from .device import (DEFAULT_SAMPLES_PER_CYCLE, HardwareDevice, Measurement)
from .emitter import HardwareEmitter, stage_couplings
from .probe import CENTER, ProbePosition, coupling
from .units import EmUnit, UNIT_NAMES, build_units

__all__ = [
    "ARTY",
    "BOARDS",
    "BoardProfile",
    "CENTER",
    "DE0_CV",
    "DE1",
    "DEFAULT_SAMPLES_PER_CYCLE",
    "DeviceInstance",
    "EmUnit",
    "HardwareDevice",
    "HardwareEmitter",
    "Measurement",
    "ProbePosition",
    "UNIT_NAMES",
    "build_units",
    "coupling",
    "stage_couplings",
]
