"""Magnetic probe model: position-dependent coupling to each EM source.

The paper (§V-D) treats the probe-to-source channel as flat fading with a
*loss coefficient* beta per source; moving the probe changes every source's
coupling, which is why simulated amplitudes trained at one position need a
refitted beta at another (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .units import EmUnit


@dataclass(frozen=True)
class ProbePosition:
    """Probe location relative to the die center, in cm.

    The paper's base position is the center of the processor at 5 cm
    height; ``CENTER`` reproduces it.
    """

    x: float = 0.0
    y: float = 0.0
    height: float = 5.0

    def distance_to(self, unit_position: Tuple[float, float]) -> float:
        """Euclidean distance from the probe tip to a die block."""
        dx = self.x - unit_position[0]
        dy = self.y - unit_position[1]
        return float(np.sqrt(dx * dx + dy * dy + self.height ** 2))


CENTER = ProbePosition()
"""The paper's base measurement point (probe over the die center)."""


def coupling(unit: EmUnit, probe: ProbePosition,
             reference: ProbePosition = CENTER,
             falloff: float = 1.7) -> float:
    """Loss coefficient beta of ``unit`` at ``probe``.

    Normalized so beta == 1 at the ``reference`` position: the paper fixes
    beta_0 = 1 at the base point and absorbs it into the baseline
    amplitude A = A_0 * beta_0.  Near-field magnetic coupling falls off
    roughly like distance^-falloff.
    """
    base_distance = reference.distance_to(unit.position)
    distance = probe.distance_to(unit.position)
    return float((base_distance / distance) ** falloff)
