"""EM source units of the synthetic ground-truth hardware.

Each microarchitectural block (decoder, register file, ALU, data bus, ...)
is an independent EM source — the physical reality EMSim approximates with
one source per pipeline stage.  A unit taps a subset of its stage's latch
bits with *non-uniform per-bit weights* (the paper found "not all the
bit-flips have the similar impact"; ALU output and memory-bus flips matter
most), has an instruction-class-dependent static activity, and radiates
with its own damped-sine kernel whose phase/shape differ slightly per unit —
which is why a single-kernel, single-source model cannot be exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..signal.kernels import DampedSineKernel
from ..uarch.latches import stage_register_offsets

# Static per-class activity of each unit kind, in arbitrary signal units.
# Rows: what occupies the stage; the emitter adds flip-weighted activity on
# top.  "stall" rows are tiny: stalled stages are frozen/power-gated.
_BASE_ACTIVITY: Dict[str, Dict[str, float]] = {
    "fetch_logic": {"nop": 0.30, "stall": 0.02, "alu": 0.42, "shift": 0.42,
                    "muldiv": 0.42, "load": 0.45, "store": 0.45,
                    "branch": 0.55, "jump": 0.60, "system": 0.35},
    "predictor": {"nop": 0.02, "stall": 0.00, "branch": 0.30, "jump": 0.22,
                  "alu": 0.02, "shift": 0.02, "muldiv": 0.02, "load": 0.02,
                  "store": 0.02, "system": 0.02},
    "decoder": {"nop": 0.22, "stall": 0.02, "alu": 0.40, "shift": 0.42,
                "muldiv": 0.52, "load": 0.50, "store": 0.48,
                "branch": 0.46, "jump": 0.44, "system": 0.30},
    "regfile_read": {"nop": 0.05, "stall": 0.01, "alu": 0.38, "shift": 0.36,
                     "muldiv": 0.40, "load": 0.30, "store": 0.38,
                     "branch": 0.38, "jump": 0.12, "system": 0.05},
    "imm_gen": {"nop": 0.04, "stall": 0.00, "alu": 0.18, "shift": 0.16,
                "muldiv": 0.04, "load": 0.20, "store": 0.20,
                "branch": 0.20, "jump": 0.24, "system": 0.04},
    "alu": {"nop": 0.12, "stall": 0.02, "alu": 0.62, "shift": 0.78,
            "muldiv": 0.35, "load": 0.55, "store": 0.55, "branch": 0.58,
            "jump": 0.35, "system": 0.10},
    "muldiv_unit": {"nop": 0.02, "stall": 0.04, "muldiv": 0.50, "alu": 0.02,
                    "shift": 0.02, "load": 0.02, "store": 0.02,
                    "branch": 0.02, "jump": 0.02, "system": 0.02},
    "ex_control": {"nop": 0.06, "stall": 0.01, "alu": 0.14, "shift": 0.14,
                   "muldiv": 0.18, "load": 0.16, "store": 0.16,
                   "branch": 0.20, "jump": 0.16, "system": 0.08},
    "dbus": {"nop": 0.04, "stall": 0.15, "load_cache": 0.72,
             "load_mem": 0.95, "store": 0.80, "alu": 0.04, "shift": 0.04,
             "muldiv": 0.04, "branch": 0.04, "jump": 0.04, "system": 0.04},
    "cache_array": {"nop": 0.03, "stall": 0.08, "load_cache": 0.85,
                    "load_mem": 0.60, "store": 0.70, "alu": 0.03,
                    "shift": 0.03, "muldiv": 0.03, "branch": 0.03,
                    "jump": 0.03, "system": 0.03},
    "regfile_write": {"nop": 0.08, "stall": 0.01, "alu": 0.40,
                      "shift": 0.40, "muldiv": 0.50, "load": 0.52,
                      "load_cache": 0.52, "load_mem": 0.52, "store": 0.10,
                      "branch": 0.10, "jump": 0.40, "system": 0.05},
}

# Which latch registers each unit taps, and the mean per-bit flip weight.
_UNIT_TAPS: Dict[str, Tuple[str, Tuple[str, ...], float]] = {
    # unit -> (stage, registers, mean bit weight)
    "fetch_logic": ("F", ("pc", "fetch_instr"), 0.004),
    "predictor": ("F", ("pred_state",), 0.010),
    "decoder": ("D", ("dec_instr", "dec_ctrl"), 0.005),
    "regfile_read": ("D", ("rs1_val", "rs2_val"), 0.007),
    "imm_gen": ("D", ("dec_imm",), 0.003),
    # the paper: ALU-output flips have the most significant impact
    "alu": ("E", ("alu_a", "alu_b", "alu_out"), 0.016),
    "muldiv_unit": ("E", ("muldiv_lo", "muldiv_hi"), 0.030),
    "ex_control": ("E", ("ex_ctrl",), 0.008),
    # ... followed by the memory buses
    "dbus": ("M", ("mem_addr", "mem_wdata", "mem_rdata"), 0.014),
    "cache_array": ("M", ("mem_ctrl",), 0.009),
    "regfile_write": ("W", ("wb_data", "wb_rd", "wb_ctrl"), 0.009),
}

UNIT_NAMES: Tuple[str, ...] = tuple(_UNIT_TAPS)
"""All EM source unit names, in canonical order."""


@dataclass(frozen=True, eq=False)
class EmUnit:
    """One EM source: taps, weights, kernel, die position."""

    name: str
    stage: str
    bit_indices: np.ndarray = field(repr=False)   # into the stage's bits
    bit_weights: np.ndarray = field(repr=False)   # same length, >= 0
    base_activity: Dict[str, float] = field(repr=False)
    kernel: DampedSineKernel = field(default_factory=DampedSineKernel)
    position: Tuple[float, float] = (0.0, 0.0)    # cm on the die
    polarity: float = 1.0                          # field orientation sign

    def static_activity(self, em_class: str) -> float:
        """Class-dependent static activity (0 for unknown classes)."""
        if em_class in self.base_activity:
            return self.base_activity[em_class]
        if em_class.endswith("_final"):
            # final cycle of a multi-cycle unit: result write burst
            return 1.4 * self.static_activity(em_class[:-6])
        if em_class in ("load_cache", "load_mem", "load"):
            # fall back across the load variants for units that do not
            # distinguish them
            for alias in ("load", "load_cache", "load_mem"):
                if alias in self.base_activity:
                    return self.base_activity[alias]
        return self.base_activity.get("alu", 0.0) * 0.5


def _unit_bit_slice(stage: str,
                    registers: Sequence[str]) -> np.ndarray:
    """Indices of the given registers' bits inside the stage's vector."""
    offsets = stage_register_offsets(stage)
    indices = []
    for register in registers:
        start, width = offsets[register]
        indices.extend(range(start, start + width))
    return np.asarray(indices, dtype=int)


# Approximate die placement of each block (cm from die center).
_UNIT_POSITIONS: Dict[str, Tuple[float, float]] = {
    "fetch_logic": (-0.8, 0.6), "predictor": (-1.0, 0.2),
    "decoder": (-0.4, -0.3), "regfile_read": (0.0, 0.5),
    "imm_gen": (-0.2, -0.7), "alu": (0.4, 0.1),
    "muldiv_unit": (0.7, -0.4), "ex_control": (0.3, 0.7),
    "dbus": (0.9, 0.4), "cache_array": (1.1, -0.2),
    "regfile_write": (0.1, 0.9),
}


GEOMETRY_SEED = 777
"""Seed of the geometry generator shared by all boards.

Unit phases and polarities come from the physical layout of the processor
design and the probe orientation — identical across boards carrying the
same logic design (this is why the paper's MISO coefficients M transfer
across boards, §V-C).  Technology-dependent quantities (gains, per-bit
weights, ringing shape) come from the board's own generator.
"""


def build_units(rng: np.random.Generator,
                gain_scale: float = 1.0,
                weight_scale: float = 1.0,
                kernel_t0: float = 0.25,
                kernel_theta: float = 4.0,
                phase_spread: float = 0.3,
                shape_spread: float = 0.04) -> Tuple[EmUnit, ...]:
    """Instantiate all EM units for one physical device.

    ``rng`` determines the technology personality (per-bit weights, unit
    gains, kernel detuning); phases/polarities are drawn from the shared
    geometry generator so different boards of the same design differ in
    *amplitudes* but not in source *geometry*.
    """
    geometry = np.random.default_rng(GEOMETRY_SEED)
    units = []
    for name in UNIT_NAMES:
        stage, registers, mean_weight = _UNIT_TAPS[name]
        indices = _unit_bit_slice(stage, registers)
        # log-normal per-bit weights: a few bits dominate, as on real dies
        weights = mean_weight * weight_scale * \
            rng.lognormal(mean=0.0, sigma=1.2, size=indices.size)
        base = {label: value * gain_scale * rng.uniform(0.9, 1.1)
                for label, value in _BASE_ACTIVITY[name].items()}
        phase = phase_spread * geometry.uniform(-np.pi / 2, np.pi / 2)
        polarity = 1.0 if geometry.random() < 0.8 else -1.0
        kernel = DampedSineKernel(
            t0=kernel_t0 * (1.0 + shape_spread * rng.uniform(-1, 1)),
            theta=kernel_theta * (1.0 + shape_spread * rng.uniform(-1, 1)),
            phase=phase)
        units.append(EmUnit(
            name=name, stage=stage, bit_indices=indices,
            bit_weights=weights, base_activity=base, kernel=kernel,
            position=_UNIT_POSITIONS[name],
            polarity=polarity))
    return tuple(units)
