"""The measurement bench: device under test + probe + oscilloscope.

:class:`HardwareDevice` plays the role of the paper's FPGA board on the
bench: it runs a program on the (fully known) microarchitecture, radiates
through :class:`~repro.hardware.emitter.HardwareEmitter`, and is captured
either ideally (noiseless grid — what infinitely-averaged modulo extraction
converges to) or through the full scope + modulo-operation pipeline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..isa.program import Program
from ..robustness.errors import AcquisitionError, ConfigurationError
from ..robustness.faults import FaultInjector, FaultPlan
from ..robustness.health import (CaptureQuality, assess_capture,
                                 screen_repetitions)
from ..signal.acquisition import Oscilloscope, ScopeConfig
from ..signal.modulo import modulo_average
from ..uarch.config import CoreConfig, DEFAULT_CONFIG
from ..uarch.pipeline import Pipeline
from ..uarch.trace import ActivityTrace
from .boards import DE0_CV, BoardProfile, DeviceInstance
from .emitter import HardwareEmitter
from .probe import CENTER, ProbePosition

DEFAULT_SAMPLES_PER_CYCLE = 20
"""Uniform-grid resolution used throughout the reproduction."""


@dataclass
class Measurement:
    """One captured signal with its provenance."""

    signal: np.ndarray
    trace: ActivityTrace
    samples_per_cycle: int
    program_name: str
    device_name: str
    method: str               # "ideal" or "reference"
    # bench-observable quality of the capture; populated on the full
    # scope + modulo path, None on the ideal grid (which is exact)
    quality: Optional[CaptureQuality] = None

    @property
    def num_cycles(self) -> int:
        """Clock cycles covered by the capture."""
        return len(self.signal) // self.samples_per_cycle


class HardwareDevice:
    """One physical device instance on the bench."""

    def __init__(self,
                 instance: Optional[DeviceInstance] = None,
                 board: Optional[BoardProfile] = None,
                 probe: ProbePosition = CENTER,
                 core_config: CoreConfig = DEFAULT_CONFIG,
                 scope_config: Optional[ScopeConfig] = None,
                 samples_per_cycle: int = DEFAULT_SAMPLES_PER_CYCLE,
                 seed: int = 12345,
                 alu_bug: Optional[object] = None,
                 core_kind: str = "in-order",
                 fault_plan: Optional[FaultPlan] = None,
                 auto_range: bool = True):
        if core_kind not in ("in-order", "out-of-order"):
            raise ConfigurationError(f"unknown core kind: {core_kind!r}")
        if instance is None:
            instance = DeviceInstance(board=board or DE0_CV)
        elif board is not None and instance.board is not board:
            raise ConfigurationError("pass either instance or board, "
                                     "not both")
        self.instance = instance
        self.probe = probe
        self.core_config = core_config
        self.scope_config = scope_config or ScopeConfig()
        self.samples_per_cycle = samples_per_cycle
        self.rng = np.random.default_rng(seed)
        self.alu_bug = alu_bug
        self.core_kind = core_kind
        self.fault_plan = fault_plan
        self.fault_injector = FaultInjector(fault_plan) \
            if fault_plan is not None and fault_plan.any_active else None
        self.auto_range = auto_range
        self.units = instance.units()
        self.emitter = HardwareEmitter(
            self.units, probe=probe, gain=instance.gain_jitter,
            clock_scale=instance.clock_scale)
        # content digest of everything the *ideal* capture depends on
        # beyond the program/config: the board's electrical personality
        # (units are rebuilt deterministically from the profile), the
        # instance spread, and the probe position.  Lets ideal captures
        # be memoized in the global trace cache across device objects.
        self._emitter_digest = hashlib.sha256(repr(
            (self.instance.board, self.instance.instance_id,
             self.probe, self.instance.gain_jitter,
             self.instance.clock_scale)).encode()).hexdigest()

    @property
    def name(self) -> str:
        """Readable device identity, e.g. ``de0-cv#0``."""
        return f"{self.instance.board.name}#{self.instance.instance_id}"

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, program: Program,
            max_cycles: Optional[int] = None):
        """Execute ``program`` on the device's core; returns trace+core."""
        if self.core_kind == "out-of-order":
            from ..uarch.ooo import OutOfOrderCore
            core = OutOfOrderCore(program, config=self.core_config)
        else:
            core = Pipeline(program, config=self.core_config,
                            alu_bug=self.alu_bug)
        trace = core.run(max_cycles=max_cycles)
        return trace, core

    def run_trace(self, program: Program,
                  max_cycles: Optional[int] = None) -> ActivityTrace:
        """Activity trace for ``program``, served from the trace cache.

        The pipeline is deterministic for a given (program, config,
        core kind) triple, so traces are memoized in the process-wide
        content-addressed cache.  An injected ALU bug changes execution
        without being part of the content key, so bugged devices always
        simulate afresh.
        """
        if self.alu_bug is not None:
            trace, _ = self.run(program, max_cycles=max_cycles)
            return trace
        from ..core.trace_cache import get_trace_cache

        def runner() -> ActivityTrace:
            trace, _ = self.run(program, max_cycles=max_cycles)
            return trace

        return get_trace_cache().get_or_run(
            program, self.core_config, runner, core_kind=self.core_kind,
            max_cycles=max_cycles, category="device")

    # ------------------------------------------------------------------
    # capture paths
    # ------------------------------------------------------------------
    def capture_ideal(self, program: Program,
                      max_cycles: Optional[int] = None) -> Measurement:
        """Noiseless emission on the uniform grid.

        Equivalent to the reference signal after unlimited modulo
        averaging; the fast path for large experiments.  The capture is
        a pure function of (program, config, emitter, grid) — no RNG,
        no fault path — so whole measurements are memoized in the trace
        cache under an emitter-salted key; calibration loops that probe
        the same programs fit after fit skip both the pipeline and the
        emitter synthesis.
        """
        def runner() -> Measurement:
            trace = self.run_trace(program, max_cycles=max_cycles)
            signal = self.emitter.signal_on_grid(trace,
                                                 self.samples_per_cycle)
            return Measurement(signal=signal, trace=trace,
                               samples_per_cycle=self.samples_per_cycle,
                               program_name=program.name,
                               device_name=self.name, method="ideal")

        if self.alu_bug is not None:
            return runner()
        from ..core.trace_cache import get_trace_cache
        salt = f"ideal:{self._emitter_digest}:{self.samples_per_cycle}"
        return get_trace_cache().get_or_run(
            program, self.core_config, runner, core_kind=self.core_kind,
            max_cycles=max_cycles, salt=salt, category="ideal")

    def capture_reference(self, program: Program,
                          repetitions: int = 100,
                          max_cycles: Optional[int] = None,
                          batched: bool = False) -> Measurement:
        """Full acquisition chain: scope sampling + modulo averaging.

        The paper's §II-B procedure — ``repetitions`` noisy asynchronous
        captures folded by Eq. 1 onto the per-cycle grid.  The folding
        period uses the device's *actual* clock (measured in practice from
        the signal itself), so manufacturing clock offsets appear only as
        a slight per-cycle waveform stretch.

        The device's fault plan (if any) corrupts this path — and only
        this path; the ideal grid stays exact, which is what makes it a
        valid degradation fallback.  Delivered repetitions are screened
        individually (clipping, energy, fold residual) before the fold,
        and the returned measurement carries a
        :class:`~repro.robustness.health.CaptureQuality` for gating.

        ``batched=True`` vectorizes the repetition collection loop (one
        waveform evaluation for all repetitions, through the emitter's
        lag-factored fast evaluator); it replays the exact same RNG
        stream, and the resulting reference agrees with the sequential
        loop's to well inside the batch engine's 1e-9 contract (the fast
        evaluator reorders floating-point operations, so agreement is
        ~1e-13 rather than bitwise).

        Only the deterministic pipeline trace is cache-served here; the
        scope path (noise, faults, screening) always runs live.
        """
        trace = self.run_trace(program, max_cycles=max_cycles)
        # batched mode runs everything (pilot sweep included) through the
        # emitter's lag-factored fast evaluator; sequential mode keeps the
        # exact legacy evaluator throughout
        waveform = self.emitter.continuous_fast(trace) if batched \
            else self.emitter.continuous(trace)
        duration = trace.num_cycles * self.instance.clock_scale
        scope_config = self.scope_config
        if self.auto_range:
            # the operator's vertical auto-range: one pilot sweep sets the
            # ADC full scale so dense programs don't rail the converter
            # (the default 4.0 full scale clips heavy combination groups)
            pilot_grid = np.linspace(0.0, duration,
                                     trace.num_cycles *
                                     self.samples_per_cycle,
                                     endpoint=False)
            span = float(np.max(np.abs(waveform(pilot_grid))))
            if span > 0:
                scope_config = replace(scope_config,
                                       adc_range=2.5 * span)
        scope = Oscilloscope(scope_config, self.rng,
                             injector=self.fault_injector)
        times_list, samples_list = scope.capture_repetition_list(
            waveform, duration, repetitions, batched=batched)
        stats = scope.last_repetition_stats
        if not samples_list:
            raise AcquisitionError(
                f"capture run lost all {repetitions} repetitions "
                f"to trigger/brown-out faults")
        num_bins = trace.num_cycles * self.samples_per_cycle
        screen = screen_repetitions(
            times_list, samples_list, period=duration, num_bins=num_bins,
            adc_range=scope_config.adc_range,
            adc_bits=scope_config.adc_bits)
        kept = [index for index, ok in enumerate(screen.keep) if ok]
        if not kept:
            raise AcquisitionError(
                f"all {len(samples_list)} delivered repetitions were "
                f"screened out as corrupt")
        times = np.concatenate([times_list[i] for i in kept])
        samples = np.concatenate([samples_list[i] for i in kept])
        reference, _ = modulo_average(
            samples, times, period=duration, num_bins=num_bins)
        quality = assess_capture(
            samples, times, period=duration, num_bins=num_bins,
            adc_range=scope_config.adc_range,
            adc_bits=scope_config.adc_bits,
            lost_repetitions=stats.lost,
            screened_repetitions=screen.rejected,
            total_repetitions=stats.requested,
            reference=reference)
        return Measurement(signal=reference, trace=trace,
                           samples_per_cycle=self.samples_per_cycle,
                           program_name=program.name,
                           device_name=self.name, method="reference",
                           quality=quality)

    def capture_single(self, program: Program,
                       noise_rms: Optional[float] = None,
                       max_cycles: Optional[int] = None) -> Measurement:
        """One single-shot trace: uniform grid plus AWGN, no averaging.

        This is what an attacker (or a TVLA campaign) records per
        execution — individual noisy traces, not modulo-averaged
        references.
        """
        if noise_rms is None:
            noise_rms = self.scope_config.noise_rms
        measurement = self.capture_ideal(program, max_cycles=max_cycles)
        noisy = measurement.signal + self.rng.normal(
            0.0, noise_rms, size=measurement.signal.shape)
        return Measurement(signal=noisy, trace=measurement.trace,
                           samples_per_cycle=self.samples_per_cycle,
                           program_name=program.name,
                           device_name=self.name, method="single")

    def measure(self, program: Program, method: str = "ideal",
                repetitions: int = 100,
                max_cycles: Optional[int] = None,
                batched: bool = False) -> Measurement:
        """Capture via the chosen method (``ideal`` or ``reference``).

        ``batched`` selects the vectorized repetition loop on the
        reference path (bit-identical output, much faster); the ideal
        grid is already a single vectorized synthesis.
        """
        if method == "ideal":
            return self.capture_ideal(program, max_cycles=max_cycles)
        if method == "reference":
            return self.capture_reference(program, repetitions=repetitions,
                                          max_cycles=max_cycles,
                                          batched=batched)
        raise ConfigurationError(f"unknown capture method: {method!r}")
