"""Board profiles and manufacturing instances.

The paper evaluates three boards — Terasic DE0-CV (Cyclone-V, the baseline),
Terasic DE1 (Cyclone-II) and Digilent ARTY (Artix-35T), all at 50 MHz — plus
three physical instances of the DE0-CV.  A *board* changes the CMOS
technology and layout coupling, so unit gains and per-bit weights differ
(EMSim must retrain A and c); a *manufacturing instance* of the same board
only shifts the clock frequency slightly and scales the global gain, which
the paper found harmless (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .units import build_units


@dataclass(frozen=True)
class BoardProfile:
    """Static electrical personality of one board design."""

    name: str
    seed: int
    clock_mhz: float = 50.0
    gain_scale: float = 1.0
    weight_scale: float = 1.0
    kernel_t0: float = 0.25
    kernel_theta: float = 4.0
    phase_spread: float = 0.3
    shape_spread: float = 0.04

    def build_units(self) -> tuple:
        """Instantiate this board's EM source units (deterministic)."""
        rng = np.random.default_rng(self.seed)
        return build_units(rng, gain_scale=self.gain_scale,
                           weight_scale=self.weight_scale,
                           kernel_t0=self.kernel_t0,
                           kernel_theta=self.kernel_theta,
                           phase_spread=self.phase_spread,
                           shape_spread=self.shape_spread)


DE0_CV = BoardProfile(name="de0-cv", seed=1001)
"""The paper's baseline board: Terasic DE0-CV, Altera Cyclone-V."""

DE1 = BoardProfile(name="de1", seed=2002, gain_scale=1.35,
                   weight_scale=1.6, kernel_t0=0.28, kernel_theta=3.4)
"""Terasic DE1, Altera Cyclone-II: older process, stronger emissions."""

ARTY = BoardProfile(name="arty", seed=3003, gain_scale=0.75,
                    weight_scale=0.7, kernel_t0=0.22, kernel_theta=4.6)
"""Digilent ARTY, Xilinx Artix-35T: newer process, weaker emissions."""

BOARDS = {board.name: board for board in (DE0_CV, DE1, ARTY)}
"""Name -> profile for all modeled boards."""


@dataclass(frozen=True)
class DeviceInstance:
    """One physical unit of a board design.

    ``clock_ppm`` models the crystal tolerance ("the signals for board #2
    and #3 are slightly shifted ... due to the slight shift in the actual
    clock frequency"); ``gain_jitter`` is a small global amplitude
    variation from process spread.
    """

    board: BoardProfile = DE0_CV
    instance_id: int = 0

    @property
    def clock_ppm(self) -> float:
        """Clock frequency offset of this instance in parts-per-million."""
        rng = np.random.default_rng(self.board.seed * 7919 +
                                    self.instance_id)
        return float(rng.uniform(-80.0, 80.0)) if self.instance_id else 0.0

    @property
    def gain_jitter(self) -> float:
        """Global amplitude scale of this instance (close to 1.0)."""
        rng = np.random.default_rng(self.board.seed * 104729 +
                                    self.instance_id)
        return float(rng.uniform(0.97, 1.03)) if self.instance_id else 1.0

    @property
    def clock_scale(self) -> float:
        """Actual-to-nominal clock period ratio."""
        return 1.0 + self.clock_ppm * 1e-6

    def units(self) -> tuple:
        """The board's EM units (shared across instances of a board)."""
        return self.board.build_units()
