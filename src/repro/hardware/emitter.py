"""Ground-truth EM emission synthesis from a microarchitectural trace.

Superposes every unit's radiation: per cycle ``n`` each unit ``u``
contributes ``beta_u * g * a_u[n] * k_u(t - n)`` where ``a_u[n]`` combines
the unit's class-dependent static activity with its flip-weighted latch
transitions, ``k_u`` is the unit's own damped-sine kernel (own phase/shape),
``beta_u`` the probe coupling and ``g`` the device instance gain.

This is the finest-grained model in the package — the "physics" that both
the real measurements in the paper and EMSim's reduced per-stage model sit
on top of.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..uarch.latches import STAGES
from ..uarch.trace import ActivityTrace
from .probe import CENTER, ProbePosition, coupling
from .units import EmUnit


class HardwareEmitter:
    """Synthesizes the analog emission of one device for one trace."""

    def __init__(self, units: Sequence[EmUnit],
                 probe: ProbePosition = CENTER,
                 gain: float = 1.0,
                 clock_scale: float = 1.0):
        self.units = tuple(units)
        self.probe = probe
        self.gain = gain
        self.clock_scale = clock_scale
        self._couplings = np.array([coupling(unit, probe) * unit.polarity
                                    for unit in self.units])

    # ------------------------------------------------------------------
    # per-cycle unit amplitudes
    # ------------------------------------------------------------------
    def unit_amplitudes(self, trace: ActivityTrace) -> np.ndarray:
        """(cycles, units) matrix of raw per-unit activity amplitudes."""
        cycles = trace.num_cycles
        transitions = {stage: trace.transition_matrix(stage)
                       for stage in STAGES}
        classes = {stage: [occ.em_class()
                           for occ in trace.occupancy[stage]]
                   for stage in STAGES}
        amplitudes = np.zeros((cycles, len(self.units)))
        for column, unit in enumerate(self.units):
            static = np.fromiter(
                (unit.static_activity(label)
                 for label in classes[unit.stage]),
                dtype=float, count=cycles)
            flips = transitions[unit.stage][:, unit.bit_indices] @ \
                unit.bit_weights
            amplitudes[:, column] = static + flips
        return amplitudes

    # ------------------------------------------------------------------
    # waveform synthesis
    # ------------------------------------------------------------------
    def signal_on_grid(self, trace: ActivityTrace,
                       samples_per_cycle: int,
                       unit_names: Optional[Sequence[str]] = None
                       ) -> np.ndarray:
        """Noiseless emission on the uniform per-cycle sample grid.

        ``unit_names`` restricts synthesis to a subset of sources (used by
        diagnostics that look at one stage in isolation).
        """
        amplitudes = self.unit_amplitudes(trace)
        total = np.zeros(trace.num_cycles * samples_per_cycle)
        for column, unit in enumerate(self.units):
            if unit_names is not None and unit.name not in unit_names:
                continue
            impulses = np.zeros_like(total)
            impulses[::samples_per_cycle] = amplitudes[:, column]
            response = unit.kernel.sampled(samples_per_cycle)
            scaled = self.gain * self._couplings[column]
            total += scaled * np.convolve(impulses, response)[:len(total)]
        return total

    def per_unit_signals(self, trace: ActivityTrace,
                         samples_per_cycle: int) -> Dict[str, np.ndarray]:
        """Each unit's individual contribution on the uniform grid."""
        return {unit.name: self.signal_on_grid(trace, samples_per_cycle,
                                               unit_names=(unit.name,))
                for unit in self.units}

    def stage_signal_on_grid(self, trace: ActivityTrace, stage: str,
                             samples_per_cycle: int) -> np.ndarray:
        """Combined contribution of all sources in one pipeline stage."""
        names = tuple(unit.name for unit in self.units
                      if unit.stage == stage)
        return self.signal_on_grid(trace, samples_per_cycle,
                                   unit_names=names)

    def continuous(self, trace: ActivityTrace):
        """Return ``y(t)`` in *nominal*-clock cycle units.

        The device's actual clock may be slightly off nominal
        (``clock_scale``); events land at ``n * clock_scale`` and kernels
        stretch accordingly, exactly what a scope with an absolute time
        base sees.
        """
        amplitudes = self.unit_amplitudes(trace)
        couplings = self.gain * self._couplings
        units = self.units
        num_cycles = trace.num_cycles
        scale = self.clock_scale

        def evaluate(times: np.ndarray) -> np.ndarray:
            times = np.asarray(times, dtype=float) / scale
            result = np.zeros_like(times)
            base_cycle = np.floor(times).astype(int)
            for column, unit in enumerate(units):
                support = int(np.ceil(unit.kernel.support_cycles))
                for lag in range(support + 1):
                    cycle = base_cycle - lag
                    valid = (cycle >= 0) & (cycle < num_cycles)
                    if not valid.any():
                        continue
                    tau = times[valid] - cycle[valid]
                    result[valid] += couplings[column] * \
                        amplitudes[cycle[valid], column] * \
                        unit.kernel.evaluate(tau)
            return result

        return evaluate


def stage_couplings(units: Sequence[EmUnit],
                    probe: ProbePosition) -> Dict[str, float]:
    """Mean |coupling| per pipeline stage at a probe position (diagnostic
    for the distance experiments, Fig. 9)."""
    per_stage: Dict[str, list] = {stage: [] for stage in STAGES}
    for unit in units:
        per_stage[unit.stage].append(abs(coupling(unit, probe)))
    return {stage: float(np.mean(values)) if values else 0.0
            for stage, values in per_stage.items()}
