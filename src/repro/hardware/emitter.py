"""Ground-truth EM emission synthesis from a microarchitectural trace.

Superposes every unit's radiation: per cycle ``n`` each unit ``u``
contributes ``beta_u * g * a_u[n] * k_u(t - n)`` where ``a_u[n]`` combines
the unit's class-dependent static activity with its flip-weighted latch
transitions, ``k_u`` is the unit's own damped-sine kernel (own phase/shape),
``beta_u`` the probe coupling and ``g`` the device instance gain.

This is the finest-grained model in the package — the "physics" that both
the real measurements in the paper and EMSim's reduced per-stage model sit
on top of.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..uarch.latches import STAGES
from ..uarch.trace import ActivityTrace
from .probe import CENTER, ProbePosition, coupling
from .units import EmUnit


class HardwareEmitter:
    """Synthesizes the analog emission of one device for one trace."""

    def __init__(self, units: Sequence[EmUnit],
                 probe: ProbePosition = CENTER,
                 gain: float = 1.0,
                 clock_scale: float = 1.0):
        self.units = tuple(units)
        self.probe = probe
        self.gain = gain
        self.clock_scale = clock_scale
        self._couplings = np.array([coupling(unit, probe) * unit.polarity
                                    for unit in self.units])

    # ------------------------------------------------------------------
    # per-cycle unit amplitudes
    # ------------------------------------------------------------------
    def unit_amplitudes(self, trace: ActivityTrace) -> np.ndarray:
        """(cycles, units) matrix of raw per-unit activity amplitudes."""
        cycles = trace.num_cycles
        transitions = {stage: trace.transition_matrix(stage)
                       for stage in STAGES}
        classes = {stage: trace.em_classes(stage) for stage in STAGES}
        amplitudes = np.zeros((cycles, len(self.units)))
        for column, unit in enumerate(self.units):
            static = np.fromiter(
                (unit.static_activity(label)
                 for label in classes[unit.stage]),
                dtype=float, count=cycles)
            flips = transitions[unit.stage][:, unit.bit_indices] @ \
                unit.bit_weights
            amplitudes[:, column] = static + flips
        return amplitudes

    # ------------------------------------------------------------------
    # waveform synthesis
    # ------------------------------------------------------------------
    def signal_on_grid(self, trace: ActivityTrace,
                       samples_per_cycle: int,
                       unit_names: Optional[Sequence[str]] = None
                       ) -> np.ndarray:
        """Noiseless emission on the uniform per-cycle sample grid.

        ``unit_names`` restricts synthesis to a subset of sources (used by
        diagnostics that look at one stage in isolation).
        """
        amplitudes = self.unit_amplitudes(trace)
        total = np.zeros(trace.num_cycles * samples_per_cycle)
        for column, unit in enumerate(self.units):
            if unit_names is not None and unit.name not in unit_names:
                continue
            impulses = np.zeros_like(total)
            impulses[::samples_per_cycle] = amplitudes[:, column]
            response = unit.kernel.sampled(samples_per_cycle)
            scaled = self.gain * self._couplings[column]
            # repro: allow[P602] the measured-hardware emitter stays on
            # the seed's direct summation so captured references are
            # bit-stable against the committed model artifacts
            total += scaled * np.convolve(impulses, response)[:len(total)]
        return total

    def per_unit_signals(self, trace: ActivityTrace,
                         samples_per_cycle: int) -> Dict[str, np.ndarray]:
        """Each unit's individual contribution on the uniform grid."""
        return {unit.name: self.signal_on_grid(trace, samples_per_cycle,
                                               unit_names=(unit.name,))
                for unit in self.units}

    def stage_signal_on_grid(self, trace: ActivityTrace, stage: str,
                             samples_per_cycle: int) -> np.ndarray:
        """Combined contribution of all sources in one pipeline stage."""
        names = tuple(unit.name for unit in self.units
                      if unit.stage == stage)
        return self.signal_on_grid(trace, samples_per_cycle,
                                   unit_names=names)

    def continuous(self, trace: ActivityTrace):
        """Return ``y(t)`` in *nominal*-clock cycle units.

        The device's actual clock may be slightly off nominal
        (``clock_scale``); events land at ``n * clock_scale`` and kernels
        stretch accordingly, exactly what a scope with an absolute time
        base sees.
        """
        amplitudes = self.unit_amplitudes(trace)
        couplings = self.gain * self._couplings
        units = self.units
        num_cycles = trace.num_cycles
        scale = self.clock_scale

        def evaluate(times: np.ndarray) -> np.ndarray:
            times = np.asarray(times, dtype=float) / scale
            result = np.zeros_like(times)
            base_cycle = np.floor(times).astype(int)
            for column, unit in enumerate(units):
                support = int(np.ceil(unit.kernel.support_cycles))
                for lag in range(support + 1):
                    cycle = base_cycle - lag
                    valid = (cycle >= 0) & (cycle < num_cycles)
                    if not valid.any():
                        continue
                    tau = times[valid] - cycle[valid]
                    result[valid] += couplings[column] * \
                        amplitudes[cycle[valid], column] * \
                        unit.kernel.evaluate(tau)
            return result

        return evaluate

    def continuous_fast(self, trace: ActivityTrace):
        """Batch-optimized ``y(t)``: same math as :meth:`continuous`.

        Rewrites each damped sine across its integer lags with the angle
        addition formula — ``k(frac + lag)`` becomes a per-sample
        ``(sin, cos, exp)`` triple times per-lag constants — so one unit
        costs three transcendental passes instead of two per lag, and the
        per-(unit, lag) amplitude gathers collapse into a single fancy
        index into a zero-padded amplitude matrix.  The result is
        mathematically identical to :meth:`continuous` but not
        bit-identical (different operation order; observed agreement is
        ~1e-13, far inside the batch engine's 1e-9 contract).  Falls back
        to :meth:`continuous` if any unit carries a non-damped-sine
        kernel.
        """
        from ..signal.kernels import DampedSineKernel
        units = self.units
        if not all(isinstance(unit.kernel, DampedSineKernel)
                   for unit in units):
            return self.continuous(trace)
        amplitudes = self.unit_amplitudes(trace)
        weighted = amplitudes * (self.gain * self._couplings)[None, :]
        num_cycles = trace.num_cycles
        scale = self.clock_scale

        supports = np.array([int(np.ceil(unit.kernel.support_cycles))
                             for unit in units])
        max_lag = int(supports.max())
        lags = np.arange(max_lag + 1)
        t0 = np.array([unit.kernel.t0 for unit in units])
        theta = np.array([unit.kernel.theta for unit in units])
        phase = np.array([unit.kernel.phase for unit in units])
        # (lags, units) constants: cos/sin of the per-lag phase advance,
        # scaled by the per-lag decay; zeroed beyond each unit's support
        lag_angle = 2.0 * np.pi * lags[:, None] / t0[None, :]
        lag_decay = np.exp(-theta[None, :] * lags[:, None])
        in_support = lags[:, None] <= supports[None, :]
        lag_cos = np.where(in_support, np.cos(lag_angle) * lag_decay, 0.0)
        lag_sin = np.where(in_support, np.sin(lag_angle) * lag_decay, 0.0)
        # The lag sums depend on a sample time only through its integer
        # base cycle, so fold them into per-*cycle* tables up front
        # (a tiny convolution over the trace's cycles) — the per-sample
        # work then reduces to one row gather plus the transcendentals.
        # Zero-guard rows on both sides absorb out-of-range cycles.
        pad = max_lag + 1
        padded = np.zeros((num_cycles + 2 * pad, len(units)))
        padded[pad:pad + num_cycles] = weighted
        rows = padded.shape[0]
        cos_table = np.zeros_like(padded)
        sin_table = np.zeros_like(padded)
        for lag in range(max_lag + 1):
            shifted = np.roll(padded, lag, axis=0)
            shifted[:lag] = 0.0
            cos_table += shifted * lag_cos[lag][None, :]
            sin_table += shifted * lag_sin[lag][None, :]
        # fold the per-unit probe phase into the tables too, so the
        # per-sample angle is a bare outer product (one fewer pass):
        #   sin(a f + phi) X + cos(a f + phi) Y
        #     = sin(a f)(X cos phi - Y sin phi)
        #       + cos(a f)(X sin phi + Y cos phi)
        cos_phase, sin_phase = np.cos(phase), np.sin(phase)
        cos_table, sin_table = \
            (cos_table * cos_phase[None, :] -
             sin_table * sin_phase[None, :],
             cos_table * sin_phase[None, :] +
             sin_table * cos_phase[None, :])
        # collapse each cycle's (X, Y) pair to amplitude/phase form:
        #   X sin(a f) + Y cos(a f)  =  R sin(a f + psi)
        # with R = hypot(X, Y), psi = atan2(Y, X) — a few hundred cheap
        # per-cycle transcendentals up front buy one fewer per-sample
        # transcendental pass below (sin instead of sin + cos)
        amp_table = np.hypot(cos_table, sin_table)
        shift_table = np.arctan2(sin_table, cos_table)
        angular = 2.0 * np.pi / t0
        neg_theta = -theta
        # process in fixed-size chunks through preallocated buffers:
        # keeps the working set L2-resident and avoids page-faulting a
        # fresh ~2 MB temporary per elementwise pass on long time grids
        chunk = 4096
        num_units = len(units)
        angle_buf = np.empty((chunk, num_units))
        decay_buf = np.empty((chunk, num_units))

        def evaluate(times: np.ndarray) -> np.ndarray:
            times = np.asarray(times, dtype=float) / scale
            base_cycle = np.floor(times).astype(int)
            frac = times - base_cycle
            index = np.clip(base_cycle + pad, 0, rows - 1)
            result = np.empty(len(times))
            for start in range(0, len(times), chunk):
                stop = min(start + chunk, len(times))
                count = stop - start
                angle = angle_buf[:count]
                decay = decay_buf[:count]
                rows_here = index[start:stop]
                np.multiply(frac[start:stop, None], angular[None, :],
                            out=angle)
                angle += shift_table[rows_here]
                np.sin(angle, out=angle)
                angle *= amp_table[rows_here]
                np.multiply(frac[start:stop, None], neg_theta[None, :],
                            out=decay)
                np.exp(decay, out=decay)
                angle *= decay
                result[start:stop] = angle.sum(axis=1)
            return result

        return evaluate


def stage_couplings(units: Sequence[EmUnit],
                    probe: ProbePosition) -> Dict[str, float]:
    """Mean |coupling| per pipeline stage at a probe position (diagnostic
    for the distance experiments, Fig. 9)."""
    per_stage: Dict[str, list] = {stage: [] for stage in STAGES}
    for unit in units:
        per_stage[unit.stage].append(abs(coupling(unit, probe)))
    return {stage: float(np.mean(values)) if values else 0.0
            for stage, values in per_stage.items()}
