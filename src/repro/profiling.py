"""Lightweight wall-time profiling hooks for the simulation engine.

Campaign-scale workloads (model-building sweeps, TVLA/SAVAT leakage
assessments, batched re-simulation) need their perf trajectory tracked
across PRs.  This module provides a near-zero-overhead :class:`Profiler`
that accumulates per-phase wall time and call counters, can be merged
across worker processes, and serializes to the machine-readable
``BENCH_sim.json`` schema that ``python -m repro bench`` emits.

Design constraints:

* **disabled by default** — every hook first checks a plain boolean, so
  instrumented hot paths pay one attribute load when profiling is off;
* **mergeable** — worker processes return their profiler as a dict and
  the parent folds it in (:meth:`Profiler.merge`), so parallel campaigns
  still produce one coherent profile;
* **machine readable** — :func:`write_bench_json` emits a stable schema
  (``schema``, ``phases``, ``counters``, arbitrary metadata) consumed by
  the perf benchmarks in ``benchmarks/``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = ["PhaseStat", "Profiler", "get_profiler", "enable_profiling",
           "disable_profiling", "monotonic", "set_counter_sink",
           "write_bench_json", "BENCH_SCHEMA", "SUPERVISION_COUNTERS",
           "supervision_counts"]


def monotonic() -> float:
    """High-resolution monotonic timestamp (seconds).

    The one sanctioned clock read for instrumented code outside this
    module: simulation-core files must route timing through here (or
    :meth:`Profiler.phase`) so the ``D102`` determinism lint can
    guarantee no other time dependence exists in the core.  Durations
    derived from it may only feed profiling/benchmark reports — never
    model outputs.
    """
    return time.perf_counter()

BENCH_SCHEMA = "repro-bench/1"
"""Schema tag stamped into every ``BENCH_sim.json`` this package writes."""

SUPERVISION_COUNTERS = (
    "supervise.retries",
    "supervise.timeouts",
    "supervise.crashes",
    "supervise.failures",
    "supervise.rebuilds",
    "supervise.quarantined",
    "supervise.resumed",
    "supervise.checkpointed",
)
"""Counter names the supervised campaign runtime increments.

``retries`` counts requeued attempts, ``timeouts``/``crashes``/
``failures`` classify charged attempt failures (deadline, dead worker,
worker exception), ``rebuilds`` counts pool teardowns forced by hung
workers or broken pipes, ``quarantined`` counts items that exhausted
their retry budget, ``resumed`` counts items served from a checkpoint
journal, and ``checkpointed`` counts successful items appended to one.
"""


_COUNTER_SINK = None
"""Optional ``(name, increment)`` callable mirroring every counter bump.

The compatibility shim behind :mod:`repro.observability.metrics`: when
the metrics registry is enabled it installs itself here, so the legacy
``Profiler.count`` call sites double as metric emitters — even while
the profiler itself is disabled.  ``None`` (the default) costs the hot
path one global load.
"""


def set_counter_sink(sink) -> None:
    """Install (or clear, with ``None``) the counter mirror callable."""
    global _COUNTER_SINK
    _COUNTER_SINK = sink


def supervision_counts(profiler: Optional["Profiler"] = None
                       ) -> Dict[str, int]:
    """Supervision counters as a zero-filled, fixed-order table.

    Reads the given (default: global) profiler's counters so benchmark
    reports and CLI summaries can embed the supervision story of a run
    without caring which counters happened to fire.
    """
    source = profiler if profiler is not None else get_profiler()
    return {name: int(source.counters.get(name, 0))
            for name in SUPERVISION_COUNTERS}


@dataclass
class PhaseStat:
    """Accumulated wall time and call count for one named phase."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float, calls: int = 1) -> None:
        """Fold ``seconds`` of wall time (over ``calls`` calls) in."""
        self.seconds += seconds
        self.calls += calls


@dataclass
class Profiler:
    """Per-phase wall-time and counter accumulator.

    Phases are named hierarchically with dots (``train.capture``,
    ``batch.reconstruct``); counters are plain monotonically increasing
    integers (``captures``, ``kernel_cache_hits``).  All methods are
    no-ops while ``enabled`` is False, so hooks can stay in the hot path
    permanently.
    """

    enabled: bool = False
    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under phase ``name`` (no-op if disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    def add_phase(self, name: str, seconds: float, calls: int = 1) -> None:
        """Directly record ``seconds`` of wall time under ``name``."""
        if not self.enabled:
            return
        self.phases.setdefault(name, PhaseStat()).add(seconds, calls)

    def count(self, name: str, increment: int = 1) -> None:
        """Bump counter ``name`` by ``increment`` (no-op if disabled).

        Always mirrored to the installed counter sink (the metrics
        registry's compatibility shim) before the enabled check, so
        metrics collection does not require ``--profile``.
        """
        if _COUNTER_SINK is not None:
            _COUNTER_SINK(name, increment)
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + increment

    # ------------------------------------------------------------------
    # aggregation / reporting
    # ------------------------------------------------------------------
    def merge(self, other: "Profiler | dict") -> None:
        """Fold another profiler (or its :meth:`to_dict`) into this one.

        Used to aggregate worker-process profiles into the parent's; the
        merge always applies, even when this profiler is disabled, so a
        disabled parent can still collect an explicit child profile.
        """
        if isinstance(other, Profiler):
            other = other.to_dict()
        for name, stat in other.get("phases", {}).items():
            self.phases.setdefault(name, PhaseStat()).add(
                float(stat["seconds"]), int(stat["calls"]))
        for name, value in other.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of all phases and counters."""
        return {
            "phases": {name: {"seconds": stat.seconds, "calls": stat.calls}
                       for name, stat in sorted(self.phases.items())},
            "counters": dict(sorted(self.counters.items())),
        }

    def summary(self) -> str:
        """Human-readable table (printed by the CLI's ``--profile``)."""
        if not self.phases and not self.counters:
            return "profile: no phases recorded"
        lines = ["phase                                seconds      calls"]
        for name, stat in sorted(self.phases.items(),
                                 key=lambda item: -item[1].seconds):
            lines.append(f"{name:<36s} {stat.seconds:8.3f} {stat.calls:10d}")
        if self.counters:
            lines.append("counters: " + ", ".join(
                f"{name}={value}"
                for name, value in sorted(self.counters.items())))
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all accumulated phases and counters."""
        self.phases.clear()
        self.counters.clear()


_GLOBAL = Profiler(enabled=False)


def get_profiler() -> Profiler:
    """The process-global profiler the built-in hooks report to."""
    return _GLOBAL


def enable_profiling() -> Profiler:
    """Turn the global profiler on (the CLI's ``--profile``)."""
    _GLOBAL.enabled = True
    return _GLOBAL


def disable_profiling() -> Profiler:
    """Turn the global profiler off and return it (tests clean up with
    this so one test's phases never leak into another's)."""
    _GLOBAL.enabled = False
    return _GLOBAL


def write_bench_json(path: str, metadata: Optional[dict] = None,
                     profiler: Optional[Profiler] = None) -> dict:
    """Write the machine-readable benchmark report (``BENCH_sim.json``).

    ``metadata`` carries the experiment-specific numbers (program count,
    worker counts, wall times, speedup, max abs diff); the profiler's
    phases and counters ride along.  Returns the written document.
    """
    profiler = profiler if profiler is not None else _GLOBAL
    document = {"schema": BENCH_SCHEMA}
    document.update(metadata or {})
    document.update(profiler.to_dict())
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    os.replace(tmp_path, path)
    return document
