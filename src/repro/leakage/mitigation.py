"""Automated leakage mitigation: branch-timing balancing.

The paper's introduction motivates compilers that "use simulation models
to optimize for reduced leakage".  This module implements one such pass:
for a secret-dependent conditional skip

    beqz  secret, L          beqz  secret, PAD
    <block>           ==>    <block>
L:  ...                      j     L
                        PAD: <block with destinations -> x0>
                        L:  ...

the taken path, which originally skipped ``<block>`` entirely, now
executes a timing-equivalent *dummy clone* (same opcodes, results
discarded into x0) — collapsing the SPA duration channel the block's
conditional execution created, while leaving the architectural result
untouched.  EMSim then *verifies* the mitigation by re-running the SPA on
the simulated signal.

The pass is deliberately conservative: it only transforms blocks of pure
computation (no memory accesses or control flow) and refuses programs
with indirect jumps, whose targets it cannot relocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.program import Program, TEXT_BASE

MAX_BLOCK = 8
"""Largest skip-block (instructions) the pass will balance."""


# MitigationError lives in the typed error hierarchy (exit code 22) and
# is re-exported here, its historical home, for existing callers.
from ..robustness.errors import MitigationError


def _is_cloneable(instr: Instruction) -> bool:
    """True if the instruction can be neutralized by retargeting to x0."""
    if instr.is_load or instr.is_store or instr.is_control_flow:
        return False
    if instr.name in ("ecall", "ebreak", "fence"):
        return False
    return instr.destination_register is not None or instr.is_nop


def _clone_harmless(instr: Instruction) -> Instruction:
    """Same operation, result discarded (rd = x0): equal unit timing."""
    return Instruction(instr.name, rd=0, rs1=instr.rs1, rs2=instr.rs2,
                       imm=instr.imm)


def _branch_target_index(index: int, instr: Instruction) -> int:
    return index + instr.imm // 4


def _relocate(instructions: List[Instruction],
              mapping: Dict[int, int],
              new_length: int) -> List[Instruction]:
    """Rewrite branch/jal offsets after indices moved per ``mapping``."""
    relocated = []
    position = {new: old for old, new in mapping.items()}
    for new_index, instr in enumerate(instructions):
        if (instr.is_branch or instr.name == "jal") and \
                new_index in position:
            old_index = position[new_index]
            old_target = _branch_target_index(old_index, instr)
            if old_target in mapping:
                new_imm = 4 * (mapping[old_target] - new_index)
                instr = Instruction(instr.name, rd=instr.rd,
                                    rs1=instr.rs1, rs2=instr.rs2,
                                    imm=new_imm)
        relocated.append(instr)
    return relocated


@dataclass
class BalanceReport:
    """What the balancing pass did."""

    transformed: int
    skipped: int
    added_instructions: int


def _find_candidate(instructions: List[Instruction]
                    ) -> Optional[Tuple[int, int]]:
    """First (branch index, block length) that is safe to balance and
    not yet balanced (a balanced branch targets a jal-guarded clone)."""
    for index, instr in enumerate(instructions):
        if not instr.is_branch or instr.imm <= 4:
            continue
        block_length = instr.imm // 4 - 1
        if not 1 <= block_length <= MAX_BLOCK:
            continue
        target = _branch_target_index(index, instr)
        if target > len(instructions):
            continue
        block = instructions[index + 1:index + 1 + block_length]
        if not all(_is_cloneable(b) for b in block):
            continue
        # already balanced? the instruction before the target is our j L
        return index, block_length
    return None


def balance_branch_timing(program: Program) -> Tuple[Program,
                                                     BalanceReport]:
    """Apply the timing-balancing transform to every eligible branch."""
    if any(instr.name == "jalr" or instr.name == "auipc"
           for instr in program.instructions):
        raise MitigationError("cannot relocate programs with indirect "
                              "jumps or pc-relative addressing")
    instructions = list(program.instructions)
    symbols = dict(program.symbols)
    transformed = 0
    skipped = 0
    guard = 0
    while True:
        guard += 1
        if guard > 100:
            break
        candidate = _find_candidate(instructions)
        if candidate is None:
            break
        branch_index, block_length = candidate
        block = instructions[branch_index + 1:
                             branch_index + 1 + block_length]
        clone = [_clone_harmless(instr) for instr in block]
        insert_at = branch_index + 1 + block_length

        # index mapping: everything at or past the insertion point shifts
        # by len(clone) + 1 (the guarding jal)
        shift = len(clone) + 1
        mapping = {old: (old if old < insert_at else old + shift)
                   for old in range(len(instructions) + 1)}
        new_instructions = (
            instructions[:insert_at] +
            [Instruction("jal", rd=0, imm=4 * (len(clone) + 1))] +
            clone +
            instructions[insert_at:])
        new_instructions = _relocate(new_instructions, mapping,
                                     len(new_instructions))
        # retarget the balanced branch at the clone (just after the jal)
        branch = new_instructions[branch_index]
        new_instructions[branch_index] = Instruction(
            branch.name, rs1=branch.rs1, rs2=branch.rs2,
            imm=4 * (insert_at + 1 - branch_index))
        # code labels past the insertion point move with their code
        text_end = TEXT_BASE + 4 * (len(new_instructions) - shift)
        for label, address in list(symbols.items()):
            if TEXT_BASE <= address < text_end and address % 4 == 0:
                old_index = (address - TEXT_BASE) // 4
                symbols[label] = TEXT_BASE + 4 * mapping[old_index]
        instructions = new_instructions
        transformed += 1

    report = BalanceReport(
        transformed=transformed, skipped=skipped,
        added_instructions=len(instructions) - len(program.instructions))
    return Program(instructions=instructions, data=dict(program.data),
                   symbols=symbols, entry=program.entry,
                   name=f"{program.name}+balanced"), report
