"""Information-theoretic leakage capacity and instruction profiling.

Two quantitative tools the paper's related work motivates:

* :func:`mutual_information` — a binned estimator of I(secret; signal
  feature), the "information leakage capacity" of Yilmaz et al. that the
  paper cites ([40], [60]); computed on *simulated* signals it gives a
  design-stage upper bound on what any attacker can learn per trace.
* :class:`InstructionProfiler` — Spectral-Profiling/EDDIE-style template
  matching: per-class mean signature waveforms built from training
  probes, used to recognize which instruction class executed in each
  cycle of an unknown signal.  High recognition rates demonstrate the
  signal's program-tracking content; they also validate that EMSim's
  simulated signals carry the same distinguishing features as the
  bench's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..signal.metrics import cross_correlation, normalize_energy


def mutual_information(secrets: Sequence[int],
                       features: Sequence[float],
                       num_bins: int = 8) -> float:
    """Binned mutual information I(secret; feature) in bits.

    ``secrets`` are discrete (e.g. a key bit or byte); ``features`` are
    per-trace scalars (e.g. the amplitude at a target cycle).  The
    estimator bins the feature into ``num_bins`` equiprobable bins.
    """
    secrets = np.asarray(secrets)
    features = np.asarray(features, dtype=float)
    if secrets.shape != features.shape:
        raise ValueError("secrets and features must align")
    if len(secrets) < 4:
        raise ValueError("need at least 4 observations")
    # equiprobable feature bins (quantiles)
    edges = np.quantile(features, np.linspace(0, 1, num_bins + 1)[1:-1])
    feature_bins = np.searchsorted(edges, features)
    secret_values = np.unique(secrets)
    total = len(secrets)
    information = 0.0
    for secret in secret_values:
        secret_mask = secrets == secret
        p_secret = secret_mask.mean()
        for bin_index in range(num_bins):
            joint_count = int(np.count_nonzero(
                secret_mask & (feature_bins == bin_index)))
            if joint_count == 0:
                continue
            joint = joint_count / total
            p_bin = float((feature_bins == bin_index).mean())
            information += joint * np.log2(joint / (p_secret * p_bin))
    return max(0.0, float(information))


def capacity_per_cycle(secrets: Sequence[int],
                       traces: Sequence[np.ndarray],
                       samples_per_cycle: int,
                       num_bins: int = 8) -> np.ndarray:
    """Mutual information between the secret and each cycle's energy.

    Returns a (cycles,) array — the design-stage leakage map showing
    *when* the secret leaks (the simulated analogue of Fig. 10's TVLA
    trace, in bits).
    """
    length = min(len(trace) for trace in traces)
    num_cycles = length // samples_per_cycle
    matrix = np.vstack([np.abs(np.asarray(trace[:length], dtype=float))
                        .reshape(num_cycles, samples_per_cycle).sum(axis=1)
                        for trace in traces])
    return np.array([mutual_information(secrets, matrix[:, cycle],
                                        num_bins=num_bins)
                     for cycle in range(num_cycles)])


# ----------------------------------------------------------------------
# template-based instruction recognition
# ----------------------------------------------------------------------
@dataclass
class InstructionProfiler:
    """Per-class signature templates + nearest-template classification."""

    samples_per_cycle: int
    window_cycles: int = 5
    templates: Dict[str, np.ndarray] = field(default_factory=dict)

    def _window(self, signal: np.ndarray, cycle: int) -> np.ndarray:
        start = cycle * self.samples_per_cycle
        stop = (cycle + self.window_cycles) * self.samples_per_cycle
        return np.asarray(signal[start:stop], dtype=float)

    def fit(self, labelled: Dict[str, List[Tuple[np.ndarray, int]]]
            ) -> "InstructionProfiler":
        """Build templates from (signal, anchor-cycle) example lists."""
        for label, examples in labelled.items():
            windows = [normalize_energy(self._window(signal, cycle))
                       for signal, cycle in examples]
            length = min(len(window) for window in windows)
            self.templates[label] = np.mean(
                [window[:length] for window in windows], axis=0)
        return self

    def classify(self, signal: np.ndarray, cycle: int) -> Tuple[str,
                                                                float]:
        """Best-matching class and its correlation score for a window."""
        if not self.templates:
            raise ValueError("profiler has no templates; call fit()")
        window = normalize_energy(self._window(signal, cycle))
        best_label, best_score = "", -np.inf
        for label, template in self.templates.items():
            length = min(len(window), len(template))
            score = cross_correlation(window[:length], template[:length])
            if score > best_score:
                best_label, best_score = label, score
        return best_label, float(best_score)

    def accuracy(self, examples: Dict[str, List[Tuple[np.ndarray, int]]]
                 ) -> float:
        """Fraction of labelled windows classified correctly."""
        correct = 0
        total = 0
        for label, cases in examples.items():
            for signal, cycle in cases:
                predicted, _ = self.classify(signal, cycle)
                correct += predicted == label
                total += 1
        return correct / total if total else 0.0
