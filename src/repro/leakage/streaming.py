"""Streaming (one-pass) statistics for leakage assessments.

TVLA's Welch t-test only needs three per-sample moments of each trace
group — count, mean, and the sum of squared deviations — yet the batch
path materializes a full ``(traces, samples)`` matrix per group before
reducing it.  At campaign scale (thousands of traces, thousands of
samples each) those matrices dominate peak memory.

This module folds traces into Welford accumulators as they arrive, so a
fixed-vs-random assessment runs in O(samples) memory regardless of
trace count, with t-values matching the batch
:func:`~repro.leakage.tvla.welch_t_statistic` to well inside 1e-9
(asserted by the property tests and in ``repro bench --mode signal``).

Truncation semantics mirror :func:`~repro.leakage.tvla.tvla`: every
trace is evaluated over the minimum length seen across *both* groups —
per-sample moments are prefix-stable, so a shorter late arrival simply
truncates the accumulated state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..observability import record_campaign
from ..parallel import resolve_workers
from ..robustness.errors import CampaignError, ConfigurationError
from .tvla import TVLA_THRESHOLD, TVLAResult, collect_tvla_traces

__all__ = ["WelfordAccumulator", "StreamingTTest", "streaming_tvla",
           "collect_streaming_tvla"]


class WelfordAccumulator:
    """One-pass per-sample count/mean/M2 over a stream of traces.

    Welford's update is numerically stable (no catastrophic
    mean-of-squares cancellation) and needs only the running state —
    three O(samples) arrays — to recover the mean, the unbiased
    variance, and everything a Welch t-test derives from them.

    Accumulators over differing trace lengths truncate to the shortest
    length seen: the retained prefix of the running state is exactly
    what accumulating pre-truncated traces would have produced.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None

    @property
    def length(self) -> Optional[int]:
        """Current per-trace sample length (None before the first add)."""
        return None if self._mean is None else len(self._mean)

    def truncate(self, length: int) -> None:
        """Restrict the accumulated state to the first ``length`` samples."""
        if self._mean is not None and length < len(self._mean):
            self._mean = self._mean[:length]
            self._m2 = self._m2[:length]

    def add(self, trace: np.ndarray) -> None:
        """Fold one trace into the running moments."""
        trace = np.asarray(trace, dtype=float).ravel()
        if self._mean is None:
            self.count = 1
            self._mean = trace.copy()
            self._m2 = np.zeros_like(self._mean)
            return
        self.truncate(len(trace))
        trace = trace[:len(self._mean)]
        self.count += 1
        delta = trace - self._mean
        self._mean = self._mean + delta / self.count
        self._m2 = self._m2 + delta * (trace - self._mean)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold another accumulator's state into this one (Chan's
        parallel combination — what a per-worker sharded assessment
        reduces with)."""
        if other._mean is None:
            return
        if self._mean is None:
            self.count = other.count
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            return
        length = min(len(self._mean), len(other._mean))
        self.truncate(length)
        total = self.count + other.count
        delta = other._mean[:length] - self._mean
        self._mean = self._mean + delta * (other.count / total)
        self._m2 = (self._m2 + other._m2[:length] +
                    delta * delta * (self.count * other.count / total))
        self.count = total

    @property
    def mean(self) -> np.ndarray:
        """Per-sample running mean (empty array before the first add)."""
        if self._mean is None:
            return np.zeros(0)
        return self._mean

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Per-sample variance of the accumulated traces."""
        if self._mean is None:
            return np.zeros(0)
        if self.count <= ddof:
            return np.full_like(self._m2, np.nan)
        return self._m2 / (self.count - ddof)


class StreamingTTest:
    """Streaming fixed-vs-random Welch t-test (TVLA in O(samples)).

    Feed traces with :meth:`add_fixed` / :meth:`add_random` in any
    order; both accumulators share the minimum-length truncation the
    batch :func:`~repro.leakage.tvla.tvla` applies up front, so
    :meth:`result` matches the batch t-values regardless of arrival
    order.
    """

    def __init__(self) -> None:
        self.fixed = WelfordAccumulator()
        self.random = WelfordAccumulator()

    def _align(self) -> int:
        """Truncate both groups to the shared minimum length."""
        lengths = [acc.length for acc in (self.fixed, self.random)
                   if acc.length is not None]
        if not lengths:
            return 0
        length = min(lengths)
        self.fixed.truncate(length)
        self.random.truncate(length)
        return length

    def add_fixed(self, trace: np.ndarray) -> None:
        """Fold one fixed-input trace."""
        self.fixed.add(trace)
        self._align()

    def add_random(self, trace: np.ndarray) -> None:
        """Fold one random-input trace."""
        self.random.add(trace)
        self._align()

    def t_values(self) -> np.ndarray:
        """Per-sample Welch t-statistics of the accumulated state.

        Matches :func:`~repro.leakage.tvla.welch_t_statistic` on the
        same (truncated) trace groups: zero-variance sample points
        yield t = 0, and fewer than two traces in either group is a
        :class:`~repro.robustness.errors.ConfigurationError` (a
        ``ValueError`` by inheritance, like the batch contract).
        """
        if self.fixed.count < 2 or self.random.count < 2:
            raise ConfigurationError("each group needs at least two traces")
        length = self._align()
        var_a = self.fixed.variance()[:length] / self.fixed.count
        var_b = self.random.variance()[:length] / self.random.count
        denominator = np.sqrt(var_a + var_b)
        difference = self.fixed.mean[:length] - self.random.mean[:length]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(denominator > 0,
                            difference / denominator, 0.0)

    def result(self, threshold: float = TVLA_THRESHOLD) -> TVLAResult:
        """The accumulated assessment as a standard :class:`TVLAResult`."""
        return TVLAResult(t_values=self.t_values(), threshold=threshold)


def streaming_tvla(traces_fixed: Iterable[np.ndarray],
                   traces_random: Iterable[np.ndarray],
                   threshold: float = TVLA_THRESHOLD) -> TVLAResult:
    """Fixed-vs-random TVLA folding traces one at a time.

    The O(samples)-memory equivalent of :func:`~repro.leakage.tvla.tvla`:
    accepts any iterables (generators included — traces are never
    retained), raises a typed
    :class:`~repro.robustness.errors.CampaignError` naming the empty
    group when one contributes no traces, and agrees with the batch
    t-values to well inside 1e-9.
    """
    accumulator = StreamingTTest()
    for trace in traces_fixed:
        accumulator.add_fixed(trace)
    for trace in traces_random:
        accumulator.add_random(trace)
    for name, group in (("fixed", accumulator.fixed),
                        ("random", accumulator.random)):
        if group.count == 0:
            raise CampaignError(
                f"TVLA needs traces in both groups: the {name} trace "
                f"group is empty")
    return accumulator.result(threshold)


def collect_streaming_tvla(
        trace_source: Callable[[Sequence[int]], np.ndarray],
        fixed_input: Sequence[int],
        num_traces: int,
        rng: np.random.Generator,
        input_length: Optional[int] = None,
        threshold: float = TVLA_THRESHOLD,
        workers: int = 1,
        item_timeout: Optional[float] = None,
        max_item_retries: int = 2,
        checkpoint: Optional[str] = None,
        resume: bool = False) -> TVLAResult:
    """Collect and assess a fixed-vs-random campaign in one pass.

    The streaming companion to
    :func:`~repro.leakage.tvla.collect_tvla_traces` + ``tvla()``: for a
    flag-free serial run every captured trace folds straight into the
    Welford state and is dropped, so the assessment's memory stays
    O(samples) no matter how many traces the campaign collects.  Random
    inputs are drawn from ``rng`` in exactly the batch path's order, so
    the t-values are deterministic and match the batch result to well
    inside 1e-9.

    Supervised or parallel runs (``workers > 1``, a timeout, or a
    checkpoint) delegate collection to
    :func:`~repro.leakage.tvla.collect_tvla_traces` — the supervision
    ledger and checkpoint journal formats are untouched — and fold the
    collected groups afterwards.
    """
    supervise = (item_timeout is not None or checkpoint is not None or
                 resolve_workers(workers) > 1)
    if supervise:
        fixed, random = collect_tvla_traces(
            trace_source, fixed_input, num_traces, rng,
            input_length=input_length, workers=workers,
            item_timeout=item_timeout,
            max_item_retries=max_item_retries,
            checkpoint=checkpoint, resume=resume)
        return streaming_tvla(fixed, random, threshold)
    input_length = input_length or len(fixed_input)
    accumulator = StreamingTTest()
    meta = {"campaign": "tvla", "traces": int(num_traces),
            "input_length": int(input_length), "streaming": True}
    with record_campaign("tvla", dict(meta, workers=1)) as recording:
        for _ in range(num_traces):
            accumulator.add_fixed(trace_source(list(fixed_input)))
        for _ in range(num_traces):
            value = list(rng.integers(0, 256, size=input_length))
            accumulator.add_random(trace_source(value))
        recording.set("items", 2 * num_traces)
    for name, group in (("fixed", accumulator.fixed),
                        ("random", accumulator.random)):
        if group.count == 0:
            raise CampaignError(
                f"TVLA needs traces in both groups: the {name} trace "
                f"group is empty")
    return accumulator.result(threshold)
