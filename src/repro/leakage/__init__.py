"""Leakage-assessment use cases: TVLA, SAVAT, AES, hardware debugging."""

from .aes import (DEFAULT_KEY, FIPS_CIPHERTEXT, FIPS_KEY, FIPS_PLAINTEXT,
                  SBOX, aes128_encrypt_reference, aes_program,
                  key_schedule, read_ciphertext)
from .debugging import (DebugReport, Deviation, UnitCheck,
                        buggy_multiplier, calibrated_deficit,
                        compare_to_reference, multiplier_stress_program,
                        unit_relative_check)
from .capacity import (InstructionProfiler, capacity_per_cycle,
                       mutual_information)
from .mitigation import (BalanceReport, MitigationError,
                         balance_branch_timing)
from .savat import (SAVAT_INSTRUCTIONS, SavatMeasurement,
                    SimulatorSignalSource, format_matrix, savat_matrix,
                    savat_pair, savat_program, savat_value)
from .spa import (SpaResult, amplitude_profile, duration_separation,
                  iteration_starts, recover_exponent)
from .tvla import (TVLA_THRESHOLD, TVLAResult, collect_tvla_traces, tvla,
                   welch_t_statistic)

__all__ = [
    "DEFAULT_KEY",
    "DebugReport",
    "Deviation",
    "FIPS_CIPHERTEXT",
    "FIPS_KEY",
    "FIPS_PLAINTEXT",
    "SAVAT_INSTRUCTIONS",
    "SBOX",
    "BalanceReport",
    "InstructionProfiler",
    "SavatMeasurement",
    "SimulatorSignalSource",
    "SpaResult",
    "TVLAResult",
    "TVLA_THRESHOLD",
    "aes128_encrypt_reference",
    "UnitCheck",
    "MitigationError",
    "aes_program",
    "buggy_multiplier",
    "amplitude_profile",
    "balance_branch_timing",
    "calibrated_deficit",
    "capacity_per_cycle",
    "collect_tvla_traces",
    "compare_to_reference",
    "duration_separation",
    "format_matrix",
    "iteration_starts",
    "key_schedule",
    "multiplier_stress_program",
    "mutual_information",
    "read_ciphertext",
    "recover_exponent",
    "savat_matrix",
    "savat_pair",
    "savat_program",
    "savat_value",
    "tvla",
    "unit_relative_check",
    "welch_t_statistic",
]
