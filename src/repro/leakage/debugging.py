"""Hardware debugging via EM reference signals (paper §VI-B, Fig. 11).

EMSim's signal is treated as the *expected* ("golden") emission; a
significant deviation of the measured signal from it localizes a hardware
bug — with zero on-chip test infrastructure.  The paper's case study is a
multiplier that silently uses only the lower 8 bits of each 16-bit
operand, radiating much less than it should in its final Execute cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..isa.instructions import Instruction
from ..signal.metrics import per_cycle_similarities
from ..uarch.trace import ActivityTrace


def buggy_multiplier(instr: Instruction, a: int, b: int) -> Optional[int]:
    """The paper's Fig. 11 defect: MUL only multiplies the low 8 bits.

    Returns None for non-MUL instructions so the healthy ALU handles
    them (this is the ``alu_bug`` hook signature of the pipeline).
    """
    if instr.name != "mul":
        return None
    return ((a & 0xFF) * (b & 0xFF)) & 0xFFFFFFFF


@dataclass
class Deviation:
    """One suspicious cycle where the measurement left the reference."""

    cycle: int
    similarity: float
    stage_labels: List[str]

    def __str__(self) -> str:
        labels = ", ".join(f"{stage}={label}" for stage, label in
                           zip("FDEMW", self.stage_labels))
        return (f"cycle {self.cycle}: similarity {self.similarity:.2f} "
                f"({labels})")


@dataclass
class DebugReport:
    """Outcome of matching a measured signal against the reference."""

    deviations: List[Deviation]
    mean_similarity: float
    threshold: float

    @property
    def suspicious(self) -> bool:
        """True when any cycle deviates beyond the detection threshold."""
        return bool(self.deviations)

    def implicated_instructions(self) -> List[str]:
        """Execute-stage occupants at the deviating cycles (most bugs in
        the paper's scenario live in a functional unit)."""
        return sorted({dev.stage_labels[2] for dev in self.deviations})


def multiplier_stress_program(num_muls: int = 32, seed: int = 5,
                              padding: int = 3):
    """Unrolled sequence of MULs with random 32-bit operands.

    Drives the multiplier hard so its final-cycle emission statistics are
    well sampled; the buggy low-8-bit multiplier produces far fewer result
    bit-flips on wide random operands.
    """
    import random

    from ..isa.instructions import NOP
    from ..workloads.generators import wrap_program

    rng = random.Random(seed)
    code = []
    for _ in range(num_muls):
        for register in (8, 9):
            value = rng.getrandbits(32)
            upper = ((value + 0x800) >> 12) & 0xFFFFF
            lower = value & 0xFFF
            if lower >= 0x800:
                lower -= 0x1000
            code.append(Instruction("lui", rd=register, imm=upper))
            code.append(Instruction("addi", rd=register, rs1=register,
                                    imm=lower))
        code.append(Instruction("mul", rd=5, rs1=8, rs2=9))
        code.extend([NOP] * padding)
    return wrap_program(code, name=f"mul_stress_{num_muls}",
                        seed_registers=True)


@dataclass
class UnitCheck:
    """Relative amplitude check of one functional unit's signature."""

    em_class: str
    unit_ratio: float        # measured/simulated at the unit's cycles
    global_ratio: float      # measured/simulated at all other active cycles
    cycles_checked: int
    tolerance: float

    @property
    def relative_deficit(self) -> float:
        """How far below the global calibration the unit's emission sits
        (0 = perfectly consistent, >0 = unit quieter than expected)."""
        if self.global_ratio == 0:
            return 0.0
        return 1.0 - self.unit_ratio / self.global_ratio

    @property
    def suspicious(self) -> bool:
        """True when the unit radiates significantly less than the
        reference model predicts, relative to the rest of the chip."""
        return self.relative_deficit > self.tolerance


def unit_relative_check(simulated_amplitudes: np.ndarray,
                        measured_amplitudes: np.ndarray,
                        trace: ActivityTrace,
                        em_class: str = "muldiv_final",
                        stage: str = "E",
                        tolerance: float = 0.15) -> UnitCheck:
    """Check one unit's emissions against the EMSim reference.

    Compares the measured/simulated amplitude ratio at the cycles where
    ``em_class`` is active in ``stage`` against the same ratio elsewhere.
    Self-calibrating: a global model bias affects both ratios equally, so
    only a *localized* deficit — the paper's broken-multiplier signature —
    trips the check.
    """
    cycles = min(len(simulated_amplitudes), len(measured_amplitudes),
                 trace.num_cycles)
    unit_cycles, other_cycles = [], []
    for cycle in range(cycles):
        occ = trace.occupancy[stage][cycle]
        if not occ.active:
            continue
        if occ.em_class() == em_class:
            unit_cycles.append(cycle)
        else:
            other_cycles.append(cycle)
    if not unit_cycles:
        raise ValueError(f"no active {em_class!r} cycles in trace")

    def ratio(indices):
        sim_sum = float(np.abs(simulated_amplitudes[indices]).sum())
        meas_sum = float(np.abs(measured_amplitudes[indices]).sum())
        return meas_sum / sim_sum if sim_sum > 0 else 0.0

    return UnitCheck(em_class=em_class,
                     unit_ratio=ratio(np.asarray(unit_cycles)),
                     global_ratio=ratio(np.asarray(other_cycles)),
                     cycles_checked=len(unit_cycles),
                     tolerance=tolerance)


def calibrated_deficit(test: "UnitCheck", calibration: "UnitCheck") -> float:
    """Unit-emission deficit of a device under test vs a known-good unit.

    Both checks are run against the same EMSim reference, so any model
    bias at the unit's cycles cancels; what remains is how much quieter
    the tested device's unit is than the golden device's.  Positive values
    mean the unit radiates less than it should (the Fig. 11 signature).
    """
    test_rel = test.unit_ratio / test.global_ratio
    calibration_rel = calibration.unit_ratio / calibration.global_ratio
    if calibration_rel == 0:
        return 0.0
    return 1.0 - test_rel / calibration_rel


def compare_to_reference(reference_signal: np.ndarray,
                         measured_signal: np.ndarray,
                         trace: ActivityTrace,
                         samples_per_cycle: int,
                         threshold: float = 0.6) -> DebugReport:
    """Flag cycles where the measured signal deviates from the reference.

    ``trace`` must be the reference (simulated) execution so deviating
    cycles can be attributed to the instructions in flight.
    """
    scores = per_cycle_similarities(reference_signal, measured_signal,
                                    samples_per_cycle)
    deviations = []
    for cycle, score in enumerate(scores):
        if score >= threshold or cycle >= trace.num_cycles:
            continue
        labels = [trace.occupancy[stage][cycle].label()
                  for stage in ("F", "D", "E", "M", "W")]
        deviations.append(Deviation(cycle=cycle, similarity=float(score),
                                    stage_labels=labels))
    return DebugReport(deviations=deviations,
                       mean_similarity=float(scores.mean()),
                       threshold=threshold)
