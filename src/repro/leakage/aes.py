"""AES-128 for the RV32IM core, plus a pure-Python reference.

The paper's TVLA use case (§VI-A, Fig. 10) runs AES-128 on the RISC-V
processor and compares leakage assessments of measured vs simulated
signals.  This module generates a byte-oriented AES-128 encryption in
RV32IM assembly (S-box and round keys as data-memory tables, fully
key-independent control flow) and provides the standard reference
implementation used to verify it.

The generated program pre-warms the data cache over all tables so that the
encryption itself has a data-independent cycle count — traces for
different plaintexts align cycle-for-cycle, as TVLA requires.
"""

from __future__ import annotations

from typing import List, Sequence

from ..isa.assembler import assemble
from ..isa.program import Program

# ----------------------------------------------------------------------
# GF(2^8) arithmetic and the S-box, computed (not hard-coded)
# ----------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8) (0 maps to 0)."""
    if a == 0:
        return 0
    # a^254 = a^-1 in GF(2^8)
    result, power, exponent = 1, a, 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _affine(value: int) -> int:
    """The S-box affine transformation over GF(2)."""
    result = 0
    for bit in range(8):
        parity = ((value >> bit) ^ (value >> ((bit + 4) % 8)) ^
                  (value >> ((bit + 5) % 8)) ^ (value >> ((bit + 6) % 8)) ^
                  (value >> ((bit + 7) % 8)) ^ (0x63 >> bit)) & 1
        result |= parity << bit
    return result


SBOX: List[int] = [_affine(_gf_inverse(value)) for value in range(256)]
"""The AES S-box, derived from first principles."""

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def key_schedule(key: Sequence[int]) -> List[List[int]]:
    """AES-128 key expansion: 16-byte key -> 11 round keys of 16 bytes."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for index in range(4, 44):
        temp = list(words[index - 1])
        if index % 4 == 0:
            temp = temp[1:] + temp[:1]                     # RotWord
            temp = [SBOX[byte] for byte in temp]           # SubWord
            temp[0] ^= RCON[index // 4 - 1]
        words.append([a ^ b for a, b in zip(words[index - 4], temp)])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(11)]


def _xtime(value: int) -> int:
    doubled = (value << 1) & 0xFF
    return doubled ^ 0x1B if value & 0x80 else doubled


def aes128_encrypt_reference(key: Sequence[int],
                             plaintext: Sequence[int],
                             rounds: int = 10) -> List[int]:
    """Reference AES-128 encryption (state bytes in column-major order).

    ``rounds`` < 10 gives a reduced-round variant (used to shorten test
    workloads); the final round always skips MixColumns.
    """
    if len(plaintext) != 16:
        raise ValueError("plaintext must be 16 bytes")
    round_keys = key_schedule(key)
    state = [plaintext[i] ^ round_keys[0][i] for i in range(16)]
    for round_index in range(1, rounds + 1):
        state = [SBOX[byte] for byte in state]             # SubBytes
        shifted = list(state)                              # ShiftRows
        for row in range(1, 4):
            for col in range(4):
                shifted[row + 4 * col] = \
                    state[row + 4 * ((col + row) % 4)]
        state = shifted
        if round_index != rounds:                          # MixColumns
            mixed = list(state)
            for col in range(4):
                a = state[4 * col:4 * col + 4]
                b = [_xtime(byte) for byte in a]
                mixed[4 * col + 0] = b[0] ^ a[1] ^ b[1] ^ a[2] ^ a[3]
                mixed[4 * col + 1] = a[0] ^ b[1] ^ a[2] ^ b[2] ^ a[3]
                mixed[4 * col + 2] = a[0] ^ a[1] ^ b[2] ^ a[3] ^ b[3]
                mixed[4 * col + 3] = a[0] ^ b[0] ^ a[1] ^ a[2] ^ b[3]
            state = mixed
        round_key = round_keys[round_index]
        state = [state[i] ^ round_key[i] for i in range(16)]
    return state


# ----------------------------------------------------------------------
# assembly generation
# ----------------------------------------------------------------------
SBOX_BASE = 0x0001_0000
RK_BASE = 0x0001_0200
STATE_BASE = 0x0001_0300
CT_BASE = 0x0001_0340
"""Data-memory layout of the generated AES program."""

# register conventions inside the generated code
_SBOX, _RK, _ST = "s0", "s1", "s2"


def _emit_add_round_key(lines: List[str], round_index: int) -> None:
    lines.append(f"    # AddRoundKey round {round_index}")
    for byte in range(16):
        offset = 16 * round_index + byte
        lines.append(f"    lbu t0, {byte}({_ST})")
        lines.append(f"    lbu t1, {offset}({_RK})")
        lines.append("    xor t0, t0, t1")
        lines.append(f"    sb t0, {byte}({_ST})")


def _emit_sub_bytes(lines: List[str]) -> None:
    lines.append("    # SubBytes")
    for byte in range(16):
        lines.append(f"    lbu t0, {byte}({_ST})")
        lines.append(f"    add t1, {_SBOX}, t0")
        lines.append("    lbu t0, 0(t1)")
        lines.append(f"    sb t0, {byte}({_ST})")


def _emit_shift_rows(lines: List[str]) -> None:
    lines.append("    # ShiftRows")
    for row in range(1, 4):
        registers = ["t0", "t1", "t2", "t3"]
        for col in range(4):
            lines.append(f"    lbu {registers[col]}, "
                         f"{row + 4 * col}({_ST})")
        for col in range(4):
            source = registers[(col + row) % 4]
            lines.append(f"    sb {source}, {row + 4 * col}({_ST})")


def _emit_xtime(lines: List[str], source: str, dest: str) -> None:
    """dest = xtime(source), branch-free (constant time)."""
    lines.append(f"    srli t5, {source}, 7")
    lines.append("    sub t5, zero, t5")     # 0x00000000 or 0xFFFFFFFF
    lines.append("    andi t5, t5, 0x1b")
    lines.append(f"    slli t6, {source}, 1")
    lines.append("    andi t6, t6, 0xff")
    lines.append(f"    xor {dest}, t6, t5")


def _emit_mix_columns(lines: List[str]) -> None:
    lines.append("    # MixColumns")
    for col in range(4):
        a_regs = ["a0", "a1", "a2", "a3"]
        b_regs = ["a4", "a5", "a6", "a7"]
        for row in range(4):
            lines.append(f"    lbu {a_regs[row]}, {4 * col + row}({_ST})")
        for row in range(4):
            _emit_xtime(lines, a_regs[row], b_regs[row])
        combos = [
            ("a4", "a1", "a5", "a2", "a3"),   # b0^a1^b1^a2^a3
            ("a0", "a5", "a2", "a6", "a3"),   # a0^b1^a2^b2^a3
            ("a0", "a1", "a6", "a3", "a7"),   # a0^a1^b2^a3^b3
            ("a0", "a4", "a1", "a2", "a7"),   # a0^b0^a1^a2^b3
        ]
        for row, terms in enumerate(combos):
            lines.append(f"    xor t0, {terms[0]}, {terms[1]}")
            for term in terms[2:]:
                lines.append(f"    xor t0, t0, {term}")
            lines.append(f"    sb t0, {4 * col + row}({_ST})")


def _emit_cache_warm(lines: List[str]) -> None:
    """Touch every table line so the encryption itself never misses."""
    lines.append("    # cache warm-up: data-independent execution time")
    lines.append(f"    mv t2, {_SBOX}")
    lines.append("    li t3, 16")
    lines.append("warm_sbox:")
    lines.append("    lbu t0, 0(t2)")
    lines.append("    addi t2, t2, 32")
    lines.append("    addi t3, t3, -1")
    lines.append("    bnez t3, warm_sbox")
    lines.append(f"    mv t2, {_RK}")
    lines.append("    li t3, 8")
    lines.append("warm_rk:")
    lines.append("    lbu t0, 0(t2)")
    lines.append("    addi t2, t2, 32")
    lines.append("    addi t3, t3, -1")
    lines.append("    bnez t3, warm_rk")
    lines.append(f"    lbu t0, 0({_ST})")
    lines.append(f"    lbu t0, 63({_ST})")


def aes_program(key: Sequence[int], plaintext: Sequence[int],
                rounds: int = 10, warm_cache: bool = True) -> Program:
    """Generate the runnable AES-128 encryption program.

    The ciphertext lands at :data:`CT_BASE` in data memory.  ``rounds``
    selects reduced-round variants for shorter workloads.
    """
    round_keys = key_schedule(key)
    lines: List[str] = [".data", f".org {SBOX_BASE:#x}"]
    lines.append("sbox: .byte " + ", ".join(str(v) for v in SBOX))
    lines.append(f".org {RK_BASE:#x}")
    flattened = [byte for round_key in round_keys for byte in round_key]
    lines.append("rk: .byte " + ", ".join(str(v) for v in flattened))
    lines.append(f".org {STATE_BASE:#x}")
    lines.append("state: .byte " + ", ".join(str(v) for v in plaintext))
    lines.append(f".org {CT_BASE:#x}")
    lines.append("ct: .space 16")

    lines.append(".text")
    lines.append(f"    la {_SBOX}, sbox")
    lines.append(f"    la {_RK}, rk")
    lines.append(f"    la {_ST}, state")
    if warm_cache:
        _emit_cache_warm(lines)
    _emit_add_round_key(lines, 0)
    for round_index in range(1, rounds + 1):
        lines.append(f"    # ---- round {round_index} ----")
        _emit_sub_bytes(lines)
        _emit_shift_rows(lines)
        if round_index != rounds:
            _emit_mix_columns(lines)
        _emit_add_round_key(lines, round_index)
    lines.append("    # copy state out to ct")
    for byte in range(16):
        lines.append(f"    lbu t0, {byte}({_ST})")
        lines.append(f"    sb t0, {byte + CT_BASE - STATE_BASE}({_ST})")
    lines.append("    ebreak")
    return assemble("\n".join(lines), name=f"aes128_r{rounds}")


def read_ciphertext(memory_bytes) -> List[int]:
    """Extract the 16 ciphertext bytes from a memory byte map."""
    return [memory_bytes.get(CT_BASE + index, 0) for index in range(16)]


DEFAULT_KEY = tuple(range(16))
"""A fixed demo key (0x00..0x0f)."""

FIPS_KEY = (0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
            0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C)
FIPS_PLAINTEXT = (0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
                  0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34)
FIPS_CIPHERTEXT = (0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB,
                   0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A, 0x0B, 0x32)
"""The FIPS-197 appendix B test vector."""
