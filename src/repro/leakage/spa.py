"""Simple power/EM analysis (SPA) on simulated signals.

Demonstrates the design-stage workflow the paper's introduction motivates:
software developers can "detect and mitigate information leakage problems
for security-sensitive applications" from *simulated* signals alone.  The
target is square-and-multiply modular exponentiation
(:mod:`repro.workloads.crypto`): each exponent bit that is 1 costs an
extra multiply, which stretches that loop iteration — recoverable from
the signal envelope with no hardware access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..uarch.trace import ActivityTrace
from ..workloads.crypto import DONE_SYMBOL, LOOP_SYMBOL


def iteration_starts(trace: ActivityTrace, program) -> List[int]:
    """Cycles at which each exponent-bit loop iteration begins.

    Anchored on retirement of the loop-head instruction.  An attacker
    locates these boundaries by pattern-matching the square-step template
    in the signal; with the simulator we read them from the trace, which
    is equivalent and exact.
    """
    loop_pc = program.symbols[LOOP_SYMBOL]
    return [entry.cycle for entry in trace.retired
            if entry.pc == loop_pc]


def _iteration_end(trace: ActivityTrace, program) -> int:
    """Retire cycle of the first instruction after the loop."""
    done_pc = program.symbols[DONE_SYMBOL]
    for entry in trace.retired:
        if entry.pc == done_pc:
            return entry.cycle
    return trace.retired[-1].cycle


@dataclass
class SpaResult:
    """Outcome of a timing-envelope SPA against modexp."""

    durations: List[int]          # cycles per bit iteration
    recovered_bits: List[int]     # MSB first
    threshold: float

    def exponent(self) -> int:
        """Recovered exponent as an integer (MSB-first bits)."""
        value = 0
        for bit in self.recovered_bits:
            value = (value << 1) | bit
        return value


def recover_exponent(trace: ActivityTrace, program,
                     threshold: Optional[float] = None) -> SpaResult:
    """Recover exponent bits from per-iteration durations.

    Iterations containing the conditional multiply take visibly longer;
    a threshold between the two duration clusters classifies each bit.
    For a constant-time implementation all durations collapse to one
    cluster and the recovery degenerates to guessing.
    """
    starts = iteration_starts(trace, program)
    if len(starts) < 2:
        raise ValueError("no loop iterations found in trace")
    ends = starts[1:] + [_iteration_end(trace, program)]
    durations = [end - start for start, end in zip(starts, ends)]
    if threshold is None:
        # split at the widest gap between sorted durations: robust to
        # small prediction-history jitter within each cluster
        ordered = sorted(durations)
        gaps = [(b - a, (a + b) / 2.0)
                for a, b in zip(ordered[:-1], ordered[1:])]
        threshold = max(gaps)[1] if gaps and max(gaps)[0] > 0 else \
            ordered[0] + 0.5
    bits = [1 if duration > threshold else 0 for duration in durations]
    return SpaResult(durations=durations, recovered_bits=bits,
                     threshold=float(threshold))


def amplitude_profile(signal: np.ndarray, starts: Sequence[int],
                      samples_per_cycle: int) -> List[float]:
    """Mean |signal| per loop iteration (the amplitude-SPA channel)."""
    boundaries = list(starts) + [len(signal) // samples_per_cycle]
    profile = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        window = signal[start * samples_per_cycle:
                        end * samples_per_cycle]
        profile.append(float(np.abs(window).mean()) if len(window)
                       else 0.0)
    return profile


def duration_separation(durations: Sequence[int]) -> float:
    """Gap between the two duration clusters, normalized by their spread.

    Reported in clock cycles: the conditional multiply costs ~15 cycles
    for the leaky implementation, while constant-time code collapses the
    gap to prediction jitter (a cycle or two).  Used to *quantify* how
    mitigations close the SPA channel.
    """
    durations = np.asarray(durations, dtype=float)
    if np.ptp(durations) == 0:
        return 0.0
    ordered = np.sort(durations)
    gaps = ordered[1:] - ordered[:-1]
    return float(gaps.max())
