"""Test Vector Leakage Assessment (paper §VI-A, Fig. 10).

The standard fixed-vs-random TVLA: collect traces for a fixed input and
for random inputs, and run Welch's t-test per sample point.  |t| above the
conventional 4.5 threshold flags a statistically significant dependence of
the signal on the processed data — a potential side-channel leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..observability import record_campaign
from ..parallel import resolve_workers, supervised_map
from ..robustness.checkpoint import CheckpointJournal, content_key
from ..robustness.errors import CampaignError, ConfigurationError

TVLA_THRESHOLD = 4.5
"""The conventional TVLA significance threshold."""

# Per-process trace source for the collection pool, installed by the
# initializer (inherited by memory under the fork start method, so even
# closure-based sources work).
_POOL_STATE: dict = {}


def _collect_init(trace_source) -> None:
    """Install the trace source in a pool worker."""
    _POOL_STATE["source"] = trace_source


def _collect_trace(value):
    """Run the installed trace source on one input."""
    return _POOL_STATE["source"](value)


def welch_t_statistic(group_a: np.ndarray,
                      group_b: np.ndarray) -> np.ndarray:
    """Per-sample Welch's t-statistic between two trace matrices.

    Inputs are (traces, samples) matrices; returns (samples,) t values.
    Sample points with zero variance in both groups yield t = 0.
    Mismatched trace lengths or fewer than two traces in a group raise
    :class:`~repro.robustness.errors.ConfigurationError` (a
    ``ValueError`` by inheritance, so existing callers' handlers keep
    working).
    """
    group_a = np.atleast_2d(np.asarray(group_a, dtype=float))
    group_b = np.atleast_2d(np.asarray(group_b, dtype=float))
    if group_a.shape[1] != group_b.shape[1]:
        raise ConfigurationError("trace lengths differ between groups")
    if group_a.shape[0] < 2 or group_b.shape[0] < 2:
        raise ConfigurationError("each group needs at least two traces")
    mean_a, mean_b = group_a.mean(axis=0), group_b.mean(axis=0)
    var_a = group_a.var(axis=0, ddof=1) / group_a.shape[0]
    var_b = group_b.var(axis=0, ddof=1) / group_b.shape[0]
    denominator = np.sqrt(var_a + var_b)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(denominator > 0,
                            (mean_a - mean_b) / denominator, 0.0)
    return t_values


@dataclass
class TVLAResult:
    """Outcome of one fixed-vs-random TVLA run."""

    t_values: np.ndarray
    threshold: float = TVLA_THRESHOLD

    @property
    def max_abs_t(self) -> float:
        """Largest |t| over all sample points."""
        return float(np.abs(self.t_values).max())

    @property
    def leaks(self) -> bool:
        """True if any sample point exceeds the threshold."""
        return self.max_abs_t > self.threshold

    @property
    def leaky_fraction(self) -> float:
        """Fraction of sample points flagged as leaking."""
        return float((np.abs(self.t_values) > self.threshold).mean())

    def per_cycle_max(self, samples_per_cycle: int) -> np.ndarray:
        """Max |t| per clock cycle (the x-axis of the paper's Fig. 10)."""
        magnitude = np.abs(self.t_values)
        cycles = len(magnitude) // samples_per_cycle
        return magnitude[:cycles * samples_per_cycle].reshape(
            cycles, samples_per_cycle).max(axis=1)

    def phase_profile(self, samples_per_cycle: int,
                      segments: int = 5) -> List[float]:
        """Mean per-cycle max-|t| over ``segments`` equal time windows.

        Captures Fig. 10's no->high->low->no->medium leakage *pattern*
        so real and simulated assessments can be compared shape-wise.
        """
        per_cycle = self.per_cycle_max(samples_per_cycle)
        bounds = np.linspace(0, len(per_cycle), segments + 1).astype(int)
        return [float(per_cycle[start:stop].mean()) if stop > start
                else 0.0
                for start, stop in zip(bounds[:-1], bounds[1:])]


def tvla(traces_fixed: Sequence[np.ndarray],
         traces_random: Sequence[np.ndarray],
         threshold: float = TVLA_THRESHOLD) -> TVLAResult:
    """Fixed-vs-random TVLA over equal-length trace collections.

    An empty trace group raises a typed
    :class:`~repro.robustness.errors.CampaignError` naming the group —
    the assessment is statistically meaningless without both groups.
    For O(samples)-memory assessments over large campaigns, see
    :func:`repro.leakage.streaming.streaming_tvla` (same t-values to
    well inside 1e-9).
    """
    traces_fixed = list(traces_fixed)
    traces_random = list(traces_random)
    for name, group in (("fixed", traces_fixed),
                        ("random", traces_random)):
        if not group:
            raise CampaignError(
                f"TVLA needs traces in both groups: the {name} trace "
                f"group is empty")
    length = min(min(len(trace) for trace in traces_fixed),
                 min(len(trace) for trace in traces_random))
    fixed = np.vstack([np.asarray(trace[:length], dtype=float)
                       for trace in traces_fixed])
    rand = np.vstack([np.asarray(trace[:length], dtype=float)
                      for trace in traces_random])
    return TVLAResult(t_values=welch_t_statistic(fixed, rand),
                      threshold=threshold)


def collect_tvla_traces(trace_source: Callable[[Sequence[int]], np.ndarray],
                        fixed_input: Sequence[int],
                        num_traces: int,
                        rng: np.random.Generator,
                        input_length: Optional[int] = None,
                        workers: int = 1,
                        item_timeout: Optional[float] = None,
                        max_item_retries: int = 2,
                        checkpoint: Optional[str] = None,
                        resume: bool = False
                        ) -> "tuple[List[np.ndarray], List[np.ndarray]]":
    """Drive a trace source with fixed vs random inputs.

    ``trace_source`` maps an input byte sequence to one signal trace
    (e.g. an AES run on real hardware or through EMSim).  All random
    inputs are drawn from ``rng`` up front, in order, then the source
    runs once per input — with ``workers > 1`` the runs fan out over a
    process pool (ordered and deterministic for deterministic sources,
    e.g. EMSim).

    The fan-out is supervised (see :mod:`repro.parallel`):
    ``item_timeout`` bounds each collection's wall clock, failures
    retry up to ``max_item_retries`` times, and ``checkpoint`` names a
    journal file (``resume=True`` replays completed traces from it) so
    an interrupted assessment resumes with bit-identical t-traces.  A
    trace lost after supervision raises
    :class:`~repro.robustness.errors.CampaignError` — TVLA's group
    statistics need every trace.
    """
    input_length = input_length or len(fixed_input)
    inputs = [list(fixed_input) for _ in range(num_traces)]
    inputs += [list(rng.integers(0, 256, size=input_length))
               for _ in range(num_traces)]
    meta = {"campaign": "tvla", "traces": int(num_traces),
            "input_length": int(input_length)}
    supervise = item_timeout is not None or checkpoint is not None
    with record_campaign("tvla", dict(
            meta, workers=resolve_workers(workers))) as recording:
        if not supervise and resolve_workers(workers) <= 1:
            traces = [trace_source(value) for value in inputs]
            recording.set("items", len(inputs))
            return traces[:num_traces], traces[num_traces:]

        def key_for(index: int, value: "List[int]") -> str:
            return content_key("tvla", index, bytes(bytearray(
                byte % 256 for byte in value)))

        def run(journal: Optional[CheckpointJournal]
                ) -> "tuple[list, object]":
            return supervised_map(
                _collect_trace, inputs, workers=workers,
                initializer=_collect_init, initargs=(trace_source,),
                timeout=item_timeout, max_item_retries=max_item_retries,
                journal=journal,
                key_for=key_for if journal is not None else None)

        if checkpoint is not None:
            with CheckpointJournal(checkpoint, meta=meta,
                                   resume=resume) as journal:
                with journal.guarded():
                    traces, ledger = run(journal)
            recording.checkpoint(checkpoint)
        else:
            traces, ledger = run(None)
        recording.ledger(ledger)
    if not ledger.complete:
        raise CampaignError(
            f"TVLA collection lost {len(ledger.quarantined)} of "
            f"{len(inputs)} traces ({ledger.summary()})",
            quarantined=ledger.quarantined)
    return traces[:num_traces], traces[num_traces:]
