"""SAVAT: Signal Available to Attacker (paper §VI-A, Table II).

Callan et al.'s metric: alternate bursts of instruction A and instruction B
with period ``t_p``; the energy of the resulting spectral spike at
``f_p = 1/t_p`` measures how much signal an attacker gets for deciding
whether A or B executed.  Table II evaluates the pairs over
{LDM (load-miss), LDC (load-hit), NOP, ADD, MUL, DIV}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..isa.instructions import Instruction, NOP
from ..isa.program import Program
from ..observability import record_campaign
from ..parallel import resolve_workers, supervised_map
from ..robustness.checkpoint import CheckpointJournal, content_key
from ..robustness.errors import CampaignError, ProbeError
from ..signal.spectrum import harmonic_energy
from ..workloads.generators import wrap_program

SAVAT_INSTRUCTIONS = ("LDM", "LDC", "NOP", "ADD", "MUL", "DIV")
"""The instruction set of the paper's Table II."""

# scratch region large enough that stride-by-line LDM accesses never hit
_LDM_REGION_BYTES = 256 * 1024
_LINE_BYTES = 32


# Approximate cycles per dynamic instance on the default core, used to
# equalize the two half-periods of the alternation (the paper's "for half
# of the period A is executing and for the other half B").
_CYCLES_PER_INSTANCE = {"NOP": 1, "ADD": 1, "MUL": 3, "DIV": 8,
                        "LDC": 2, "LDM": 5}


def _savat_burst(kind: str, burst_cycles: int, pointer_reg: int = 9
                 ) -> List[Instruction]:
    """One burst lasting about ``burst_cycles`` cycles of one instruction.

    LDM walks a large region line-by-line so every access misses; LDC
    hammers one (warmed) address so every access hits.
    """
    count = max(1, burst_cycles // _CYCLES_PER_INSTANCE.get(kind, 1))
    if kind == "NOP":
        return [NOP] * count
    if kind == "ADD":
        return [Instruction("add", rd=5, rs1=6, rs2=7)] * count
    if kind == "MUL":
        return [Instruction("mul", rd=5, rs1=6, rs2=7)] * count
    if kind == "DIV":
        return [Instruction("div", rd=5, rs1=6, rs2=7)] * count
    if kind == "LDC":
        return [Instruction("lw", rd=5, rs1=3, imm=0)] * count
    if kind == "LDM":
        code = []
        for _ in range(count):
            code.append(Instruction("lw", rd=5, rs1=pointer_reg, imm=0))
            code.append(Instruction("addi", rd=pointer_reg,
                                    rs1=pointer_reg, imm=_LINE_BYTES))
        return code
    raise ProbeError(f"unknown SAVAT instruction {kind!r}")


def savat_program(kind_a: str, kind_b: str, repeats: int = 12,
                  burst: int = 24) -> Program:
    """The A/B alternation microbenchmark of Callan et al.

    ``repeats`` periods of (~``burst`` cycles of A, ~``burst`` cycles of
    B), unrolled so no loop-control signal pollutes the alternation
    spectrum.
    """
    code: List[Instruction] = []
    # operand setup: non-trivial values so ADD/MUL/DIV switch realistically
    code.append(Instruction("lui", rd=6, imm=0x55555))
    code.append(Instruction("addi", rd=6, rs1=6, imm=0x555))
    code.append(Instruction("lui", rd=7, imm=0x0F0F1))
    code.append(Instruction("addi", rd=7, rs1=7, imm=0x333))
    # x9 walks the LDM region (starts at scratch base via gp in x3)
    code.append(Instruction("add", rd=9, rs1=3, rs2=0))
    # warm the LDC target line
    code.append(Instruction("lw", rd=5, rs1=3, imm=0))
    for _ in range(repeats):
        code.extend(_savat_burst(kind_a, burst))
        code.extend(_savat_burst(kind_b, burst))
    return wrap_program(code, name=f"savat_{kind_a}_{kind_b}",
                        seed_registers=True)


@dataclass
class SavatMeasurement:
    """SAVAT value for one instruction pair."""

    kind_a: str
    kind_b: str
    value: float
    period_cycles: float
    repeats: int


@dataclass
class SimulatorSignalSource:
    """Picklable ``program -> (signal, num_cycles)`` source over EMSim.

    Wraps any object with a ``simulate(program)`` method returning a
    :class:`~repro.core.simulator.SimulatedSignal`; being a plain
    dataclass (rather than a lambda) it survives the pickling that
    ``savat_matrix(..., workers=N)`` worker pools may require.
    """

    simulator: object

    def __call__(self, program: Program) -> Tuple[np.ndarray, int]:
        result = self.simulator.simulate(program)
        return result.signal, result.num_cycles


# Per-process signal source for the SAVAT pool, installed by the
# initializer (inherited by memory under the fork start method).
_POOL_STATE: dict = {}


def _matrix_init(signal_source, samples_per_cycle: int, repeats: int,
                 burst: int) -> None:
    """Install per-process SAVAT sweep state."""
    _POOL_STATE.update(source=signal_source,
                       samples_per_cycle=samples_per_cycle,
                       repeats=repeats, burst=burst)


def _matrix_pair(pair) -> SavatMeasurement:
    """Measure one (A, B) pair inside a pool worker."""
    kind_a, kind_b = pair
    return savat_pair(_POOL_STATE["source"], kind_a, kind_b,
                      _POOL_STATE["samples_per_cycle"],
                      repeats=_POOL_STATE["repeats"],
                      burst=_POOL_STATE["burst"])


def savat_value(signal: np.ndarray, samples_per_cycle: int,
                num_cycles: int, repeats: int,
                harmonics: int = 4) -> float:
    """Spike energy at the alternation frequency of a SAVAT capture.

    The period is inferred from the actual cycle count (stalls stretch
    it), exactly as one would locate the spike on a real spectrum.  The
    energy sums the fundamental and its first few harmonics: two
    instructions that differ in temporal *structure* (e.g. a missing vs
    hitting load) place alternation energy above the fundamental.
    """
    period_cycles = num_cycles / repeats
    alternation_frequency = 1.0 / period_cycles  # cycles^-1
    return harmonic_energy(signal, float(samples_per_cycle),
                           alternation_frequency, harmonics=harmonics)


def savat_pair(signal_source: Callable[[Program], Tuple[np.ndarray, int]],
               kind_a: str, kind_b: str, samples_per_cycle: int,
               repeats: int = 12, burst: int = 24) -> SavatMeasurement:
    """Measure SAVAT for one pair through an arbitrary signal source.

    ``signal_source`` maps a program to ``(signal, num_cycles)`` — the
    real bench and EMSim both fit this interface, which is how Table II
    compares the R and S columns.
    """
    program = savat_program(kind_a, kind_b, repeats=repeats, burst=burst)
    signal, num_cycles = signal_source(program)
    # discard the setup prefix: analyze an integral number of periods
    value = savat_value(signal, samples_per_cycle, num_cycles, repeats)
    return SavatMeasurement(kind_a=kind_a, kind_b=kind_b, value=value,
                            period_cycles=num_cycles / repeats,
                            repeats=repeats)


def savat_matrix(signal_source: Callable[[Program],
                                         Tuple[np.ndarray, int]],
                 samples_per_cycle: int,
                 kinds: Sequence[str] = SAVAT_INSTRUCTIONS,
                 repeats: int = 12,
                 burst: int = 24,
                 workers: int = 1,
                 pairs: "Sequence[Tuple[str, str]] | None" = None,
                 item_timeout: "float | None" = None,
                 max_item_retries: int = 2,
                 checkpoint: "str | None" = None,
                 resume: bool = False
                 ) -> Dict[Tuple[str, str], float]:
    """The full Table-II matrix of SAVAT values for all ordered pairs.

    With ``workers > 1`` the pairs fan out over a process pool (results
    are deterministic for deterministic sources and come back in the
    same pair order); ``workers=1`` is the plain nested loop.  An
    explicit ``pairs`` sequence restricts the sweep to those ordered
    pairs (the CLI's ``--pairs``) instead of the full ``kinds`` square.

    The fan-out is supervised (see :mod:`repro.parallel`):
    ``item_timeout`` bounds each pair's wall clock, failures retry up
    to ``max_item_retries`` times with seeded backoff, and
    ``checkpoint`` names a journal file (``resume=True`` replays
    completed pairs from it).  Table II needs every cell, so a pair
    still missing after supervision raises
    :class:`~repro.robustness.errors.CampaignError`.
    """
    if pairs is None:
        pairs = [(kind_a, kind_b) for kind_a in kinds for kind_b in kinds]
    else:
        pairs = list(pairs)
    meta = {"campaign": "savat", "repeats": int(repeats),
            "burst": int(burst),
            "samples_per_cycle": int(samples_per_cycle)}
    supervise = item_timeout is not None or checkpoint is not None
    with record_campaign("savat", dict(
            meta, pairs=len(pairs),
            workers=resolve_workers(workers))) as recording:
        if not supervise and resolve_workers(workers) <= 1:
            measurements = [savat_pair(signal_source, kind_a, kind_b,
                                       samples_per_cycle, repeats=repeats,
                                       burst=burst)
                            for kind_a, kind_b in pairs]
            recording.set("items", len(pairs))
            return {(m.kind_a, m.kind_b): m.value for m in measurements}

        def key_for(index: int, pair: Tuple[str, str]) -> str:
            return content_key("savat", pair[0], pair[1], repeats, burst,
                               samples_per_cycle)

        def run(journal: "CheckpointJournal | None"
                ) -> "tuple[list, object]":
            return supervised_map(
                _matrix_pair, pairs, workers=workers,
                initializer=_matrix_init,
                initargs=(signal_source, samples_per_cycle, repeats,
                          burst),
                timeout=item_timeout, max_item_retries=max_item_retries,
                journal=journal,
                key_for=key_for if journal is not None else None)

        if checkpoint is not None:
            with CheckpointJournal(checkpoint, meta=meta,
                                   resume=resume) as journal:
                with journal.guarded():
                    measurements, ledger = run(journal)
            recording.checkpoint(checkpoint)
        else:
            measurements, ledger = run(None)
        recording.ledger(ledger)
    if not ledger.complete:
        raise CampaignError(
            f"SAVAT sweep lost {len(ledger.quarantined)} of "
            f"{len(pairs)} pairs ({ledger.summary()})",
            quarantined=ledger.quarantined)
    return {(m.kind_a, m.kind_b): m.value for m in measurements}


def format_matrix(matrix: Dict[Tuple[str, str], float],
                  kinds: Sequence[str] = SAVAT_INSTRUCTIONS,
                  scale: float = 1.0) -> str:
    """Render a SAVAT matrix as the paper's Table II layout."""
    header = "      " + "".join(f"{kind:>8s}" for kind in kinds)
    lines = [header]
    for kind_a in kinds:
        row = f"{kind_a:<6s}"
        for kind_b in kinds:
            row += f"{scale * matrix[(kind_a, kind_b)]:8.2f}"
        lines.append(row)
    return "\n".join(lines)
