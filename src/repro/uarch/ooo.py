"""Out-of-order RV32IM core — the paper's §VIII future-work extension.

The paper: "We believe that EMSim can be extended to more complex
processors by using a similar multi-input-single-output methodology, where
each pipeline stage acts as a single source. ... we do not expect any
fundamental modeling difference between in-order and OoO designs."

This core implements a compact single-issue out-of-order machine:

* in-order fetch with the same predictor/BTB as the in-order core;
* decode/rename into a reorder buffer (ROB) with register renaming via
  per-register producer tags;
* reservation-station style wakeup: an instruction executes as soon as
  its operands are ready and its functional unit (ALU, multi-cycle
  MUL/DIV, load-store unit) is free — independent ALU work overlaps
  cache misses and long divides;
* loads/stores issue through the LSU in program order (no speculation
  past stores), using the same :class:`~repro.uarch.cache.DataCache`;
* in-order commit from the ROB; branch mispredictions flush the younger
  ROB entries and redirect fetch.

Crucially it emits the *same* :class:`~repro.uarch.trace.ActivityTrace`
(stage occupancy + latch values per cycle) as the in-order pipeline, with
the stage sources mapped to Fetch / Rename / Execute / Memory / Commit —
so the entire EM stack (emitter, training, EMSim) runs on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.program import Program
from .branch import BranchTargetBuffer, make_predictor
from .cache import DataCache
from .config import CoreConfig, DEFAULT_CONFIG
from .events import (BranchEvent, CacheEvent, FlushEvent, StallCause,
                     StallEvent)
from .isa_exec import (alu_result, branch_taken, control_flow_target,
                       load_width, store_width)
from .latches import (HardwareLatches, LegacyHardwareLatches, STAGES,
                      control_word)
from .memory import MainMemory
from .regfile import RegisterFile
from .trace import (DYN_FINAL, DYN_HIT, DYN_MISS, KIND_BUBBLE, KIND_INSTR,
                    KIND_STALL, ActivityTrace, LegacyActivityTrace,
                    RetiredInstruction)

MASK32 = 0xFFFFFFFF


@dataclass
class _RobEntry:
    """One in-flight instruction in the reorder buffer."""

    instr: Instruction
    pc: int
    seq: int
    pred_taken: bool = False
    pred_target: Optional[int] = None
    # operand readiness: (True, value) or (False, producer _RobEntry)
    operands: Dict[int, Tuple[bool, object]] = field(default_factory=dict)
    # execution state
    issued: bool = False
    remaining: int = 0
    completed: bool = False
    result: int = 0
    writes: Optional[int] = None
    mem_addr: int = 0
    mem_hit: Optional[bool] = None
    taken: bool = False
    target: int = 0
    mispredicted: bool = False
    squashed: bool = False

    @property
    def is_memory(self) -> bool:
        return self.instr.is_load or self.instr.is_store


class OutOfOrderCore:
    """Single-issue OoO core with ROB + renaming + FU-level overlap."""

    ROB_SIZE = 16

    def __init__(self, program: Program,
                 config: CoreConfig = DEFAULT_CONFIG,
                 legacy_trace: bool = False):
        self.program = program
        self.config = config
        self.regfile = RegisterFile()
        self.memory = MainMemory(program.data)
        self.cache = DataCache(config.cache)
        self.predictor = make_predictor(config.predictor,
                                        config.predictor_history_bits,
                                        config.predictor_table_bits)
        self.btb = BranchTargetBuffer(config.btb_entries)
        # legacy_trace selects the seed's object-graph recorder and
        # dict-backed latches — the reference oracle / bench baseline
        if legacy_trace:
            self.latches = LegacyHardwareLatches()
            self.trace = LegacyActivityTrace()
        else:
            self.latches = HardwareLatches()
            self.trace = ActivityTrace()

        self.pc = program.entry
        self.cycle = 0
        self.next_seq = 0
        self.fetch_halted = False
        self.halted = False

        self.rob: List[_RobEntry] = []          # oldest first
        # latest producer (ROB entry) per architectural register
        self.producer: Dict[int, _RobEntry] = {}
        # functional-unit busy state: entry currently executing
        self.alu_busy: Optional[_RobEntry] = None
        self.muldiv_busy: Optional[_RobEntry] = None
        self.lsu_busy: Optional[_RobEntry] = None
        self.fetched: Optional[_RobEntry] = None   # decode next cycle

    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> ActivityTrace:
        """Run to completion (or ``max_cycles``)."""
        limit = max_cycles if max_cycles is not None \
            else self.config.max_cycles
        while not self.halted and self.cycle < limit:
            self.step()
        return self.trace

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One clock cycle: commit, complete/execute, issue, rename,
        fetch.  Stages record occupancy straight into the trace;
        stages left as bubbles get the bubble latch pattern before the
        cycle's single latch snapshot."""
        self.trace.begin_cycle()
        self._commit()
        self._execute()
        self._issue()
        redirect = self._rename()
        self._fetch(redirect)

        for stage in STAGES:
            if self.trace.stage_kind_at(stage) == KIND_BUBBLE:
                self.latches.write_bubble(stage)
        self.trace.end_cycle(self.latches)
        self.cycle += 1
        if self.fetch_halted and not self.rob and self.fetched is None:
            self.halted = True

    # ------------------------------------------------------------------
    # commit (stage W)
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        if not self.rob:
            return
        head = self.rob[0]
        if not head.completed:
            if head.issued:
                self.trace.record("W", KIND_STALL, head.instr, head.seq)
                self.trace.stalls.append(StallEvent(
                    cycle=self.cycle, stage="W",
                    cause=StallCause.RAW_HAZARD, seq=head.seq))
            return
        self.rob.pop(0)
        if head.writes is not None:
            self.regfile.write(head.writes, head.result)
        if self.producer.get(head.writes) is head:
            del self.producer[head.writes]
        self.latches.write_writeback(
            head.result if head.writes is not None else 0,
            head.writes or 0, 1 if head.writes is not None else 0)
        self.trace.record("W", KIND_INSTR, head.instr, head.seq)
        self.trace.retired.append(RetiredInstruction(
            seq=head.seq, pc=head.pc, instr=head.instr, cycle=self.cycle))
        if head.instr.name in ("ecall", "ebreak"):
            self.fetch_halted = True
            self._flush_younger_than(head, redirect=None)
        elif head.mispredicted:
            # resolve the misprediction at commit of the branch
            target = head.target if head.taken else (head.pc + 4) & MASK32
            self._flush_younger_than(head, redirect=target)

    def _flush_younger_than(self, entry: _RobEntry,
                            redirect: Optional[int]) -> None:
        flushed = len(self.rob)
        for younger in self.rob:
            younger.squashed = True
        self.rob.clear()
        self.producer.clear()
        self.fetched = None
        self.alu_busy = self.muldiv_busy = self.lsu_busy = None
        if redirect is not None:
            self.pc = redirect
            self.fetch_halted = False
            self.trace.flushes.append(FlushEvent(
                cycle=self.cycle, flushed=flushed, redirect_pc=redirect))

    # ------------------------------------------------------------------
    # execute / complete (stages E and M)
    # ------------------------------------------------------------------
    def _operand_value(self, entry: _RobEntry, reg: int) -> Tuple[bool,
                                                                  int]:
        ready, value = entry.operands[reg]
        if ready:
            return True, value
        # value is the producer _RobEntry captured at rename time
        producer = value
        if producer.completed:
            entry.operands[reg] = (True, producer.result)
            return entry.operands[reg]
        return False, 0

    def _ready(self, entry: _RobEntry) -> bool:
        return all(self._operand_value(entry, reg)[0]
                   for reg in entry.operands)

    def _execute(self) -> None:
        # multi-cycle units tick down
        for attribute in ("muldiv_busy", "lsu_busy"):
            entry = getattr(self, attribute)
            if entry is None:
                continue
            entry.remaining -= 1
            if entry.remaining > 0:
                if attribute == "lsu_busy":
                    self.trace.record(
                        "M", KIND_STALL, entry.instr, entry.seq,
                        DYN_HIT if entry.mem_hit else DYN_MISS)
                else:
                    self.trace.record("E", KIND_STALL, entry.instr,
                                      entry.seq)
                continue
            # completes this cycle
            entry.completed = True
            if attribute == "muldiv_busy":
                self.latches.write("E", alu_out=entry.result,
                                   muldiv_lo=entry.result)
                self.trace.record("E", KIND_INSTR, entry.instr,
                                  entry.seq, DYN_FINAL)
            else:
                if entry.instr.is_load:
                    self.latches.write_mem_rdata(entry.result)
                self.trace.record("M", KIND_STALL, entry.instr, entry.seq,
                                  DYN_HIT if entry.mem_hit else DYN_MISS)
            setattr(self, attribute, None)
        # single-cycle ALU result was computed at issue; free the unit
        if self.alu_busy is not None:
            self.alu_busy.completed = True
            self.alu_busy = None

    # ------------------------------------------------------------------
    def _issue(self) -> None:
        """Wake up at most one ready instruction per free unit."""
        for entry in self.rob:
            if entry.issued or not self._ready(entry):
                continue
            instr = entry.instr
            if entry.is_memory:
                if self.lsu_busy is not None:
                    continue
                # memory ops issue in program order w.r.t. other memory
                older_memory = [other for other in self.rob
                                if other.seq < entry.seq
                                and other.is_memory
                                and not other.completed]
                if older_memory:
                    continue
                if entry.instr.is_store and any(
                        other.seq < entry.seq and
                        (not other.completed or other.mispredicted)
                        for other in self.rob):
                    # a store mutates memory: it must not issue while any
                    # older instruction could still squash it
                    continue
                self._issue_memory(entry)
                entry.issued = True
                continue
            if instr.is_muldiv:
                if self.muldiv_busy is not None:
                    continue
                self._issue_muldiv(entry)
                entry.issued = True
                continue
            if self.alu_busy is not None:
                continue
            self._issue_alu(entry)
            entry.issued = True
            # one ALU-class issue per cycle
        # (loop continues so one ALU + one MUL + one MEM may issue
        #  in the same cycle — genuinely parallel functional units)

    def _operands(self, entry: _RobEntry) -> Tuple[int, int]:
        a = self._operand_value(entry, entry.instr.rs1)[1] \
            if entry.instr.rs1 in entry.operands else 0
        b = self._operand_value(entry, entry.instr.rs2)[1] \
            if entry.instr.rs2 in entry.operands else 0
        return a, b

    def _issue_alu(self, entry: _RobEntry) -> None:
        instr = entry.instr
        a, b = self._operands(entry)
        if instr.is_branch:
            entry.taken = branch_taken(instr, a, b)
            entry.target = control_flow_target(instr, entry.pc, a)
            predicted = entry.pred_target if entry.pred_taken \
                else (entry.pc + 4) & MASK32
            actual = entry.target if entry.taken \
                else (entry.pc + 4) & MASK32
            entry.mispredicted = (entry.taken != entry.pred_taken) or \
                (entry.taken and predicted != actual)
            self.predictor.update(entry.pc, entry.taken)
            if entry.taken:
                self.btb.update(entry.pc, entry.target)
            self.trace.branch_events.append(BranchEvent(
                cycle=self.cycle, pc=entry.pc, taken=entry.taken,
                target=actual, predicted_taken=entry.pred_taken,
                predicted_target=entry.pred_target,
                mispredicted=entry.mispredicted, seq=entry.seq))
            entry.result = 0
        elif instr.is_jump:
            entry.taken = True
            entry.target = control_flow_target(instr, entry.pc, a)
            predicted = entry.pred_target if entry.pred_taken else None
            entry.mispredicted = predicted != entry.target
            self.btb.update(entry.pc, entry.target)
            entry.result = (entry.pc + 4) & MASK32
        else:
            entry.result = alu_result(instr, a, b, entry.pc)
        operand_b = b if instr.fmt.value in ("R", "S", "B") \
            else (instr.imm & MASK32)
        self.latches.write_execute_out(a, operand_b, entry.result,
                                       control_word(instr, 8))
        self.trace.record("E", KIND_INSTR, instr, entry.seq)
        self.alu_busy = entry

    def _issue_muldiv(self, entry: _RobEntry) -> None:
        instr = entry.instr
        a, b = self._operands(entry)
        entry.result = alu_result(instr, a, b, entry.pc)
        latency = self.config.mul_latency if instr.name.startswith("mul") \
            else self.config.div_latency
        entry.remaining = latency
        self.latches.write("E", alu_a=a, alu_b=b,
                           ex_ctrl=control_word(instr, 8),
                           muldiv_hi=(a * b) >> 32)
        if self.trace.stage_kind_at("E") == KIND_BUBBLE:
            self.trace.record("E", KIND_INSTR, instr, entry.seq)
        self.muldiv_busy = entry

    def _issue_memory(self, entry: _RobEntry) -> None:
        instr = entry.instr
        a, b = self._operands(entry)
        address = (a + instr.imm) & MASK32
        entry.mem_addr = address
        hit = self.cache.access(address, is_store=instr.is_store)
        entry.mem_hit = hit
        cache_cfg = self.config.cache
        entry.remaining = 1 + cache_cfg.hit_extra_cycles + \
            (0 if hit else cache_cfg.miss_extra_cycles)
        self.trace.cache_events.append(CacheEvent(
            cycle=self.cycle, address=address, is_store=instr.is_store,
            hit=hit, seq=entry.seq))
        if instr.is_store:
            self.memory.store(address, b, store_width(instr.name))
            self.latches.write("M", mem_addr=address, mem_wdata=b,
                               mem_ctrl=control_word(instr, 8))
        else:
            nbytes, signed = load_width(instr.name)
            entry.result = self.memory.load(address, nbytes, signed)
            self.latches.write("M", mem_addr=address,
                               mem_ctrl=control_word(instr, 8))
        self.trace.record("M", KIND_INSTR, instr, entry.seq,
                          DYN_HIT if hit else DYN_MISS)
        self.lsu_busy = entry

    # ------------------------------------------------------------------
    # rename (stage D)
    # ------------------------------------------------------------------
    def _rename(self) -> Optional[int]:
        entry = self.fetched
        if entry is None:
            return None
        if len(self.rob) >= self.ROB_SIZE:
            self.trace.record("D", KIND_STALL, entry.instr, entry.seq)
            self.trace.stalls.append(StallEvent(
                cycle=self.cycle, stage="D", cause=StallCause.RAW_HAZARD,
                seq=entry.seq))
            return None
        instr = entry.instr
        for reg in instr.unique_sources:
            if reg == 0:
                entry.operands[reg] = (True, 0)
            elif reg in self.producer:
                # capture the producing ROB entry: later renames of the
                # same register must not change this dependence
                entry.operands[reg] = (False, self.producer[reg])
            else:
                entry.operands[reg] = (True, self.regfile.peek(reg))
        entry.writes = instr.destination_register
        self.rob.append(entry)
        if instr.name in ("ecall", "ebreak", "fence"):
            entry.completed = True
        if entry.writes is not None:
            self.producer[entry.writes] = entry
        self.fetched = None

        def latch_value(reg):
            ready, value = entry.operands.get(reg, (True, 0))
            # a pending operand reads the (stale) architectural register,
            # which is what the physical read port latches at rename
            return value if ready else self.regfile.peek(reg)

        rs1_val = latch_value(instr.rs1)
        rs2_val = latch_value(instr.rs2)
        self.latches.write_decode(instr.encode(), rs1_val, rs2_val,
                                  instr.imm & MASK32,
                                  control_word(instr, 12))
        self.trace.record("D", KIND_INSTR, instr, entry.seq)
        if instr.name == "jal":
            target = (entry.pc + instr.imm) & MASK32
            self.btb.update(entry.pc, target)
            if not (entry.pred_taken and entry.pred_target == target):
                entry.pred_taken = True
                entry.pred_target = target
                return target  # early redirect; one bubble
        return None

    # ------------------------------------------------------------------
    # fetch (stage F)
    # ------------------------------------------------------------------
    def _fetch(self, redirect: Optional[int]) -> None:
        if redirect is not None:
            self.pc = redirect
            self.fetch_halted = False
            return
        if self.fetched is not None:
            self.trace.record("F", KIND_STALL, self.fetched.instr,
                              self.fetched.seq)
            return
        if self.fetch_halted:
            return
        instr = self.program.instruction_at(self.pc)
        if instr is None:
            self.fetch_halted = True
            return
        entry = _RobEntry(instr=instr, pc=self.pc, seq=self.next_seq)
        self.next_seq += 1
        if instr.is_branch:
            target = self.btb.lookup(self.pc)
            entry.pred_taken = self.predictor.predict(self.pc) and \
                target is not None
            entry.pred_target = target
        elif instr.is_jump:
            target = self.btb.lookup(self.pc)
            entry.pred_taken = target is not None
            entry.pred_target = target
        self.latches.write_fetch(self.pc, instr.encode(),
                                 int(entry.pred_taken))
        self.trace.record("F", KIND_INSTR, instr, entry.seq)
        self.fetched = entry
        self.pc = entry.pred_target if (entry.pred_taken and
                                        entry.pred_target is not None) \
            else (self.pc + 4) & MASK32
        if instr.name in ("ecall", "ebreak"):
            self.fetch_halted = True


def run_program_ooo(program: Program,
                    config: CoreConfig = DEFAULT_CONFIG,
                    max_cycles: Optional[int] = None,
                    legacy_trace: bool = False
                    ) -> Tuple[ActivityTrace, OutOfOrderCore]:
    """Run ``program`` on a fresh OoO core; returns (trace, core).

    ``legacy_trace=True`` records through the seed's object-graph trace
    and dict-backed latches (the reference oracle / bench baseline).
    """
    core = OutOfOrderCore(program, config=config,
                          legacy_trace=legacy_trace)
    trace = core.run(max_cycles=max_cycles)
    return trace, core
