"""Branch prediction: direction predictors and a branch target buffer.

The evaluated core uses "a branch prediction unit with a 2-level predictor
and a branch-target-buffer" (HPCA 2020, §II-A).  ``always not-taken`` and
``gshare`` variants are provided because the paper reports studying different
predictors and finding no statistically significant EM difference (§IV); the
ablation benchmark reproduces that comparison.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..robustness.errors import ConfigurationError


class _SaturatingCounter:
    """Classic 2-bit saturating taken/not-taken counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 1):
        self.value = value

    @property
    def taken(self) -> bool:
        return self.value >= 2

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(3, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class DirectionPredictor:
    """Interface for conditional-branch direction predictors."""

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""
        raise NotImplementedError

    def state_signature(self) -> int:
        """Small integer summarizing mutable state (for activity tracing)."""
        return 0


class AlwaysNotTaken(DirectionPredictor):
    """Static predictor: every conditional branch predicted not taken."""

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class TwoLevelAdaptive(DirectionPredictor):
    """Two-level adaptive predictor (Yeh & Patt): per-branch history
    registers indexing a shared pattern history table of 2-bit counters."""

    def __init__(self, history_bits: int = 4, table_bits: int = 10):
        self.history_bits = history_bits
        self.table_bits = table_bits
        self._histories: Dict[int, int] = {}
        self._pht: Dict[int, _SaturatingCounter] = {}
        self._last_outcome = 0

    def _pht_index(self, pc: int, history: int) -> int:
        return ((pc >> 2) << self.history_bits | history) & \
            ((1 << self.table_bits) - 1)

    def predict(self, pc: int) -> bool:
        history = self._histories.get(pc, 0)
        counter = self._pht.get(self._pht_index(pc, history))
        return counter.taken if counter else False

    def update(self, pc: int, taken: bool) -> None:
        history = self._histories.get(pc, 0)
        index = self._pht_index(pc, history)
        counter = self._pht.setdefault(index, _SaturatingCounter())
        counter.update(taken)
        mask = (1 << self.history_bits) - 1
        self._histories[pc] = ((history << 1) | int(taken)) & mask
        self._last_outcome = int(taken)

    def state_signature(self) -> int:
        return self._last_outcome


class GShare(DirectionPredictor):
    """Gshare predictor: global history XORed with the PC."""

    def __init__(self, history_bits: int = 8, table_bits: int = 10):
        self.history_bits = history_bits
        self.table_bits = table_bits
        self._global_history = 0
        self._pht: Dict[int, _SaturatingCounter] = {}

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._global_history) & \
            ((1 << self.table_bits) - 1)

    def predict(self, pc: int) -> bool:
        counter = self._pht.get(self._index(pc))
        return counter.taken if counter else False

    def update(self, pc: int, taken: bool) -> None:
        counter = self._pht.setdefault(self._index(pc), _SaturatingCounter())
        counter.update(taken)
        mask = (1 << self.history_bits) - 1
        self._global_history = ((self._global_history << 1) | int(taken)) \
            & mask

    def state_signature(self) -> int:
        return self._global_history & 0x3


class BranchTargetBuffer:
    """Direct-mapped, tagged BTB providing predicted targets at fetch."""

    def __init__(self, entries: int = 64):
        if entries & (entries - 1):
            raise ConfigurationError(
                "BTB entry count must be a power of two")
        self.entries = entries
        self._table: Dict[int, Tuple[int, int]] = {}  # index -> (tag, tgt)

    def _index_tag(self, pc: int) -> Tuple[int, int]:
        word = pc >> 2
        return word % self.entries, word // self.entries

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for ``pc``, or None on BTB miss."""
        index, tag = self._index_tag(pc)
        entry = self._table.get(index)
        if entry and entry[0] == tag:
            return entry[1]
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for a taken control transfer."""
        index, tag = self._index_tag(pc)
        self._table[index] = (tag, target)


def make_predictor(kind: str, history_bits: int = 4,
                   table_bits: int = 10) -> DirectionPredictor:
    """Factory for the predictor kinds named in :class:`CoreConfig`."""
    if kind == "not-taken":
        return AlwaysNotTaken()
    if kind == "two-level":
        return TwoLevelAdaptive(history_bits=history_bits,
                                table_bits=table_bits)
    if kind == "gshare":
        return GShare(history_bits=max(history_bits, 8),
                      table_bits=table_bits)
    raise ConfigurationError(f"unknown predictor kind: {kind!r}")
