"""Flat byte-addressable main memory."""

from __future__ import annotations

from typing import Dict, Mapping

from ..isa.encoding import sign_extend

MASK32 = 0xFFFFFFFF


class MainMemory:
    """Sparse little-endian byte-addressable memory (reads-as-zero)."""

    def __init__(self, image: Mapping[int, int] = ()):
        self._bytes: Dict[int, int] = dict(image)

    def load(self, address: int, nbytes: int, signed: bool = False) -> int:
        """Read ``nbytes`` little-endian; optionally sign-extend to 32 bits."""
        value = 0
        for index in range(nbytes):
            value |= self._bytes.get((address + index) & MASK32, 0) << \
                (8 * index)
        if signed:
            return sign_extend(value, 8 * nbytes) & MASK32
        return value

    def store(self, address: int, value: int, nbytes: int) -> None:
        """Write the low ``nbytes`` of ``value`` little-endian."""
        for index in range(nbytes):
            self._bytes[(address + index) & MASK32] = \
                (value >> (8 * index)) & 0xFF

    def load_word(self, address: int) -> int:
        """Read an aligned-or-not 32-bit little-endian word."""
        return self.load(address, 4)

    def snapshot(self) -> Dict[int, int]:
        """Copy of the current byte image (for test comparison)."""
        return dict(self._bytes)
