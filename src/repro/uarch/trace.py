"""Per-cycle microarchitectural activity trace.

The pipeline produces an :class:`ActivityTrace`: for every cycle and every
stage, (a) *who* occupies the stage — a real instruction, a bubble, or a
stalled instruction — and (b) the values of all of the stage's hardware
latches.  From the latter the trace derives the *transition-bit vectors*
that both the ground-truth hardware emitter and EMSim's activity-factor
regression (Eq. 8 of the paper) consume.

The production trace is **columnar**: per-stage integer-code arrays for
occupancy (kind / EM class / dynamic sequence number / dynamic tag) and
one ``uint64`` matrix of latch values, all preallocated and grown by
doubling.  Recording a cycle writes integer codes by direct index and
snapshots the latches with a single row copy — no per-cycle objects.
Every derived view of the seed API (``occupancy``, ``stage_kinds``,
``active_mask``, ``em_class`` sequences, ``cycles_of``,
``instruction_labels``, ``transition_matrix``) is preserved, computed
lazily and vectorized.  The seed's object-graph recorder survives as
:class:`LegacyActivityTrace` — the reference oracle the property tests
and the ``repro bench --mode trace`` baseline run against.

Recording protocol (implemented by both trace classes)::

    trace.begin_cycle()
    trace.record(stage, KIND_INSTR, instr, seq, DYN_HIT)   # active stages
    trace.stage_kind_at(stage)                             # mid-cycle peek
    trace.end_cycle(latches)                               # snapshot + advance

Stages never recorded in a cycle default to the pipeline bubble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..isa.instructions import Instruction
from .events import BranchEvent, CacheEvent, FlushEvent, StallEvent
from .latches import (STAGE_REGISTERS, STAGE_SLICES, STAGES, TOTAL_REGISTERS,
                      stage_bit_count)

OCC_INSTR = "instr"
OCC_BUBBLE = "bubble"
OCC_STALL = "stall"

KIND_INSTR = 0
KIND_BUBBLE = 1
KIND_STALL = 2

_KIND_NAMES: Tuple[str, ...] = (OCC_INSTR, OCC_BUBBLE, OCC_STALL)
_KIND_CODES: Dict[str, int] = {name: code
                               for code, name in enumerate(_KIND_NAMES)}

DYN_NONE = 0
DYN_HIT = 1
DYN_MISS = 2
DYN_FINAL = 3

_DYN_NAMES: Tuple[Optional[str], ...] = (None, "hit", "miss", "final")
_DYN_CODES: Dict[Optional[str], int] = {name: code for code, name
                                        in enumerate(_DYN_NAMES)}

EM_CLASSES = ("nop", "stall", "alu", "shift", "muldiv", "muldiv_final",
              "load", "load_cache", "load_mem", "store", "branch", "jump",
              "system")
"""All behavioural class labels :meth:`StageOccupancy.em_class` can yield."""

_EM_INDEX: Dict[str, int] = {name: code
                             for code, name in enumerate(EM_CLASSES)}

_EM_NOP = _EM_INDEX["nop"]

# repro: allow[N203] EM-class indices are tiny enum codes (< 16)
_EM_NOP_U8 = np.uint8(_EM_INDEX["nop"])
# repro: allow[N203] EM-class indices are tiny enum codes (< 16)
_EM_STALL_U8 = np.uint8(_EM_INDEX["stall"])


@dataclass(frozen=True)
class StageOccupancy:
    """What one stage was doing during one cycle."""

    kind: str                      # OCC_INSTR / OCC_BUBBLE / OCC_STALL
    instr: Optional[Instruction] = None
    seq: Optional[int] = None      # dynamic instruction number
    dyn: Optional[str] = None      # dynamic tag, e.g. "hit"/"miss" for loads

    @property
    def active(self) -> bool:
        """True when the stage is doing real instruction work."""
        return self.kind == OCC_INSTR

    def em_class(self) -> str:
        """Behavioural class label used by the EM models.

        One of: ``nop``, ``stall``, ``alu``, ``shift``, ``muldiv``,
        ``load`` (``load_cache``/``load_mem`` once the cache outcome is
        known), ``store``, ``branch``, ``jump``, ``system``.  NOPs and
        bubbles share a label: a bubble *is* an injected NOP (paper §IV).
        """
        if self.kind == OCC_BUBBLE:
            return "nop"
        if self.kind == OCC_STALL:
            return "stall"
        assert self.instr is not None
        if self.instr.is_nop:
            return "nop"
        if self.instr.is_load:
            if self.dyn == "hit":
                return "load_cache"
            if self.dyn == "miss":
                return "load_mem"
            return "load"
        if self.dyn == "final":
            # last Execute cycle of a multi-cycle unit: the result
            # registers switch, a distinct (larger) signature
            return self.instr.cls.value + "_final"
        return self.instr.cls.value

    def label(self) -> str:
        """Readable label, e.g. ``lw+miss``, ``bubble``, ``add(stall)``."""
        if self.kind == OCC_BUBBLE:
            return "bubble"
        name = self.instr.name if self.instr else "?"
        if self.dyn:
            name = f"{name}+{self.dyn}"
        return name if self.kind == OCC_INSTR else f"{name}(stall)"


_BUBBLE_OCC = StageOccupancy(OCC_BUBBLE)


@dataclass
class RetiredInstruction:
    """One instruction that completed writeback."""

    seq: int
    pc: int
    instr: Instruction
    cycle: int


def _build_bit_tables():
    """Per-stage (register column, shift) tables for transition vectors.

    For each stage the transition matrix lists every latch bit in schema
    order, LSB first within a register.  These flat index tables turn
    the seed's per-register Python loop into one fancy-index broadcast.
    """
    columns: Dict[str, np.ndarray] = {}
    shifts: Dict[str, np.ndarray] = {}
    for stage in STAGES:
        column_ids: List[int] = []
        bit_shifts: List[int] = []
        for column, (_, width) in enumerate(STAGE_REGISTERS[stage]):
            column_ids.extend([column] * width)
            bit_shifts.extend(range(width))
        columns[stage] = np.asarray(column_ids, dtype=np.intp)
        shifts[stage] = np.asarray(bit_shifts, dtype=np.uint64)
    return columns, shifts


_BIT_COLUMNS, _BIT_SHIFTS = _build_bit_tables()

_INITIAL_CAPACITY = 512

# Packed occupancy-code layout: one Python int per stage per cycle.
# bits 0-1: kind, bits 2-3: dyn, bits 8-31: instr code + 1 (24 bits),
# bits 32-62: seq + 1 (31 bits).  A single list store per record keeps
# the per-cycle cost at a couple of integer ops; the five code columns
# (and the derived EM-class column) unpack lazily and vectorized.
_PACK_BUBBLE = KIND_BUBBLE
_INSTR_SHIFT = 8
_INSTR_BITS = 24
_SEQ_SHIFT = 32


class ActivityTrace:
    """Cycle-by-cycle record of pipeline occupancy and latch values.

    Storage is columnar: ``_vals`` is a preallocated, doubling
    ``(capacity, TOTAL_REGISTERS)`` ``uint64`` matrix (whole-pipeline
    latch snapshot per row, one vectorized row copy per cycle) and each
    stage has one packed-int code column (kind / dyn / instruction-table
    index / dynamic sequence number in a single machine word, one list
    store per record).  Rows open as bubbles, so a cycle that never
    records a stage needs no explicit bubble write.  The seed's object
    API — ``occupancy``, ``stage_kinds``, ``active_mask``, ``em_class``
    sequences, ``cycles_of``, ``instruction_labels`` — is served by
    lazy vectorized views that unpack (and cache) on demand.
    """

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 1)
        self._n = 0
        self._capacity = capacity
        self._vals = np.zeros((capacity, TOTAL_REGISTERS), dtype=np.uint64)
        self._packed: Dict[str, List[int]] = {stage: []
                                              for stage in STAGES}
        self._appenders = tuple(self._packed[stage].append
                                for stage in STAGES)
        self.stalls: List[StallEvent] = []
        self.cache_events: List[CacheEvent] = []
        self.branch_events: List[BranchEvent] = []
        self.flushes: List[FlushEvent] = []
        self.retired: List[RetiredInstruction] = []
        self._instr_table: List[Instruction] = []
        self._instr_ids: Dict[int, int] = {}
        self._transition_cache: Dict[str, np.ndarray] = {}
        self._codes_cache: Dict[str, object] = {}
        self._occ_cache: Dict[str, object] = {}

    # -- recording (called by the pipeline) -----------------------------
    def begin_cycle(self) -> None:
        """Open the next cycle's row: every stage starts as a bubble."""
        if self._n >= self._capacity:
            self._grow()
        for append in self._appenders:
            append(_PACK_BUBBLE)

    def record(self, stage: str, kind: int,
               instr: Optional[Instruction] = None, seq: int = -1,
               dyn: int = DYN_NONE) -> None:
        """Record ``stage``'s occupancy for the open cycle.

        ``kind`` is a ``KIND_*`` code, ``seq`` the dynamic instruction
        number (``-1`` for none) and ``dyn`` a ``DYN_*`` code.  May be
        called again for the same stage (e.g. a flush squashing it); the
        last record wins.
        """
        if instr is None:
            code = 0
        else:
            code = self._instr_ids.get(id(instr), 0)
            if code == 0:
                table = self._instr_table
                table.append(instr)
                code = len(table)
                self._instr_ids[id(instr)] = code
        self._packed[stage][-1] = (kind | (dyn << 2) |
                                   (code << _INSTR_SHIFT) |
                                   ((seq + 1) << _SEQ_SHIFT))

    def stage_kind_at(self, stage: str) -> int:
        """The ``KIND_*`` code currently recorded for ``stage`` in the
        open cycle (the opening bubble until :meth:`record` runs)."""
        return self._packed[stage][-1] & 3

    def end_cycle(self, latches) -> None:
        """Snapshot the flat latch vector and advance to the next cycle."""
        self._vals[self._n] = latches.flat_values()
        self._n += 1

    def _grow(self) -> None:
        """Double the latch-value buffer, preserving recorded rows."""
        capacity = self._capacity * 2
        vals = np.zeros((capacity, TOTAL_REGISTERS), dtype=np.uint64)
        vals[:self._n] = self._vals[:self._n]
        self._vals = vals
        self._capacity = capacity

    def commit_cycle(self, occupancy: Dict[str, StageOccupancy],
                     latch_values: Dict[str, Tuple[int, ...]]) -> None:
        """Append one cycle from the seed's dict-based recording API.

        Compatibility shim kept for hand-built traces and legacy pickle
        migration; the cores use the begin/record/end protocol.
        """
        self.begin_cycle()
        row = self._n
        for stage in STAGES:
            occ = occupancy[stage]
            self.record(stage, _KIND_CODES[occ.kind], occ.instr,
                        -1 if occ.seq is None else occ.seq,
                        _DYN_CODES[occ.dyn])
            self._vals[row, STAGE_SLICES[stage]] = latch_values[stage]
        self._n += 1

    # -- pickling ---------------------------------------------------------
    def __reduce__(self):
        """Pickle as ``repro-trace/1`` codec bytes.

        Worker pools and checkpoints ship traces between processes; the
        codec payload is both several times smaller than the seed's
        object-graph pickle and deterministic, so pickled bytes of
        identically recorded traces compare equal.
        """
        from .tracecodec import decode_trace, encode_trace
        return (decode_trace, (encode_trace(self),))

    def __setstate__(self, state):
        """Rebuild from a legacy (pre-columnar) pickle's dict state."""
        values = state["_values"]
        occupancy = state["occupancy"]
        cycles = len(values[STAGES[0]])
        self.__init__(capacity=cycles)
        for cycle in range(cycles):
            # legacy-pickle migration path, not the per-cycle recording
            # hot loop — per-cycle dict construction is fine here.
            self.commit_cycle(
                {stage: occupancy[stage][cycle] for stage in STAGES},
                {stage: values[stage][cycle] for stage in STAGES})
        self.stalls = list(state.get("stalls", ()))
        self.cache_events = list(state.get("cache_events", ()))
        self.branch_events = list(state.get("branch_events", ()))
        self.flushes = list(state.get("flushes", ()))
        self.retired = list(state.get("retired", ()))

    @classmethod
    def _from_columns(cls, cycles: int, values: np.ndarray,
                      codes: Dict[str, Dict[str, np.ndarray]],
                      instr_table: List[Instruction]) -> "ActivityTrace":
        """Build a trace directly from decoded codec sections."""
        trace = cls(capacity=cycles)
        trace._n = cycles
        trace._vals[:cycles] = values
        for stage in STAGES:
            kind = codes["kind"][stage].astype(np.int64)
            dyn = codes["dyn"][stage].astype(np.int64)
            instr = codes["instr"][stage].astype(np.int64)
            seq = codes["seq"][stage].astype(np.int64)
            packed = (kind | (dyn << 2) | ((instr + 1) << _INSTR_SHIFT) |
                      ((seq + 1) << _SEQ_SHIFT))
            trace._packed[stage][:] = packed.tolist()
        trace._instr_table = list(instr_table)
        trace._instr_ids = {id(instr): code + 1 for code, instr
                            in enumerate(trace._instr_table)}
        return trace

    def _values_all(self) -> np.ndarray:
        """(cycles, TOTAL_REGISTERS) whole-pipeline latch matrix view."""
        return self._vals[:self._n]

    def _unpacked(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Unpack the code columns to per-stage arrays, cached per n.

        Returns ``{column: {stage: array}}`` for columns ``kind`` /
        ``instr`` / ``seq`` / ``dyn`` / ``em`` — the ``em`` column is
        derived vectorized from a per-instruction lookup table built
        with the reference :meth:`StageOccupancy.em_class` logic.
        """
        cache = self._codes_cache
        if cache.get("n") == self._n:
            return cache["codes"]  # type: ignore[return-value]
        em_lookup = self._em_lookup()
        codes: Dict[str, Dict[str, np.ndarray]] = {
            column: {} for column in ("kind", "instr", "seq", "dyn", "em")}
        for stage in STAGES:
            packed = np.asarray(self._packed[stage], dtype=np.uint64)
            # repro: allow[N203] masked to two bits, uint8 is lossless
            kind = (packed & np.uint64(3)).astype(np.uint8)
            # repro: allow[N203] masked to two bits, uint8 is lossless
            dyn = ((packed >> np.uint64(2)) & np.uint64(3)).astype(np.uint8)
            # repro: allow[N203] instr indices are bounded by the 24-bit
            # pack width, so int32 is lossless.
            instr = ((packed >> np.uint64(_INSTR_SHIFT)) &
                     np.uint64((1 << _INSTR_BITS) - 1)
                     ).astype(np.int32) - 1
            # repro: allow[N203] seq fits the 31-bit pack field
            seq = (packed >> np.uint64(_SEQ_SHIFT)).astype(np.int32) - 1
            codes["kind"][stage] = kind
            codes["instr"][stage] = instr
            codes["seq"][stage] = seq
            codes["dyn"][stage] = dyn
            codes["em"][stage] = np.where(
                kind == KIND_BUBBLE, _EM_NOP_U8,
                np.where(kind == KIND_STALL, _EM_STALL_U8,
                         em_lookup[instr + 1, dyn]))
        self._codes_cache = {"n": self._n, "codes": codes}
        return codes

    def _em_lookup(self) -> np.ndarray:
        """(instr codes + 1, dyn codes) EM-class table for active stages.

        Row 0 covers "no instruction" (never hit for ``KIND_INSTR``);
        row ``i + 1`` classifies instruction-table entry ``i`` under
        each dynamic tag via the reference occupancy logic.
        """
        table = self._instr_table
        lookup = np.zeros((len(table) + 1, len(_DYN_NAMES)),
                          dtype=np.uint8)
        for code, instr in enumerate(table):
            for dyn, dyn_name in enumerate(_DYN_NAMES):
                occ = StageOccupancy(OCC_INSTR, instr, None, dyn_name)
                # combos the cores never record (e.g. an ALU op tagged
                # "final") fall outside EM_CLASSES; their slots are
                # never indexed, so any filler value works
                lookup[code + 1, dyn] = _EM_INDEX.get(occ.em_class(), 0)
        return lookup

    def _code_column(self, column: str, stage: str) -> np.ndarray:
        """One recorded code column (codec serialization accessor)."""
        return self._unpacked()[column][stage]

    # -- shape ------------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        """Total simulated cycles."""
        return self._n

    # -- derived matrices ---------------------------------------------------
    def values_matrix(self, stage: str) -> np.ndarray:
        """(cycles, registers) uint64 matrix of latch values for ``stage``.

        A read-only view of the columnar store — no conversion cost.
        """
        return self._vals[:self._n, STAGE_SLICES[stage]]

    def transition_matrix(self, stage: str) -> np.ndarray:
        """(cycles, bits) 0/1 matrix of latch bit-flips for ``stage``.

        Row ``n`` holds the flips between cycle ``n-1`` and cycle ``n``
        (cycle 0 is compared with the all-zero reset state).  Computed as
        one shift-table broadcast over the XOR of adjacent latch rows;
        cached after the first computation.
        """
        cache = self._transition_cache
        if stage in cache and cache[stage].shape[0] == self._n:
            return cache[stage]
        values = self.values_matrix(stage)
        xor = np.ascontiguousarray(values)
        if xor is values:
            xor = values.copy()
        xor[1:] ^= values[:-1]
        # repro: allow[N203] each element is masked to a single bit
        # (0 or 1) before the cast, so uint8 is lossless here.
        bits = ((xor[:, _BIT_COLUMNS[stage]] >> _BIT_SHIFTS[stage]) &
                np.uint64(1)).astype(np.uint8)
        cache[stage] = bits
        return bits

    def flip_counts(self, stage: str) -> np.ndarray:
        """(cycles,) total latch bit-flips per cycle for ``stage``."""
        return self.transition_matrix(stage).sum(axis=1)

    def total_flip_counts(self) -> np.ndarray:
        """(cycles,) bit-flips per cycle summed over all stages."""
        return np.stack([self.flip_counts(stage)
                         for stage in STAGES]).sum(axis=0)

    # -- occupancy views ---------------------------------------------------
    @property
    def occupancy(self) -> Dict[str, List[StageOccupancy]]:
        """Seed-API view: per-stage lists of :class:`StageOccupancy`.

        Materialized lazily from the code columns (shared objects for
        repeated code tuples) and cached until more cycles arrive.
        """
        cached = self._occ_cache
        if cached.get("n") == self._n:
            return cached["occupancy"]  # type: ignore[return-value]
        occupancy = {stage: self._materialize(stage) for stage in STAGES}
        self._occ_cache = {"n": self._n, "occupancy": occupancy}
        return occupancy

    def _materialize(self, stage: str) -> List[StageOccupancy]:
        """Build the occupancy object list for one stage."""
        table = self._instr_table
        memo: Dict[int, StageOccupancy] = {_PACK_BUBBLE: _BUBBLE_OCC}
        out: List[StageOccupancy] = []
        for packed in self._packed[stage]:
            occ = memo.get(packed)
            if occ is None:
                code = (packed >> _INSTR_SHIFT) & ((1 << _INSTR_BITS) - 1)
                seq = (packed >> _SEQ_SHIFT) - 1
                occ = StageOccupancy(
                    _KIND_NAMES[packed & 3],
                    table[code - 1] if code else None,
                    seq if seq >= 0 else None,
                    _DYN_NAMES[(packed >> 2) & 3])
                memo[packed] = occ
            out.append(occ)
        return out

    def stage_kinds(self, stage: str) -> List[str]:
        """Occupancy kind per cycle for ``stage``."""
        return [_KIND_NAMES[code] for code
                in self._unpacked()["kind"][stage].tolist()]

    def active_mask(self, stage: str) -> np.ndarray:
        """(cycles,) boolean: stage doing real instruction work."""
        return self._unpacked()["kind"][stage] == KIND_INSTR

    def stall_mask(self, stage: str) -> np.ndarray:
        """(cycles,) boolean: stage frozen by a stall."""
        return self._unpacked()["kind"][stage] == KIND_STALL

    def em_codes(self, stage: str) -> np.ndarray:
        """(cycles,) EM-class codes (indices into :data:`EM_CLASSES`)."""
        return self._unpacked()["em"][stage]

    def em_classes(self, stage: str) -> List[str]:
        """Per-cycle EM-class labels for ``stage`` (vectorized view of
        what ``[occ.em_class() for occ in occupancy[stage]]`` yields)."""
        return [EM_CLASSES[code] for code
                in self._unpacked()["em"][stage].tolist()]

    def seqs(self, stage: str) -> np.ndarray:
        """(cycles,) dynamic instruction numbers (``-1`` where none)."""
        return self._unpacked()["seq"][stage]

    def instruction_labels(self, stage: str) -> List[str]:
        """Readable per-cycle labels for ``stage`` (for reports/tests)."""
        return [occ.label() for occ in self.occupancy[stage]]

    def cycles_of(self, seq: int, stage: str) -> List[int]:
        """Cycles during which dynamic instruction ``seq`` occupied
        ``stage`` (including stalled cycles)."""
        return np.nonzero(
            self._unpacked()["seq"][stage] == seq)[0].tolist()

    # -- convenience statistics ---------------------------------------------
    @property
    def instructions_retired(self) -> int:
        """Count of retired instructions."""
        return len(self.retired)

    @property
    def mispredictions(self) -> int:
        """Count of mispredicted branch events."""
        return sum(event.mispredicted for event in self.branch_events)

    @property
    def cache_misses(self) -> int:
        """Count of data-cache misses."""
        return sum(not event.hit for event in self.cache_events)

    def stage_bits(self, stage: str) -> int:
        """Number of tracked latch bits for ``stage``."""
        return stage_bit_count(stage)


@dataclass
class LegacyActivityTrace:
    """The seed's object-graph trace, kept as the reference oracle.

    Recording appends one :class:`StageOccupancy` and one latch tuple
    per stage per cycle, and every derived view is the seed's Python
    scan — byte-for-byte the pre-columnar implementation, plus an
    adapter for the begin/record/end protocol so both cores can run
    with either recorder.  Property tests assert the columnar trace's
    views are bit-identical to this one; ``repro bench --mode trace``
    uses it (with ``LegacyHardwareLatches``) as the measured baseline.
    """

    occupancy: Dict[str, List[StageOccupancy]] = field(
        default_factory=lambda: {stage: [] for stage in STAGES})
    _values: Dict[str, List[Tuple[int, ...]]] = field(
        default_factory=lambda: {stage: [] for stage in STAGES})
    stalls: List[StallEvent] = field(default_factory=list)
    cache_events: List[CacheEvent] = field(default_factory=list)
    branch_events: List[BranchEvent] = field(default_factory=list)
    flushes: List[FlushEvent] = field(default_factory=list)
    retired: List[RetiredInstruction] = field(default_factory=list)

    # -- recording (seed API) -------------------------------------------
    def commit_cycle(self, occupancy: Dict[str, StageOccupancy],
                     latch_values: Dict[str, Tuple[int, ...]]) -> None:
        """Append one cycle's occupancy and latch snapshot."""
        for stage in STAGES:
            self.occupancy[stage].append(occupancy[stage])
            self._values[stage].append(latch_values[stage])

    # -- recording protocol adapter -------------------------------------
    def begin_cycle(self) -> None:
        """Open a cycle: every stage starts as a bubble."""
        # repro: allow[P601] the legacy oracle deliberately preserves the
        # seed's per-cycle object construction — that cost is the point.
        self._pending = {stage: _BUBBLE_OCC for stage in STAGES}

    def record(self, stage: str, kind: int,
               instr: Optional[Instruction] = None, seq: int = -1,
               dyn: int = DYN_NONE) -> None:
        """Record ``stage``'s occupancy for the open cycle."""
        # repro: allow[P601] seed-cost reference path, see begin_cycle.
        self._pending[stage] = StageOccupancy(
            _KIND_NAMES[kind], instr, None if seq < 0 else seq,
            _DYN_NAMES[dyn])

    def stage_kind_at(self, stage: str) -> int:
        """The ``KIND_*`` code currently recorded for ``stage``."""
        return _KIND_CODES[self._pending[stage].kind]

    def end_cycle(self, latches) -> None:
        """Commit the open cycle from the pending occupancy map."""
        # repro: allow[P601] seed-cost reference path, see begin_cycle.
        self.commit_cycle(self._pending,
                          {stage: latches.values(stage)
                           for stage in STAGES})

    # -- pickling ---------------------------------------------------------
    def __getstate__(self):
        """Drop derived caches and the open-cycle scratch when pickling."""
        state = dict(self.__dict__)
        state.pop("_transition_cache", None)
        state.pop("_pending", None)
        return state

    # -- shape ------------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        """Total simulated cycles."""
        return len(self._values[STAGES[0]])

    # -- derived matrices ---------------------------------------------------
    def values_matrix(self, stage: str) -> np.ndarray:
        """(cycles, registers) uint64 matrix of latch values for ``stage``."""
        return np.asarray(self._values[stage], dtype=np.uint64).reshape(
            self.num_cycles, len(STAGE_REGISTERS[stage]))

    def transition_matrix(self, stage: str) -> np.ndarray:
        """(cycles, bits) 0/1 matrix of latch bit-flips for ``stage``.

        Row ``n`` holds the flips between cycle ``n-1`` and cycle ``n``
        (cycle 0 is compared with the all-zero reset state).  Cached after
        the first computation.
        """
        cache = getattr(self, "_transition_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_transition_cache", cache)
        if stage in cache and cache[stage].shape[0] == self.num_cycles:
            return cache[stage]
        values = self.values_matrix(stage)
        previous = np.vstack([np.zeros((1, values.shape[1]),
                                       dtype=np.uint64), values[:-1]])
        xor = values ^ previous
        columns = []
        for column, (_, width) in enumerate(STAGE_REGISTERS[stage]):
            shifts = np.arange(width, dtype=np.uint64)
            # repro: allow[N203] each element is masked to a single bit
            # (0 or 1) before the cast, so uint8 is lossless here.
            columns.append(((xor[:, column:column + 1] >> shifts) &
                            np.uint64(1)).astype(np.uint8))
        cache[stage] = np.hstack(columns)
        return cache[stage]

    def flip_counts(self, stage: str) -> np.ndarray:
        """(cycles,) total latch bit-flips per cycle for ``stage``."""
        return self.transition_matrix(stage).sum(axis=1)

    def total_flip_counts(self) -> np.ndarray:
        """(cycles,) bit-flips per cycle summed over all stages."""
        return sum(self.flip_counts(stage) for stage in STAGES)

    # -- occupancy views ---------------------------------------------------
    def stage_kinds(self, stage: str) -> List[str]:
        """Occupancy kind per cycle for ``stage``."""
        return [occ.kind for occ in self.occupancy[stage]]

    def active_mask(self, stage: str) -> np.ndarray:
        """(cycles,) boolean: stage doing real instruction work."""
        return np.asarray([occ.active for occ in self.occupancy[stage]])

    def stall_mask(self, stage: str) -> np.ndarray:
        """(cycles,) boolean: stage frozen by a stall."""
        return np.asarray([occ.kind == OCC_STALL
                           for occ in self.occupancy[stage]])

    def em_classes(self, stage: str) -> List[str]:
        """Per-cycle EM-class labels for ``stage`` (reference scan)."""
        return [occ.em_class() for occ in self.occupancy[stage]]

    def instruction_labels(self, stage: str) -> List[str]:
        """Readable per-cycle labels for ``stage`` (for reports/tests)."""
        return [occ.label() for occ in self.occupancy[stage]]

    def cycles_of(self, seq: int, stage: str) -> List[int]:
        """Cycles during which dynamic instruction ``seq`` occupied
        ``stage`` (including stalled cycles)."""
        return [cycle for cycle, occ in enumerate(self.occupancy[stage])
                if occ.seq == seq]

    # -- convenience statistics ---------------------------------------------
    @property
    def instructions_retired(self) -> int:
        """Count of retired instructions."""
        return len(self.retired)

    @property
    def mispredictions(self) -> int:
        """Count of mispredicted branch events."""
        return sum(event.mispredicted for event in self.branch_events)

    @property
    def cache_misses(self) -> int:
        """Count of data-cache misses."""
        return sum(not event.hit for event in self.cache_events)

    def stage_bits(self, stage: str) -> int:
        """Number of tracked latch bits for ``stage``."""
        return stage_bit_count(stage)


def concat_traces(traces: Sequence[ActivityTrace]) -> ActivityTrace:
    """Concatenate traces cycle-wise (for stitched training corpora).

    Columnar inputs merge by array copy into one exactly-sized trace;
    if any input is a :class:`LegacyActivityTrace`, the seed's
    list-extend semantics are preserved and a legacy trace is returned.
    """
    traces = list(traces)
    if not all(isinstance(trace, ActivityTrace) for trace in traces):
        legacy = LegacyActivityTrace()
        for trace in traces:
            for stage in STAGES:
                legacy.occupancy[stage].extend(trace.occupancy[stage])
                legacy._values[stage].extend(
                    tuple(int(value) for value in row)
                    for row in trace.values_matrix(stage))
            legacy.stalls.extend(trace.stalls)
            legacy.cache_events.extend(trace.cache_events)
            legacy.branch_events.extend(trace.branch_events)
            legacy.flushes.extend(trace.flushes)
            legacy.retired.extend(trace.retired)
        return legacy
    total = sum(trace.num_cycles for trace in traces)
    merged = ActivityTrace(capacity=total)
    merged._n = total
    instr_mask = np.uint64(((1 << _INSTR_BITS) - 1) << _INSTR_SHIFT)
    clear_instr = ~instr_mask
    offset = 0
    for trace in traces:
        n = trace.num_cycles
        merged._vals[offset:offset + n] = trace._vals[:n]
        # 1-based instruction-code remap; slot 0 stays "no instruction"
        remap = np.zeros(len(trace._instr_table) + 1, dtype=np.uint64)
        for code, instr in enumerate(trace._instr_table, start=1):
            merged_code = merged._instr_ids.get(id(instr), 0)
            if merged_code == 0:
                merged._instr_table.append(instr)
                merged_code = len(merged._instr_table)
                merged._instr_ids[id(instr)] = merged_code
            remap[code] = merged_code
        for stage in STAGES:
            packed = np.asarray(trace._packed[stage][:n], dtype=np.uint64)
            codes = (packed & instr_mask) >> np.uint64(_INSTR_SHIFT)
            packed = (packed & clear_instr) | (
                remap[codes] << np.uint64(_INSTR_SHIFT))
            merged._packed[stage].extend(packed.tolist())
        merged.stalls.extend(trace.stalls)
        merged.cache_events.extend(trace.cache_events)
        merged.branch_events.extend(trace.branch_events)
        merged.flushes.extend(trace.flushes)
        merged.retired.extend(trace.retired)
        offset += n
    return merged
