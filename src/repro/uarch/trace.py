"""Per-cycle microarchitectural activity trace.

The pipeline produces an :class:`ActivityTrace`: for every cycle and every
stage, (a) *who* occupies the stage — a real instruction, a bubble, or a
stalled instruction — and (b) the values of all of the stage's hardware
latches.  From the latter the trace derives the *transition-bit vectors*
that both the ground-truth hardware emitter and EMSim's activity-factor
regression (Eq. 8 of the paper) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..isa.instructions import Instruction
from .events import BranchEvent, CacheEvent, FlushEvent, StallEvent
from .latches import STAGE_REGISTERS, STAGES, stage_bit_count

OCC_INSTR = "instr"
OCC_BUBBLE = "bubble"
OCC_STALL = "stall"

EM_CLASSES = ("nop", "stall", "alu", "shift", "muldiv", "muldiv_final",
              "load", "load_cache", "load_mem", "store", "branch", "jump",
              "system")
"""All behavioural class labels :meth:`StageOccupancy.em_class` can yield."""


@dataclass(frozen=True)
class StageOccupancy:
    """What one stage was doing during one cycle."""

    kind: str                      # OCC_INSTR / OCC_BUBBLE / OCC_STALL
    instr: Optional[Instruction] = None
    seq: Optional[int] = None      # dynamic instruction number
    dyn: Optional[str] = None      # dynamic tag, e.g. "hit"/"miss" for loads

    @property
    def active(self) -> bool:
        """True when the stage is doing real instruction work."""
        return self.kind == OCC_INSTR

    def em_class(self) -> str:
        """Behavioural class label used by the EM models.

        One of: ``nop``, ``stall``, ``alu``, ``shift``, ``muldiv``,
        ``load`` (``load_cache``/``load_mem`` once the cache outcome is
        known), ``store``, ``branch``, ``jump``, ``system``.  NOPs and
        bubbles share a label: a bubble *is* an injected NOP (paper §IV).
        """
        if self.kind == OCC_BUBBLE:
            return "nop"
        if self.kind == OCC_STALL:
            return "stall"
        assert self.instr is not None
        if self.instr.is_nop:
            return "nop"
        if self.instr.is_load:
            if self.dyn == "hit":
                return "load_cache"
            if self.dyn == "miss":
                return "load_mem"
            return "load"
        if self.dyn == "final":
            # last Execute cycle of a multi-cycle unit: the result
            # registers switch, a distinct (larger) signature
            return self.instr.cls.value + "_final"
        return self.instr.cls.value

    def label(self) -> str:
        """Readable label, e.g. ``lw+miss``, ``bubble``, ``add(stall)``."""
        if self.kind == OCC_BUBBLE:
            return "bubble"
        name = self.instr.name if self.instr else "?"
        if self.dyn:
            name = f"{name}+{self.dyn}"
        return name if self.kind == OCC_INSTR else f"{name}(stall)"


@dataclass
class RetiredInstruction:
    """One instruction that completed writeback."""

    seq: int
    pc: int
    instr: Instruction
    cycle: int


@dataclass
class ActivityTrace:
    """Cycle-by-cycle record of pipeline occupancy and latch values."""

    occupancy: Dict[str, List[StageOccupancy]] = field(
        default_factory=lambda: {stage: [] for stage in STAGES})
    _values: Dict[str, List[Tuple[int, ...]]] = field(
        default_factory=lambda: {stage: [] for stage in STAGES})
    stalls: List[StallEvent] = field(default_factory=list)
    cache_events: List[CacheEvent] = field(default_factory=list)
    branch_events: List[BranchEvent] = field(default_factory=list)
    flushes: List[FlushEvent] = field(default_factory=list)
    retired: List[RetiredInstruction] = field(default_factory=list)

    # -- recording (called by the pipeline) -----------------------------
    def commit_cycle(self, occupancy: Dict[str, StageOccupancy],
                     latch_values: Dict[str, Tuple[int, ...]]) -> None:
        """Append one cycle's occupancy and latch snapshot."""
        for stage in STAGES:
            self.occupancy[stage].append(occupancy[stage])
            self._values[stage].append(latch_values[stage])

    # -- pickling ---------------------------------------------------------
    def __getstate__(self):
        """Drop the derived transition-matrix cache when pickling.

        Worker pools ship traces between processes; the cache is pure
        derived data (recomputed on demand) and can be large, so it
        never travels.
        """
        state = dict(self.__dict__)
        state.pop("_transition_cache", None)
        return state

    # -- shape ------------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        """Total simulated cycles."""
        return len(self._values[STAGES[0]])

    # -- derived matrices ---------------------------------------------------
    def values_matrix(self, stage: str) -> np.ndarray:
        """(cycles, registers) uint64 matrix of latch values for ``stage``."""
        return np.asarray(self._values[stage], dtype=np.uint64).reshape(
            self.num_cycles, len(STAGE_REGISTERS[stage]))

    def transition_matrix(self, stage: str) -> np.ndarray:
        """(cycles, bits) 0/1 matrix of latch bit-flips for ``stage``.

        Row ``n`` holds the flips between cycle ``n-1`` and cycle ``n``
        (cycle 0 is compared with the all-zero reset state).  Cached after
        the first computation.
        """
        cache = getattr(self, "_transition_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_transition_cache", cache)
        if stage in cache and cache[stage].shape[0] == self.num_cycles:
            return cache[stage]
        values = self.values_matrix(stage)
        previous = np.vstack([np.zeros((1, values.shape[1]),
                                       dtype=np.uint64), values[:-1]])
        xor = values ^ previous
        columns = []
        for column, (_, width) in enumerate(STAGE_REGISTERS[stage]):
            shifts = np.arange(width, dtype=np.uint64)
            # repro: allow[N203] each element is masked to a single bit
            # (0 or 1) before the cast, so uint8 is lossless here.
            columns.append(((xor[:, column:column + 1] >> shifts) &
                            np.uint64(1)).astype(np.uint8))
        cache[stage] = np.hstack(columns)
        return cache[stage]

    def flip_counts(self, stage: str) -> np.ndarray:
        """(cycles,) total latch bit-flips per cycle for ``stage``."""
        return self.transition_matrix(stage).sum(axis=1)

    def total_flip_counts(self) -> np.ndarray:
        """(cycles,) bit-flips per cycle summed over all stages."""
        return sum(self.flip_counts(stage) for stage in STAGES)

    # -- occupancy views ---------------------------------------------------
    def stage_kinds(self, stage: str) -> List[str]:
        """Occupancy kind per cycle for ``stage``."""
        return [occ.kind for occ in self.occupancy[stage]]

    def active_mask(self, stage: str) -> np.ndarray:
        """(cycles,) boolean: stage doing real instruction work."""
        return np.asarray([occ.active for occ in self.occupancy[stage]])

    def stall_mask(self, stage: str) -> np.ndarray:
        """(cycles,) boolean: stage frozen by a stall."""
        return np.asarray([occ.kind == OCC_STALL
                           for occ in self.occupancy[stage]])

    def instruction_labels(self, stage: str) -> List[str]:
        """Readable per-cycle labels for ``stage`` (for reports/tests)."""
        return [occ.label() for occ in self.occupancy[stage]]

    def cycles_of(self, seq: int, stage: str) -> List[int]:
        """Cycles during which dynamic instruction ``seq`` occupied
        ``stage`` (including stalled cycles)."""
        return [cycle for cycle, occ in enumerate(self.occupancy[stage])
                if occ.seq == seq]

    # -- convenience statistics ---------------------------------------------
    @property
    def instructions_retired(self) -> int:
        """Count of retired instructions."""
        return len(self.retired)

    @property
    def mispredictions(self) -> int:
        """Count of mispredicted branch events."""
        return sum(event.mispredicted for event in self.branch_events)

    @property
    def cache_misses(self) -> int:
        """Count of data-cache misses."""
        return sum(not event.hit for event in self.cache_events)

    def stage_bits(self, stage: str) -> int:
        """Number of tracked latch bits for ``stage``."""
        return stage_bit_count(stage)


def concat_traces(traces: Sequence[ActivityTrace]) -> ActivityTrace:
    """Concatenate traces cycle-wise (for stitched training corpora)."""
    merged = ActivityTrace()
    for trace in traces:
        for stage in STAGES:
            merged.occupancy[stage].extend(trace.occupancy[stage])
            merged._values[stage].extend(trace._values[stage])
        merged.stalls.extend(trace.stalls)
        merged.cache_events.extend(trace.cache_events)
        merged.branch_events.extend(trace.branch_events)
        merged.flushes.extend(trace.flushes)
        merged.retired.extend(trace.retired)
    return merged
